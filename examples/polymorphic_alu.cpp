// polymorphic_alu.cpp — the paper's §6 polymorphism example, both views.
//
// Runtime view: a Polymorphic<AluOp, ...> dispatches execute() through the
// common interface.  Synthesis view: the same hierarchy becomes a tagged
// object; the virtual call synthesizes to per-variant datapaths selected
// by the §8 dispatch muxes.  The program cross-checks the two views and
// prints the generated hardware statistics.

#include <cstdio>
#include <memory>

#include "gate/lower.hpp"
#include "gate/timing.hpp"
#include "osss/polymorphic.hpp"
#include "rtl/sim.hpp"
#include "synth/polymorphic_synth.hpp"

using namespace osss;

namespace {

constexpr unsigned W = 8;

// --- runtime hierarchy -----------------------------------------------------
struct AluOp {
  virtual ~AluOp() = default;
  virtual unsigned execute(unsigned a, unsigned b) const = 0;
};
struct AluAdd final : AluOp {
  unsigned execute(unsigned a, unsigned b) const override {
    return (a + b) & 0xff;
  }
};
struct AluSub final : AluOp {
  unsigned execute(unsigned a, unsigned b) const override {
    return (a - b) & 0xff;
  }
};
struct AluMul final : AluOp {
  unsigned execute(unsigned a, unsigned b) const override {
    return (a * b) & 0xff;
  }
};

// --- analyzer hierarchy (what the synthesizer sees) -----------------------
meta::ClassPtr make_variant(const meta::ClassPtr& base, const char* name,
                            meta::BinOp op) {
  auto cls = std::make_shared<meta::ClassDesc>(name, base);
  meta::MethodDesc exec;
  exec.name = "Execute";
  exec.params = {{"a", W}, {"b", W}};
  exec.return_width = W;
  exec.is_virtual = true;
  exec.body = {meta::assign_member(
                   "result", meta::binary(op, meta::param("a", W),
                                          meta::param("b", W))),
               meta::return_stmt(meta::member("result", W))};
  cls->add_method(std::move(exec));
  return cls;
}

}  // namespace

int main() {
  // Runtime dispatch.
  Polymorphic<AluOp, AluAdd, AluSub, AluMul> alu;
  std::printf("runtime dispatch:  add(20,22)=%u", alu->execute(20, 22));
  alu.emplace<AluSub>();
  std::printf("  sub(20,22)=%u", alu->execute(20, 22));
  alu.emplace<AluMul>();
  std::printf("  mul(20,22)=%u  (tag=%zu)\n", alu->execute(20, 22),
              alu.tag());

  // Synthesis of the same hierarchy.
  auto base = std::make_shared<meta::ClassDesc>("AluOp");
  base->add_member("result", W);
  meta::MethodDesc exec;
  exec.name = "Execute";
  exec.params = {{"a", W}, {"b", W}};
  exec.return_width = W;
  exec.is_virtual = true;
  exec.body = {meta::return_stmt(meta::constant(W, 0))};
  base->add_method(std::move(exec));

  synth::Hierarchy h;
  h.base = base;
  h.variants = {make_variant(base, "AluAdd", meta::BinOp::kAdd),
                make_variant(base, "AluSub", meta::BinOp::kSub),
                make_variant(base, "AluMul", meta::BinOp::kMul)};

  rtl::Builder b("poly_alu");
  meta::RtlEmitter em(b);
  const rtl::Wire obj = b.input("obj", h.total_width());
  const rtl::Wire a = b.input("a", W);
  const rtl::Wire x = b.input("b", W);
  const auto call = synth::synthesize_virtual_call(em, h, "Execute", obj,
                                                   {a, x});
  b.output("r", call.ret);
  b.output("obj_out", call.obj_out);
  const rtl::Module m = b.take();

  // Cross-check: hardware dispatch equals runtime dispatch.
  rtl::Simulator sim(m);
  const char* names[] = {"add", "sub", "mul"};
  const AluAdd add_impl;
  const AluSub sub_impl;
  const AluMul mul_impl;
  const AluOp* impls[] = {&add_impl, &sub_impl, &mul_impl};
  bool all_match = true;
  for (unsigned tag = 0; tag < 3; ++tag) {
    sim.set_input("obj", h.encode(tag, meta::Bits(W, 0)));
    sim.set_input("a", 20);
    sim.set_input("b", 22);
    const unsigned hw = static_cast<unsigned>(sim.output("r").to_u64());
    const unsigned sw = impls[tag]->execute(20, 22);
    std::printf("hardware dispatch: tag=%u (%s) -> %u %s\n", tag, names[tag],
                hw, hw == sw ? "(matches runtime)" : "(MISMATCH)");
    all_match = all_match && hw == sw;
  }

  const auto report = gate::analyze_timing(gate::lower_to_gates(m),
                                           gate::Library::generic());
  std::printf("\n%s\n", gate::format_report("poly_alu", report).c_str());
  std::printf("the dispatch muxes of paper §8, and nothing else.\n");
  return all_match ? 0 : 1;
}
