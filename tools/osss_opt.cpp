// osss-opt — command-line front end of the gate-level optimization pipeline.
//
// Lowers the ExpoCU evaluation designs (and optional fuzz corpora of random
// modules) to gates, runs them through the src/opt pass pipeline and reports
// per-pass statistics plus pre/post area and fmax.  Every pass invocation is
// differentially self-checked by default (gate::check_equivalence input vs
// output); a divergence aborts the run with the pass name, derived seed and
// counterexample, and exits 1.
//
// Usage:
//   osss-opt [--flow=osss|vhdl|both] [--passes=NAME[,NAME...]] [--fuzz=N]
//            [--seed=S] [--check=0|1] [--format=text|json] [--out=FILE]
//            [--list-passes]
//
// Exit codes: 0 success, 1 differential self-check failure, 2 usage or
// I/O error.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "expocu/flows.hpp"
#include "gate/lower.hpp"
#include "gate/timing.hpp"
#include "lint/dataflow.hpp"
#include "opt/opt.hpp"
#include "verify/random_module.hpp"

namespace {

using osss::gate::Library;
using osss::gate::Netlist;
using osss::opt::PassStats;

using FactsPtr = std::shared_ptr<const std::unordered_map<std::string, bool>>;

/// Register-bit constants proven by the RTL-level abstract interpreter,
/// keyed by the lowering's DFF names — the SDC fuel for the satsweep pass
/// (which re-verifies every claim by netlist induction before using it).
FactsPtr facts_of(const osss::rtl::Module& m) {
  auto bits = osss::lint::analyze_dataflow(m).const_reg_bits();
  if (bits.empty()) return nullptr;
  return std::make_shared<const std::unordered_map<std::string, bool>>(
      std::move(bits));
}

struct Unit {
  std::string name;
  std::string flow;  // "osss", "vhdl", "fuzz"
  std::vector<PassStats> stats;
  double area_before = 0.0, area_after = 0.0;
  double fmax_before = 0.0, fmax_after = 0.0;
  std::size_t depth_before = 0, depth_after = 0;
};

struct Cli {
  bool run_osss = true;
  bool run_vhdl = false;
  std::vector<std::string> passes;  // empty = standard pipeline
  unsigned fuzz = 0;
  std::uint64_t seed = 1;
  int check = -1;  // -1 = pipeline default (env / build type)
  std::string format = "text";
  std::string out;
  bool list_passes = false;
};

bool parse_args(int argc, char** argv, Cli& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const std::string& prefix) -> std::optional<std::string> {
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
      return std::nullopt;
    };
    if (a == "--list-passes") {
      cli.list_passes = true;
    } else if (a == "--check") {
      cli.check = 1;
    } else if (auto v = value("--check=")) {
      if (*v != "0" && *v != "1") return false;
      cli.check = *v == "1" ? 1 : 0;
    } else if (auto v = value("--flow=")) {
      cli.run_osss = *v == "osss" || *v == "both";
      cli.run_vhdl = *v == "vhdl" || *v == "both";
      if (!cli.run_osss && !cli.run_vhdl) return false;
    } else if (auto v = value("--passes=")) {
      std::stringstream ss(*v);
      std::string name;
      while (std::getline(ss, name, ',')) {
        if (osss::opt::make_pass(name) == nullptr) {
          std::cerr << "osss-opt: unknown pass '" << name << "'\n";
          return false;
        }
        cli.passes.push_back(name);
      }
      if (cli.passes.empty()) return false;
    } else if (auto v = value("--fuzz=")) {
      cli.fuzz = static_cast<unsigned>(std::stoul(*v));
    } else if (auto v = value("--seed=")) {
      cli.seed = std::stoull(*v);
    } else if (auto v = value("--format=")) {
      if (*v != "text" && *v != "json") return false;
      cli.format = *v;
    } else if (auto v = value("--out=")) {
      cli.out = *v;
    } else {
      return false;
    }
  }
  return true;
}

osss::opt::Pipeline build_pipeline(const Cli& cli, const Library& lib,
                                   const FactsPtr& facts) {
  osss::opt::PipelineOptions popt;
  popt.lib = &lib;
  popt.self_check = cli.check;
  popt.facts = facts;
  if (cli.passes.empty()) return osss::opt::Pipeline::standard(popt);
  osss::opt::Pipeline p(popt);
  for (const std::string& name : cli.passes)
    p.add(osss::opt::make_pass(name));
  return p;
}

Unit optimize_one(const std::string& name, const std::string& flow,
                  const Netlist& nl, const Cli& cli, const Library& lib,
                  const FactsPtr& facts) {
  Unit u;
  u.name = name;
  u.flow = flow;
  const osss::gate::TimingReport before = osss::gate::analyze_timing(nl, lib);
  u.area_before = before.area_ge;
  u.fmax_before = before.fmax_mhz;
  osss::opt::Pipeline pipeline = build_pipeline(cli, lib, facts);
  const Netlist out = pipeline.run(nl);
  u.stats = pipeline.stats();
  const osss::gate::TimingReport after = osss::gate::analyze_timing(out, lib);
  u.area_after = after.area_ge;
  u.fmax_after = after.fmax_mhz;
  if (!u.stats.empty()) {
    u.depth_before = u.stats.front().depth_before;
    u.depth_after = u.stats.back().depth_after;
  }
  return u;
}

double reduction_pct(double before, double after) {
  return before > 0.0 ? 100.0 * (before - after) / before : 0.0;
}

std::string render_text(const std::vector<Unit>& units) {
  std::ostringstream os;
  double total_before = 0.0, total_after = 0.0;
  for (const Unit& u : units) {
    os << "== " << u.flow << "/" << u.name << " ==\n";
    for (const PassStats& s : u.stats) os << "  " << s.format() << "\n";
    os << "  total: area " << u.area_before << " -> " << u.area_after
       << " GE (" << reduction_pct(u.area_before, u.area_after)
       << "% reduction), fmax " << u.fmax_before << " -> " << u.fmax_after
       << " MHz, depth " << u.depth_before << " -> " << u.depth_after << "\n";
    total_before += u.area_before;
    total_after += u.area_after;
  }
  os << "flow total: area " << total_before << " -> " << total_after
     << " GE (" << reduction_pct(total_before, total_after)
     << "% reduction) across " << units.size() << " unit(s)\n";
  return os.str();
}

std::string render_json(const std::vector<Unit>& units) {
  std::ostringstream os;
  double total_before = 0.0, total_after = 0.0;
  os << "{\"units\":[";
  for (std::size_t i = 0; i < units.size(); ++i) {
    const Unit& u = units[i];
    if (i) os << ",";
    os << "{\"name\":\"" << u.name << "\",\"flow\":\"" << u.flow
       << "\",\"area_before\":" << u.area_before
       << ",\"area_after\":" << u.area_after
       << ",\"fmax_before\":" << u.fmax_before
       << ",\"fmax_after\":" << u.fmax_after << ",\"passes\":[";
    for (std::size_t j = 0; j < u.stats.size(); ++j) {
      const PassStats& s = u.stats[j];
      if (j) os << ",";
      os << "{\"pass\":\"" << s.pass << "\",\"cells_before\":" << s.cells_before
         << ",\"cells_after\":" << s.cells_after
         << ",\"gates_before\":" << s.gates_before
         << ",\"gates_after\":" << s.gates_after
         << ",\"dffs_before\":" << s.dffs_before
         << ",\"dffs_after\":" << s.dffs_after
         << ",\"depth_before\":" << s.depth_before
         << ",\"depth_after\":" << s.depth_after
         << ",\"area_before\":" << s.area_before
         << ",\"area_after\":" << s.area_after << ",\"changes\":" << s.changes
         << ",\"fact_merges\":" << s.fact_merges
         << ",\"odc_merges\":" << s.odc_merges
         << ",\"wall_ms\":" << s.wall_ms
         << ",\"verified\":" << (s.verified ? "true" : "false") << "}";
    }
    os << "]}";
    total_before += u.area_before;
    total_after += u.area_after;
  }
  os << "],\"total_area_before\":" << total_before
     << ",\"total_area_after\":" << total_after << "}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse_args(argc, argv, cli)) {
    std::cerr << "usage: osss-opt [--flow=osss|vhdl|both] "
                 "[--passes=NAME,...] [--fuzz=N] [--seed=S]\n"
                 "                [--check=0|1] [--format=text|json] "
                 "[--out=FILE] [--list-passes]\n";
    return 2;
  }
  if (cli.list_passes) {
    for (const auto& p : osss::opt::pass_registry())
      std::cout << p.name << "  " << p.title << "\n";
    return 0;
  }

  const Library lib = Library::generic();
  std::vector<Unit> units;
  try {
    if (cli.run_osss)
      for (const auto& c : osss::expocu::build_osss_flow())
        units.push_back(optimize_one(c.name, "osss",
                                     osss::gate::lower_to_gates(c.module),
                                     cli, lib, facts_of(c.module)));
    if (cli.run_vhdl)
      for (const auto& c : osss::expocu::build_vhdl_flow())
        units.push_back(optimize_one(c.name, "vhdl",
                                     osss::gate::lower_to_gates(c.module),
                                     cli, lib, facts_of(c.module)));
    std::mt19937_64 rng(cli.seed);
    for (unsigned i = 0; i < cli.fuzz; ++i) {
      osss::verify::RandomModuleOptions ropt;
      ropt.ops = 20 + i % 40;
      ropt.with_memory = i % 3 == 0;
      ropt.with_shared_mux = i % 5 == 0;
      ropt.with_polymorphic = i % 7 == 0;
      const auto m = osss::verify::random_module(rng, ropt);
      units.push_back(optimize_one("fuzz_" + std::to_string(i), "fuzz",
                                   osss::gate::lower_to_gates(m), cli, lib,
                                   facts_of(m)));
    }
  } catch (const std::logic_error& e) {
    std::cerr << "osss-opt: " << e.what() << "\n";
    return 1;  // differential self-check failure
  } catch (const std::exception& e) {
    std::cerr << "osss-opt: " << e.what() << "\n";
    return 2;
  }

  const std::string body =
      cli.format == "json" ? render_json(units) : render_text(units);
  if (cli.out.empty()) {
    std::cout << body;
  } else {
    std::ofstream f(cli.out);
    if (!f) {
      std::cerr << "osss-opt: cannot write '" << cli.out << "'\n";
      return 2;
    }
    f << body;
  }
  return 0;
}
