// osss-lint — command-line front end of the analyzer subsystem.
//
// Lints the ExpoCU evaluation designs (both flows, RTL and gate level) and
// fuzz corpora of random modules through the rule packs in src/lint.  CI
// runs `osss-lint --format=json` and fails the build on error-severity
// findings — the reproduction's analogue of the analyzer gate at the front
// of the paper's OSSS design flow (its Fig. 6).
//
// Usage:
//   osss-lint [--flow=osss|vhdl|both] [--level=rtl|gate|both] [--opt]
//             [--fuzz=N] [--seed=S] [--format=text|json|sarif] [--out=FILE]
//             [--suppress=RULE[,RULE...]] [--fail-on=error|warning|never]
//             [--fanout-warn=N] [--list-rules] [--explain=RULE-ID]
//             [--rules-doc]
//
// Exit codes: 0 clean (below fail-on), 1 findings at/above fail-on,
// 2 usage or I/O error.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "expocu/flows.hpp"
#include "gate/lower.hpp"
#include "lint/dataflow.hpp"
#include "lint/lint.hpp"
#include "opt/opt.hpp"
#include "verify/random_module.hpp"

namespace {

using osss::lint::Options;
using osss::lint::Report;
using osss::lint::Severity;

struct Unit {
  std::string name;
  std::string flow;   // "osss", "vhdl", "fuzz"
  std::string level;  // "rtl", "gate"
  Report report;
};

struct Cli {
  bool lint_osss = true;
  bool lint_vhdl = true;
  bool lint_rtl = true;
  bool lint_gate = true;
  bool lint_opt = false;  ///< --opt: run the optimization pipeline, report
                          ///< pass stats as OPT-001/OPT-002 diagnostics
  unsigned fuzz = 0;
  std::uint64_t seed = 1;
  std::string format = "text";
  std::string out;
  std::string fail_on = "error";
  bool list_rules = false;
  bool rules_doc = false;
  std::string explain;  ///< --explain=RULE-ID: print registry description
  Options opt;
};

bool parse_args(int argc, char** argv, Cli& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const std::string& prefix) -> std::optional<std::string> {
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
      return std::nullopt;
    };
    if (a == "--list-rules") {
      cli.list_rules = true;
    } else if (a == "--rules-doc") {
      cli.rules_doc = true;
    } else if (auto v = value("--explain=")) {
      cli.explain = *v;
    } else if (a == "--opt") {
      cli.lint_opt = true;
    } else if (auto v = value("--flow=")) {
      cli.lint_osss = *v == "osss" || *v == "both";
      cli.lint_vhdl = *v == "vhdl" || *v == "both";
      if (!cli.lint_osss && !cli.lint_vhdl) return false;
    } else if (auto v = value("--level=")) {
      cli.lint_rtl = *v == "rtl" || *v == "both";
      cli.lint_gate = *v == "gate" || *v == "both";
      if (!cli.lint_rtl && !cli.lint_gate) return false;
    } else if (auto v = value("--fuzz=")) {
      cli.fuzz = static_cast<unsigned>(std::stoul(*v));
    } else if (auto v = value("--seed=")) {
      cli.seed = std::stoull(*v);
    } else if (auto v = value("--format=")) {
      if (*v != "text" && *v != "json" && *v != "sarif") return false;
      cli.format = *v;
    } else if (auto v = value("--out=")) {
      cli.out = *v;
    } else if (auto v = value("--fail-on=")) {
      if (*v != "error" && *v != "warning" && *v != "never") return false;
      cli.fail_on = *v;
    } else if (auto v = value("--fanout-warn=")) {
      cli.opt.fanout_warn_threshold = static_cast<unsigned>(std::stoul(*v));
    } else if (auto v = value("--suppress=")) {
      std::stringstream ss(*v);
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        if (osss::lint::find_rule(rule) == nullptr) {
          std::cerr << "osss-lint: unknown rule '" << rule << "'\n";
          return false;
        }
        cli.opt.suppress.insert(rule);
      }
    } else {
      return false;
    }
  }
  return true;
}

/// Run the optimization pipeline and report its per-pass statistics as
/// diagnostics: OPT-001 (info) per pass, OPT-002 (warning) when a pass
/// regressed area or logic depth.
Report lint_opt_pipeline(const osss::gate::Netlist& nl, const Options& opt,
                         const osss::rtl::Module& m) {
  Report report;
  std::vector<osss::opt::PassStats> stats;
  osss::opt::PipelineOptions po;
  // Feed the pipeline the register-bit constants the abstract interpreter
  // proved on the RTL source — the lint tool already has the module in
  // hand, so the optimizer report reflects the fact-seeded sweep.
  po.facts = std::make_shared<const std::unordered_map<std::string, bool>>(
      osss::lint::analyze_dataflow(m).const_reg_bits());
  osss::opt::optimize(nl, po, &stats);
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const auto& s = stats[i];
    if (!opt.suppressed("OPT-001")) {
      osss::lint::Diagnostic d;
      d.rule = "OPT-001";
      d.severity = Severity::kInfo;
      d.source = nl.name();
      d.object = s.pass;
      d.index = static_cast<std::int64_t>(i);
      d.message = "optimization pass statistics";
      d.note = s.format();
      report.add(std::move(d));
    }
    const bool regressed =
        s.area_after > s.area_before || s.depth_after > s.depth_before;
    if (regressed && !opt.suppressed("OPT-002")) {
      osss::lint::Diagnostic d;
      d.rule = "OPT-002";
      d.severity = Severity::kWarning;
      d.source = nl.name();
      d.object = s.pass;
      d.index = static_cast<std::int64_t>(i);
      d.message = "optimization pass regressed area or logic depth";
      d.note = s.format();
      report.add(std::move(d));
    }
  }
  return report;
}

void lint_one(const std::string& name, const std::string& flow,
              const osss::rtl::Module& m, const Cli& cli,
              std::vector<Unit>& units) {
  if (cli.lint_rtl)
    units.push_back(
        {name, flow, "rtl", osss::lint::lint_module(m, cli.opt)});
  if (cli.lint_gate || cli.lint_opt) {
    const auto nl = osss::gate::lower_to_gates(m);
    if (cli.lint_gate)
      units.push_back(
          {name, flow, "gate", osss::lint::lint_netlist(nl, cli.opt)});
    if (cli.lint_opt)
      units.push_back({name, flow, "opt", lint_opt_pipeline(nl, cli.opt, m)});
  }
}

std::string render_text(const std::vector<Unit>& units) {
  std::ostringstream os;
  std::size_t errors = 0, warnings = 0, infos = 0;
  for (const Unit& u : units) {
    os << "== " << u.flow << "/" << u.name << " [" << u.level << "] ==\n"
       << u.report.text() << "\n";
    errors += u.report.error_count();
    warnings += u.report.warning_count();
    infos += u.report.count(Severity::kInfo);
  }
  os << "total: " << errors << " error(s), " << warnings << " warning(s), "
     << infos << " info across " << units.size() << " unit(s)\n";
  return os.str();
}

std::string render_sarif(const std::vector<Unit>& units) {
  // One SARIF run across every unit; the flow and analysis level move into
  // the logical location ("osss/camera_sync[gate].netlist") because the
  // per-module source alone is ambiguous between flows.
  Report merged;
  for (const Unit& u : units) {
    for (osss::lint::Diagnostic d : u.report.diags()) {
      d.source = u.flow + "/" + d.source + "[" + u.level + "]";
      merged.add(std::move(d));
    }
  }
  return osss::lint::to_sarif(merged) + "\n";
}

std::string render_json(const std::vector<Unit>& units) {
  std::ostringstream os;
  std::size_t errors = 0, warnings = 0, infos = 0;
  os << "{\"units\":[";
  for (std::size_t i = 0; i < units.size(); ++i) {
    const Unit& u = units[i];
    if (i) os << ",";
    os << "{\"name\":\"" << osss::lint::json_escape(u.name) << "\",\"flow\":\""
       << u.flow << "\",\"level\":\"" << u.level
       << "\",\"report\":" << u.report.json() << "}";
    errors += u.report.error_count();
    warnings += u.report.warning_count();
    infos += u.report.count(Severity::kInfo);
  }
  os << "],\"errors\":" << errors << ",\"warnings\":" << warnings
     << ",\"info\":" << infos << "}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse_args(argc, argv, cli)) {
    std::cerr << "usage: osss-lint [--flow=osss|vhdl|both] "
                 "[--level=rtl|gate|both] [--opt] [--fuzz=N] [--seed=S]\n"
                 "                 [--format=text|json|sarif] [--out=FILE] "
                 "[--suppress=RULE,...]\n"
                 "                 [--fail-on=error|warning|never] "
                 "[--fanout-warn=N] [--list-rules]\n"
                 "                 [--explain=RULE-ID] [--rules-doc]\n";
    return 2;
  }
  if (cli.list_rules) {
    for (const auto& r : osss::lint::rule_registry())
      std::cout << r.id << "  " << osss::lint::severity_name(r.default_severity)
                << "  [" << r.pack << "]  " << r.title << "\n";
    return 0;
  }
  if (cli.rules_doc) {
    std::cout << osss::lint::rules_markdown();
    return 0;
  }
  if (!cli.explain.empty()) {
    const osss::lint::RuleInfo* r = osss::lint::find_rule(cli.explain);
    if (r == nullptr) {
      std::cerr << "osss-lint: unknown rule '" << cli.explain
                << "' (see --list-rules)\n";
      return 2;
    }
    std::cout << r->id << " — " << r->title << "\n"
              << "pack: " << r->pack << ", default severity: "
              << osss::lint::severity_name(r->default_severity) << "\n\n"
              << r->description << "\n";
    return 0;
  }

  std::vector<Unit> units;
  try {
    if (cli.lint_osss)
      for (const auto& c : osss::expocu::build_osss_flow())
        lint_one(c.name, "osss", c.module, cli, units);
    if (cli.lint_vhdl)
      for (const auto& c : osss::expocu::build_vhdl_flow())
        lint_one(c.name, "vhdl", c.module, cli, units);
    std::mt19937_64 rng(cli.seed);
    for (unsigned i = 0; i < cli.fuzz; ++i) {
      osss::verify::RandomModuleOptions ropt;
      ropt.ops = 20 + i % 40;
      ropt.with_memory = i % 3 == 0;
      ropt.with_shared_mux = i % 5 == 0;
      ropt.with_polymorphic = i % 7 == 0;
      const auto m = osss::verify::random_module(rng, ropt);
      lint_one("fuzz_" + std::to_string(i), "fuzz", m, cli, units);
    }
  } catch (const std::exception& e) {
    std::cerr << "osss-lint: " << e.what() << "\n";
    return 2;
  }

  const std::string body = cli.format == "json"    ? render_json(units)
                           : cli.format == "sarif" ? render_sarif(units)
                                                   : render_text(units);
  if (cli.out.empty()) {
    std::cout << body;
  } else {
    std::ofstream f(cli.out);
    if (!f) {
      std::cerr << "osss-lint: cannot write '" << cli.out << "'\n";
      return 2;
    }
    f << body;
  }

  std::size_t gating = 0;
  for (const Unit& u : units) {
    if (cli.fail_on == "error") gating += u.report.error_count();
    if (cli.fail_on == "warning")
      gating += u.report.error_count() + u.report.warning_count();
  }
  return gating == 0 ? 0 : 1;
}
