#!/usr/bin/env python3
"""Gate the R7 simulation-speed benchmark (exp_r7_sim_speed JSON output).

Precondition — honest build type: every run and baseline must carry
``context.osss_build_type == "release"`` (the bench binary records this
itself, keyed on the optimizer; google benchmark's ``library_build_type``
only describes libbenchmark and once let a debug-build baseline land in
BENCH_r7.json).  Files that say "debug" — or predate the key — are
refused outright unless ``--allow-non-release`` is passed, because every
ratio measured from an -O0 build is garbage.

Four independent gates, each printed with its inputs so a CI log alone
explains a failure:

1. Tape floor: the compiled RTL tape engine must stay at least
   ``--min-ratio`` (default 5x) faster than the RTL interpreter — the
   repo's original tracked perf-trajectory point.

2. Native floor: the native-code backend's 256-lane SIMD row
   (``BM_RtlNativeLanesSim``) must reach ``--min-native-ratio``
   (default 3x) the interpreted tape's best row
   (``BM_RtlTapeLanesSim``), both in stimulus-vector cycles/s.  The
   ``native_code`` counter says whether the dlopen'd code actually ran
   (0 = threaded-code fallback), so a fallback-shaped miss is visible.

3. Gate-native floor: the gate-level generated-code engine
   (``BM_GateNativeSim``, 64 lanes) must reach
   ``--min-gate-native-ratio`` (default 3x) the 64-lane bit-parallel
   interpreter (``BM_GateBitParallelSim``), both in stimulus-vector
   cycles/s; ``native_code`` again distinguishes the dlopen'd code from
   the interpreted fallback.

4. Baseline ratios (``--baseline BENCH_r7.json``): engine-vs-engine
   throughput ratios of the current run must stay within
   ``--max-regression`` (default 0.5, i.e. no worse than half) of the
   same ratios in the committed reference JSON.  Comparing ratios rather
   than absolute cycles/s makes the gate robust against CI machines of
   different speeds.

5. Thread scaling: the 8-context sharded benchmarks
   (``BM_GateBitParallelShards/8/real_time``, ``BM_RtlTapeBatch/8``)
   must reach ``--min-scaling`` (default 3x) the 1-context throughput.
   Only enforced when the run's ``context.num_cpus`` is at least 8 —
   wall-clock scaling is meaningless on fewer cores, so the gate prints
   a LOUD skip banner instead (a skipped gate is not a passed gate).

6. JIT steady state: every native row carrying a
   ``jit_compiles_steady`` counter must report 0 — the engines are
   compiled (or loaded from ``$OSSS_JIT_CACHE_DIR``) during setup and
   must never invoke the compiler inside the timed loop.  A non-zero
   value means the measurement included compiler wall time.

The run's ``context.load_avg`` is always printed, and a 1-minute load
above ``num_cpus`` earns a warning: a loaded machine skews every
wall-clock row, so baselines should be captured quiet.

Usage: check_bench_r7.py out.json [--baseline BENCH_r7.json]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def find(benchmarks, name):
    for b in benchmarks:
        if b.get("name") == name and b.get("run_type", "iteration") != "aggregate":
            return b
    return None


def items_per_second(benchmarks, name, required=True):
    b = find(benchmarks, name)
    if b is None:
        if required:
            sys.exit(f"error: benchmark {name!r} not found in results")
        return None
    ips = b.get("items_per_second")
    if ips is None:
        sys.exit(f"error: {name} has no items_per_second counter")
    return float(ips)


def effective_build_type(data):
    """The honest build type of a result file.

    ``osss_build_type`` is written by the bench binary itself (keyed on
    the optimizer); ``library_build_type`` only describes how
    libbenchmark was built and is used as a last resort for files that
    predate the custom key.
    """
    ctx = data.get("context", {})
    return ctx.get("osss_build_type", ctx.get("library_build_type", "unknown"))


def check_build_type(data, what, allow_non_release):
    bt = effective_build_type(data)
    ctx = data.get("context", {})
    cpus = ctx.get("num_cpus", "?")
    load = ctx.get("load_avg")
    load_str = ("[" + ", ".join(f"{x:.2f}" for x in load) + "]"
                if isinstance(load, list) and load else "unknown")
    print(f"{what}: build_type={bt}  num_cpus={cpus}  load_avg={load_str}")
    if (isinstance(load, list) and load and isinstance(cpus, int)
            and load[0] > cpus):
        print(f"  WARNING: 1-minute load average {load[0]:.2f} exceeds "
              f"num_cpus={cpus} — the machine was busy while this file was "
              f"captured, so its wall-clock rates are suspect")
    if bt == "release":
        return True
    if allow_non_release:
        print(f"  WARNING: {what} is a {bt!r} build; ratios are not "
              f"meaningful (accepted via --allow-non-release)")
        return True
    print(f"FAIL: {what} was measured from a {bt!r} build — every ratio "
          f"from an unoptimized binary is garbage.  Re-run the bench from "
          f"a -DCMAKE_BUILD_TYPE=Release tree (or pass --allow-non-release "
          f"for a local smoke test).")
    return False


# Engine-vs-engine ratio pairs tracked against the committed baseline:
# (label, numerator benchmark, denominator benchmark).
RATIO_PAIRS = [
    ("tape/interp", "BM_RtlTapeSim", "BM_RtlCycleSim"),
    ("tape-lanes/interp", "BM_RtlTapeLanesSim", "BM_RtlCycleSim"),
    ("native/interp", "BM_RtlNativeSim", "BM_RtlCycleSim"),
    ("native-lanes/interp", "BM_RtlNativeLanesSim", "BM_RtlCycleSim"),
    ("levelized/event", "BM_GateLevelizedSim", "BM_GateEventSim"),
    ("bit-parallel/event", "BM_GateBitParallelSim", "BM_GateEventSim"),
    ("gate-native/event", "BM_GateNativeSim", "BM_GateEventSim"),
    ("gate-native-lanes/event", "BM_GateNativeLanesSim", "BM_GateEventSim"),
]

# Sharded benchmarks gated on 8-vs-1 context wall-clock scaling.
SCALING_BENCHES = [
    ("gate bit-parallel shards", "BM_GateBitParallelShards/{n}/real_time"),
    ("rtl tape batch", "BM_RtlTapeBatch/{n}/real_time"),
]


def check_tape_floor(benchmarks, min_ratio):
    interp = items_per_second(benchmarks, "BM_RtlCycleSim")
    tape = items_per_second(benchmarks, "BM_RtlTapeSim")
    tape_lanes = items_per_second(benchmarks, "BM_RtlTapeLanesSim")

    ratio = tape / interp if interp > 0 else float("inf")
    print(f"RTL interpreter : {interp:12.0f} cycles/s")
    print(f"RTL tape        : {tape:12.0f} cycles/s  ({ratio:.1f}x interpreter)")
    print(f"RTL tape x64    : {tape_lanes:12.0f} cycles/s  "
          f"({tape_lanes / interp:.1f}x interpreter)")

    b = find(benchmarks, "BM_RtlTapeSim")
    stats = {k: b[k] for k in
             ("tape_len", "arena_words", "nodes_evaluated",
              "levels_evaluated", "levels_skipped") if k in b}
    print(f"tape stats      : {stats}")

    if ratio < min_ratio:
        print(f"FAIL: tape engine is only {ratio:.2f}x the interpreter "
              f"(required >= {min_ratio}x)")
        return False
    print(f"OK: tape engine is {ratio:.2f}x the interpreter "
          f"(required >= {min_ratio}x)")
    return True


def check_native_floor(benchmarks, min_native_ratio):
    tape_lanes = items_per_second(benchmarks, "BM_RtlTapeLanesSim")
    native = items_per_second(benchmarks, "BM_RtlNativeSim", required=False)
    native_lanes = items_per_second(benchmarks, "BM_RtlNativeLanesSim",
                                    required=False)
    print()
    if native_lanes is None:
        print("FAIL: BM_RtlNativeLanesSim missing from results "
              "(native backend not benchmarked)")
        return False
    b = find(benchmarks, "BM_RtlNativeLanesSim")
    jit = b.get("native_code")
    lanes = b.get("lanes")
    if native is not None:
        print(f"RTL native      : {native:12.0f} cycles/s")
    print(f"RTL native x{int(lanes) if lanes else '?'} : {native_lanes:12.0f} "
          f"cycles/s  (native_code={int(jit) if jit is not None else '?'})")
    if jit == 0:
        print("  note: native_code=0 — the dlopen'd specialization did not "
              "run; this row measured the threaded-code fallback")
    ratio = native_lanes / tape_lanes if tape_lanes > 0 else float("inf")
    if ratio < min_native_ratio:
        print(f"FAIL: native SIMD lanes are only {ratio:.2f}x the "
              f"interpreted tape's best row (required >= {min_native_ratio}x)")
        return False
    print(f"OK: native SIMD lanes are {ratio:.2f}x the interpreted tape's "
          f"best row (required >= {min_native_ratio}x)")
    return True


def check_gate_native_floor(benchmarks, min_ratio):
    bitparallel = items_per_second(benchmarks, "BM_GateBitParallelSim")
    native = items_per_second(benchmarks, "BM_GateNativeSim", required=False)
    native_lanes = items_per_second(benchmarks, "BM_GateNativeLanesSim",
                                    required=False)
    print()
    if native is None:
        print("FAIL: BM_GateNativeSim missing from results "
              "(gate native backend not benchmarked)")
        return False
    b = find(benchmarks, "BM_GateNativeSim")
    jit = b.get("native_code")
    print(f"gate bit-par x64: {bitparallel:12.0f} cycles/s")
    print(f"gate native x64 : {native:12.0f} cycles/s  "
          f"(native_code={int(jit) if jit is not None else '?'})")
    if native_lanes is not None:
        wl = find(benchmarks, "BM_GateNativeLanesSim")
        lanes = wl.get("lanes")
        print(f"gate native x{int(lanes) if lanes else '?'}: "
              f"{native_lanes:12.0f} cycles/s")
    if jit == 0:
        print("  note: native_code=0 — the dlopen'd specialization did not "
              "run; this row measured the interpreted fallback")
    ratio = native / bitparallel if bitparallel > 0 else float("inf")
    if ratio < min_ratio:
        print(f"FAIL: gate native engine is only {ratio:.2f}x the 64-lane "
              f"bit-parallel interpreter (required >= {min_ratio}x)")
        return False
    print(f"OK: gate native engine is {ratio:.2f}x the 64-lane bit-parallel "
          f"interpreter (required >= {min_ratio}x)")
    return True


def check_baseline(benchmarks, baseline_benchmarks, max_regression):
    ok = True
    print("\nengine ratios vs committed baseline "
          f"(must stay >= {max_regression:.2f}x of baseline):")
    for label, num, den in RATIO_PAIRS:
        cur = items_per_second(benchmarks, num) / items_per_second(benchmarks, den)
        base_num = items_per_second(baseline_benchmarks, num, required=False)
        base_den = items_per_second(baseline_benchmarks, den, required=False)
        if not base_num or not base_den:
            print(f"  {label:20s} current {cur:7.2f}x  (no baseline entry, skipped)")
            continue
        base = base_num / base_den
        rel = cur / base if base > 0 else float("inf")
        verdict = "ok" if rel >= max_regression else "FAIL"
        print(f"  {label:20s} current {cur:7.2f}x  baseline {base:7.2f}x  "
              f"({rel:.2f}x of baseline) {verdict}")
        ok = ok and rel >= max_regression
    return ok


# Native rows expected to carry the jit_compiles_steady counter.
JIT_STEADY_BENCHES = [
    "BM_RtlNativeSim",
    "BM_RtlNativeLanesSim",
    "BM_GateNativeSim",
    "BM_GateNativeLanesSim",
]


def check_jit_steady(benchmarks):
    """No compiler invocations inside any timed native loop."""
    ok = True
    print("\njit steady state (compiles during the timed loop must be 0):")
    for name in JIT_STEADY_BENCHES:
        b = find(benchmarks, name)
        if b is None:
            print(f"  {name:24s} missing from results, skipped")
            continue
        steady = b.get("jit_compiles_steady")
        if steady is None:
            print(f"  {name:24s} no jit_compiles_steady counter "
                  f"(pre-counter binary), skipped")
            continue
        setup = b.get("jit_compiles", 0)
        disk = b.get("jit_disk_hits", 0)
        verdict = "ok" if steady == 0 else "FAIL"
        print(f"  {name:24s} setup compiles={int(setup)} "
              f"disk_hits={int(disk)} steady compiles={int(steady)} {verdict}")
        if steady != 0:
            print(f"    FAIL: {name} invoked the JIT compiler {int(steady)} "
                  f"time(s) inside the timed loop — the row measured "
                  f"compiler wall time, not engine throughput")
            ok = False
    return ok


def check_scaling(data, min_scaling):
    benchmarks = data.get("benchmarks", [])
    num_cpus = data.get("context", {}).get("num_cpus", 0)
    print(f"\nthread scaling (run on {num_cpus} cpus):")
    if num_cpus < 8:
        print("  " + "!" * 66)
        print(f"  !! SKIPPED — NOT PASSED: the scaling gate needs >= 8 cpus "
              f"and this")
        print(f"  !! run had num_cpus={num_cpus}.  The 1->8 context speedup "
              f"was NOT verified;")
        print(f"  !! re-run on an >= 8-core machine to exercise this gate.")
        print("  " + "!" * 66)
        return True
    ok = True
    for label, pattern in SCALING_BENCHES:
        one = items_per_second(benchmarks, pattern.format(n=1), required=False)
        eight = items_per_second(benchmarks, pattern.format(n=8), required=False)
        if one is None or eight is None:
            print(f"  {label:28s} missing 1/8-thread entries, skipped")
            continue
        scale = eight / one if one > 0 else float("inf")
        verdict = "ok" if scale >= min_scaling else "FAIL"
        print(f"  {label:28s} {scale:.2f}x at 8 threads "
              f"(required >= {min_scaling}x) {verdict}")
        ok = ok and scale >= min_scaling
    return ok


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_path")
    ap.add_argument("--baseline", default=None,
                    help="committed reference BENCH_r7.json to compare "
                         "engine ratios against")
    ap.add_argument("--min-ratio", type=float, default=5.0,
                    help="minimum tape/interpreter cycles-per-second ratio")
    ap.add_argument("--min-native-ratio", type=float, default=3.0,
                    help="minimum native-SIMD vs interpreted-tape "
                         "vector-cycles-per-second ratio")
    ap.add_argument("--min-gate-native-ratio", type=float, default=3.0,
                    help="minimum gate-native vs bit-parallel "
                         "vector-cycles-per-second ratio")
    ap.add_argument("--max-regression", type=float, default=0.5,
                    help="minimum current/baseline ratio-of-ratios")
    ap.add_argument("--min-scaling", type=float, default=3.0,
                    help="minimum 8-thread vs 1-thread real-time speedup")
    ap.add_argument("--allow-non-release", action="store_true",
                    help="accept debug-build results (local smoke tests "
                         "only; ratios are meaningless)")
    args = ap.parse_args()

    data = load(args.json_path)
    benchmarks = data.get("benchmarks", [])

    ok = check_build_type(data, "run", args.allow_non_release)
    baseline_data = load(args.baseline) if args.baseline else None
    if baseline_data is not None:
        ok = check_build_type(baseline_data, "baseline",
                              args.allow_non_release) and ok
    if not ok:
        # Don't grade ratios measured from an unoptimized binary.
        return 1
    print()

    ok = check_tape_floor(benchmarks, args.min_ratio)
    ok = check_native_floor(benchmarks, args.min_native_ratio) and ok
    ok = check_gate_native_floor(benchmarks, args.min_gate_native_ratio) and ok
    if baseline_data is not None:
        ok = check_baseline(benchmarks, baseline_data.get("benchmarks", []),
                            args.max_regression) and ok
    ok = check_jit_steady(benchmarks) and ok
    ok = check_scaling(data, args.min_scaling) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
