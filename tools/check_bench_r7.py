#!/usr/bin/env python3
"""Gate the R7 simulation-speed benchmark (BENCH_r7.json).

Reads the Google Benchmark JSON produced by exp_r7_sim_speed and fails
(exit 1) if the compiled RTL tape engine's throughput drops below a
multiple of the RTL interpreter's — the repo's tracked perf-trajectory
point for the word-level tape rebuild.

Usage: check_bench_r7.py BENCH_r7.json [--min-ratio 5.0]
"""

import argparse
import json
import sys


def items_per_second(benchmarks, name):
    for b in benchmarks:
        if b.get("name") == name and b.get("run_type", "iteration") != "aggregate":
            ips = b.get("items_per_second")
            if ips is None:
                sys.exit(f"error: {name} has no items_per_second counter")
            return float(ips)
    sys.exit(f"error: benchmark {name!r} not found in results")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_path")
    ap.add_argument("--min-ratio", type=float, default=5.0,
                    help="minimum tape/interpreter cycles-per-second ratio")
    args = ap.parse_args()

    with open(args.json_path) as f:
        data = json.load(f)
    benchmarks = data.get("benchmarks", [])

    interp = items_per_second(benchmarks, "BM_RtlCycleSim")
    tape = items_per_second(benchmarks, "BM_RtlTapeSim")
    tape_lanes = items_per_second(benchmarks, "BM_RtlTapeLanesSim")

    ratio = tape / interp if interp > 0 else float("inf")
    print(f"RTL interpreter : {interp:12.0f} cycles/s")
    print(f"RTL tape        : {tape:12.0f} cycles/s  ({ratio:.1f}x interpreter)")
    print(f"RTL tape x64    : {tape_lanes:12.0f} cycles/s  "
          f"({tape_lanes / interp:.1f}x interpreter)")

    for b in benchmarks:
        if b.get("name") == "BM_RtlTapeSim":
            stats = {k: b[k] for k in
                     ("tape_len", "arena_words", "nodes_evaluated",
                      "levels_evaluated", "levels_skipped") if k in b}
            print(f"tape stats      : {stats}")
            break

    if ratio < args.min_ratio:
        print(f"FAIL: tape engine is only {ratio:.2f}x the interpreter "
              f"(required >= {args.min_ratio}x)")
        return 1
    print(f"OK: tape engine is {ratio:.2f}x the interpreter "
          f"(required >= {args.min_ratio}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
