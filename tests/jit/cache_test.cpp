// cache_test.cpp — the persistent JIT object cache and its failure modes.
//
// The disk layer ($OSSS_JIT_CACHE_DIR) must be invisible when things go
// wrong: a truncated or stale artifact, an unwritable directory, or an
// unset variable all have to land on the same behavior as the in-memory
// path — compile fresh, never hand a bad object to an engine.  The suite
// drives jit::compile directly (tiny one-symbol sources), checks the
// cross-process flock contract with fork'd children, pins the LRU
// eviction order, and closes with an end-to-end gate-engine case where a
// published artifact carries the wrong lane count and must be rejected by
// the engine's validate probe.
//
// The WarmCache environment at the bottom backs the CI warm-start job:
// when OSSS_JIT_EXPECT_WARM is set, every test process asserts it invoked
// the compiler zero times (ctest runs one process per test, so this
// covers each Native test individually).

#include "jit/jit.hpp"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "gate/lower.hpp"
#include "gate/sim.hpp"
#include "rtl/builder.hpp"

namespace fs = std::filesystem;

namespace osss::jit {
namespace {

/// Scoped environment override, restoring the previous value on exit.
/// Pass nullptr to unset the variable for the scope.
struct EnvVar {
  std::string name;
  std::string old;
  bool had;
  EnvVar(const char* n, const char* v) : name(n) {
    const char* o = std::getenv(n);
    had = o != nullptr;
    if (had) old = o;
    if (v != nullptr)
      ::setenv(n, v, 1);
    else
      ::unsetenv(n);
  }
  ~EnvVar() {
    if (had)
      ::setenv(name.c_str(), old.c_str(), 1);
    else
      ::unsetenv(name.c_str());
  }
};

/// Private mkdtemp directory, removed with everything in it on exit.
struct TempDir {
  std::string path;
  TempDir() {
    const char* t = std::getenv("TMPDIR");
    std::string tmpl = (t != nullptr && *t != '\0' ? std::string(t)
                                                   : std::string("/tmp")) +
                       "/osss-cache-test-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) != nullptr) path = buf.data();
  }
  ~TempDir() {
    if (!path.empty()) {
      std::error_code ec;
      fs::remove_all(path, ec);
    }
  }
};

bool jit_disabled() { return jit_disabled_by_env(); }

/// One exported symbol per id keeps cache keys distinct between tests
/// sharing a process; equal-length ids keep the compiled .so sizes equal
/// (the LRU test relies on that).
std::string tiny_source(const std::string& id) {
  return "extern \"C\" unsigned osss_cache_probe_" + id + "() { return " +
         std::to_string(id.size()) + "u; }\n";
}

fs::path artifact_path(const std::string& dir, const std::string& source,
                       const CompileOptions& opt, const char* tag) {
  char hex[24];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(source_hash(source, opt)));
  return fs::path(dir) / (std::string(tag) + "-" + hex + ".so");
}

TEST(JitDiskCache, PublishAndWarmLoad) {
  if (jit_disabled()) GTEST_SKIP() << "OSSS_NO_JIT set";
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  EnvVar cache_dir("OSSS_JIT_CACHE_DIR", dir.path.c_str());
  const std::string src = tiny_source("warmload");
  const CompileOptions opt;
  std::string log;

  const CacheStats before = cache_stats();
  std::shared_ptr<Object> obj = compile(src, opt, "osss-jt", log);
  ASSERT_NE(obj, nullptr) << log;
  EXPECT_NE(obj->sym("osss_cache_probe_warmload"), nullptr);
  const CacheStats mid = cache_stats();
  EXPECT_EQ(mid.compiles, before.compiles + 1);
  EXPECT_EQ(mid.disk_misses, before.disk_misses + 1);
  const fs::path so = artifact_path(dir.path, src, opt, "osss-jt");
  EXPECT_TRUE(fs::exists(so)) << "compile did not publish " << so;

  // Drop the only live reference so the in-memory entry dies; the next
  // compile must come from the published artifact, not the compiler.
  obj.reset();
  std::string log2;
  std::shared_ptr<Object> warm = compile(src, opt, "osss-jt", log2);
  ASSERT_NE(warm, nullptr) << log2;
  EXPECT_NE(warm->sym("osss_cache_probe_warmload"), nullptr);
  const CacheStats after = cache_stats();
  EXPECT_EQ(after.compiles, mid.compiles) << "warm load ran the compiler";
  EXPECT_EQ(after.disk_hits, mid.disk_hits + 1);
}

TEST(JitDiskCache, TruncatedArtifactFallsBackToFreshCompile) {
  if (jit_disabled()) GTEST_SKIP() << "OSSS_NO_JIT set";
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  EnvVar cache_dir("OSSS_JIT_CACHE_DIR", dir.path.c_str());
  const std::string src = tiny_source("truncated");
  const CompileOptions opt;
  std::string log;
  compile(src, opt, "osss-jt", log).reset();
  const fs::path so = artifact_path(dir.path, src, opt, "osss-jt");
  ASSERT_TRUE(fs::exists(so));
  {  // corrupt the published artifact: dlopen must reject it
    std::ofstream f(so, std::ios::trunc | std::ios::binary);
    f << "xx";
  }
  const CacheStats before = cache_stats();
  std::string log2;
  std::shared_ptr<Object> obj = compile(src, opt, "osss-jt", log2);
  ASSERT_NE(obj, nullptr) << log2;
  EXPECT_NE(obj->sym("osss_cache_probe_truncated"), nullptr);
  const CacheStats after = cache_stats();
  EXPECT_EQ(after.compiles, before.compiles + 1)
      << "corrupt artifact was not recompiled";
  EXPECT_EQ(after.disk_misses, before.disk_misses + 1);
  EXPECT_GT(fs::file_size(so), 2u) << "fresh artifact was not republished";
}

TEST(JitDiskCache, ValidateHookGatesDiskLoads) {
  if (jit_disabled()) GTEST_SKIP() << "OSSS_NO_JIT set";
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  EnvVar cache_dir("OSSS_JIT_CACHE_DIR", dir.path.c_str());
  const std::string src = tiny_source("validate");
  std::string log;
  compile(src, CompileOptions{}, "osss-jt", log).reset();

  // A rejecting probe (what an engine does on an ABI or lane-count
  // mismatch) must discard the artifact and compile fresh — validate is
  // not part of the key, so this hits the same artifact.
  CompileOptions reject;
  reject.validate = [](const Object&) { return false; };
  const CacheStats before = cache_stats();
  std::string log2;
  std::shared_ptr<Object> obj = compile(src, reject, "osss-jt", log2);
  ASSERT_NE(obj, nullptr) << log2;
  CacheStats after = cache_stats();
  EXPECT_EQ(after.compiles, before.compiles + 1);
  EXPECT_EQ(after.disk_misses, before.disk_misses + 1);
  obj.reset();

  // An accepting probe loads the republished artifact without compiling.
  CompileOptions accept;
  accept.validate = [](const Object& o) {
    return o.sym("osss_cache_probe_validate") != nullptr;
  };
  std::string log3;
  std::shared_ptr<Object> warm = compile(src, accept, "osss-jt", log3);
  ASSERT_NE(warm, nullptr) << log3;
  const CacheStats last = cache_stats();
  EXPECT_EQ(last.compiles, after.compiles);
  EXPECT_EQ(last.disk_hits, after.disk_hits + 1);
}

TEST(JitDiskCache, UnsetDirBehavesLikeInMemoryOnly) {
  if (jit_disabled()) GTEST_SKIP() << "OSSS_NO_JIT set";
  EnvVar cache_dir("OSSS_JIT_CACHE_DIR", nullptr);
  const std::string src = tiny_source("memonly1");
  std::string log;
  const CacheStats before = cache_stats();
  std::shared_ptr<Object> obj = compile(src, CompileOptions{}, "osss-jt", log);
  ASSERT_NE(obj, nullptr) << log;
  // Live-object sharing still works...
  std::string log2;
  std::shared_ptr<Object> again =
      compile(src, CompileOptions{}, "osss-jt", log2);
  EXPECT_EQ(again.get(), obj.get());
  // ...and the disk counters never move.
  obj.reset();
  again.reset();
  std::string log3;
  compile(src, CompileOptions{}, "osss-jt", log3).reset();
  const CacheStats after = cache_stats();
  EXPECT_EQ(after.compiles, before.compiles + 2)
      << "a dead in-memory entry must recompile when no disk layer exists";
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.disk_hits, before.disk_hits);
  EXPECT_EQ(after.disk_misses, before.disk_misses);
  EXPECT_EQ(after.disk_evictions, before.disk_evictions);
}

TEST(JitDiskCache, UnwritableDirDegradesSilently) {
  if (jit_disabled()) GTEST_SKIP() << "OSSS_NO_JIT set";
  // A directory that can neither be created nor written: compiles must
  // still succeed, exactly like the in-memory-only path.
  EnvVar cache_dir("OSSS_JIT_CACHE_DIR", "/dev/null/osss-nope");
  const std::string src = tiny_source("unwritable");
  std::string log;
  const CacheStats before = cache_stats();
  std::shared_ptr<Object> obj = compile(src, CompileOptions{}, "osss-jt", log);
  ASSERT_NE(obj, nullptr) << log;
  EXPECT_NE(obj->sym("osss_cache_probe_unwritable"), nullptr);
  const CacheStats after = cache_stats();
  EXPECT_EQ(after.compiles, before.compiles + 1);
  EXPECT_EQ(after.disk_hits, before.disk_hits);
}

TEST(JitDiskCache, TwoProcessesPublishExactlyOneCompile) {
  if (jit_disabled()) GTEST_SKIP() << "OSSS_NO_JIT set";
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  EnvVar cache_dir("OSSS_JIT_CACHE_DIR", dir.path.c_str());
  const std::string src = tiny_source("twoproc");
  const std::uint64_t base = cache_stats().compiles;  // inherited by forks

  // Both children race the same key into the shared directory.  The
  // per-key flock serializes them: whoever takes the lock first compiles
  // and publishes, the other wakes, re-probes and loads the artifact —
  // so the children report exactly one compile between them.
  pid_t kids[2];
  for (pid_t& kid : kids) {
    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      std::string log;
      std::shared_ptr<Object> obj =
          compile(src, CompileOptions{}, "osss-jt", log);
      if (obj == nullptr || obj->sym("osss_cache_probe_twoproc") == nullptr)
        ::_exit(77);
      ::_exit(static_cast<int>(cache_stats().compiles - base));
    }
    kid = pid;
  }
  int total = 0;
  for (const pid_t kid : kids) {
    int st = 0;
    ASSERT_EQ(::waitpid(kid, &st, 0), kid);
    ASSERT_TRUE(WIFEXITED(st));
    ASSERT_NE(WEXITSTATUS(st), 77) << "child failed to load the object";
    total += WEXITSTATUS(st);
  }
  EXPECT_EQ(total, 1) << "the flock'd publish must cost one compile total";
  EXPECT_TRUE(fs::exists(artifact_path(dir.path, src, {}, "osss-jt")));
}

TEST(JitDiskCache, LruEvictsOldestArtifactFirst) {
  if (jit_disabled()) GTEST_SKIP() << "OSSS_NO_JIT set";
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  EnvVar cache_dir("OSSS_JIT_CACHE_DIR", dir.path.c_str());
  const std::string src_a = tiny_source("aaaaaaaa");
  const std::string src_b = tiny_source("bbbbbbbb");
  const std::string src_c = tiny_source("cccccccc");
  std::string log;
  {  // publish A and B with eviction disabled
    EnvVar cap("OSSS_JIT_CACHE_MAX_BYTES", "0");
    compile(src_a, CompileOptions{}, "osss-jt", log).reset();
    compile(src_b, CompileOptions{}, "osss-jt", log).reset();
  }
  const fs::path so_a = artifact_path(dir.path, src_a, {}, "osss-jt");
  const fs::path so_b = artifact_path(dir.path, src_b, {}, "osss-jt");
  const fs::path so_c = artifact_path(dir.path, src_c, {}, "osss-jt");
  ASSERT_TRUE(fs::exists(so_a));
  ASSERT_TRUE(fs::exists(so_b));
  const auto now = fs::file_time_type::clock::now();
  fs::last_write_time(so_a, now - std::chrono::hours(2));  // oldest
  fs::last_write_time(so_b, now - std::chrono::hours(1));

  // Cap so that publishing C overflows and evicting one artifact (the
  // oldest) fits again; the sources are equal-length so the three .so
  // sizes match to within the slack.
  const std::uintmax_t cap_bytes =
      fs::file_size(so_a) + fs::file_size(so_b) + 4096;
  EnvVar cap("OSSS_JIT_CACHE_MAX_BYTES", std::to_string(cap_bytes).c_str());
  const CacheStats before = cache_stats();
  compile(src_c, CompileOptions{}, "osss-jt", log).reset();
  const CacheStats after = cache_stats();
  EXPECT_GE(after.disk_evictions, before.disk_evictions + 1);
  EXPECT_FALSE(fs::exists(so_a)) << "LRU must drop the oldest artifact";
  EXPECT_TRUE(fs::exists(so_b));
  EXPECT_TRUE(fs::exists(so_c)) << "never evict the freshly published key";
}

// --- end-to-end: a stale artifact with the wrong ABI never reaches an
// engine ---------------------------------------------------------------

TEST(JitDiskCache, GateEngineRejectsWrongLanesArtifact) {
  if (jit_disabled()) GTEST_SKIP() << "OSSS_NO_JIT set";
  TempDir dir;
  ASSERT_FALSE(dir.path.empty());
  EnvVar cache_dir("OSSS_JIT_CACHE_DIR", dir.path.c_str());

  rtl::Builder b("stale");
  const rtl::Wire a = b.input("a", 8);
  const rtl::Wire q = b.reg("q", 8);
  b.connect(q, b.add(q, a));
  b.output("o", q);
  const gate::Netlist nl = gate::lower_to_gates(b.take());

  // Publish the 64-lane artifact, then plant it under the 128-lane key:
  // exactly what a stale cache entry after an emitter change looks like.
  {
    gate::Simulator first(nl, gate::SimMode::kNative, 64);
    ASSERT_TRUE(first.native().native()) << first.native().compile_log();
  }
  const std::string src64 = gate::emit_netlist_cpp(nl, 64);
  const std::string src128 = gate::emit_netlist_cpp(nl, 128);
  const fs::path so64 = artifact_path(dir.path, src64, {}, "osss-gate");
  const fs::path so128 = artifact_path(dir.path, src128, {}, "osss-gate");
  ASSERT_TRUE(fs::exists(so64)) << "64-lane engine did not publish";
  fs::copy_file(so64, so128, fs::copy_options::overwrite_existing);

  const CacheStats before = cache_stats();
  gate::Simulator sim(nl, gate::SimMode::kNative, 128);
  ASSERT_TRUE(sim.native().native()) << sim.native().compile_log();
  EXPECT_EQ(sim.lanes(), 128u);
  const CacheStats after = cache_stats();
  EXPECT_EQ(after.compiles, before.compiles + 1)
      << "wrong-lanes artifact must be rejected and recompiled";
  sim.set_input("a", std::uint64_t{2});
  sim.step(3);
  EXPECT_EQ(sim.output("o").to_u64(), 6u);
}

/// CI warm-start contract: with OSSS_JIT_EXPECT_WARM set, this process
/// must have served every native engine from the shared cache directory —
/// zero compiler invocations.  Registered globally so it guards every
/// test in whatever filter the warm job runs.
class WarmCacheEnv : public ::testing::Environment {
 public:
  void TearDown() override {
    const char* w = std::getenv("OSSS_JIT_EXPECT_WARM");
    if (w == nullptr || *w == '\0' || *w == '0') return;
    EXPECT_EQ(cache_stats().compiles, 0u)
        << "OSSS_JIT_EXPECT_WARM is set but this process invoked the "
           "compiler (cold artifact, bad key, or cache dir not shared)";
  }
};

const ::testing::Environment* const warm_env =
    ::testing::AddGlobalTestEnvironment(new WarmCacheEnv);

}  // namespace
}  // namespace osss::jit
