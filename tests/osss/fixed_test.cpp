// Tests for automated fixed-point resolution (paper §6).

#include "osss/fixed.hpp"

#include <gtest/gtest.h>

namespace osss {
namespace {

TEST(Fixed, RoundTripDouble) {
  const auto f = Fixed<8, 8>::from_double(3.5);
  EXPECT_DOUBLE_EQ(f.to_double(), 3.5);
  EXPECT_EQ(f.raw(), 3 * 256 + 128);
  const auto n = Fixed<8, 8>::from_double(-1.25);
  EXPECT_DOUBLE_EQ(n.to_double(), -1.25);
}

TEST(Fixed, FromDoubleRounds) {
  const auto f = Fixed<8, 2>::from_double(1.13);  // nearest multiple of .25
  EXPECT_DOUBLE_EQ(f.to_double(), 1.25);
}

TEST(Fixed, OverflowDetected) {
  EXPECT_THROW((Fixed<4, 4>::from_double(8.0)), std::overflow_error);
  EXPECT_NO_THROW((Fixed<4, 4>::from_double(7.9)));
  EXPECT_NO_THROW((Fixed<4, 4>::from_double(-8.0)));
  EXPECT_THROW((Fixed<4, 4>::from_double(-8.1)), std::overflow_error);
}

TEST(Fixed, AdditionResolvesFormat) {
  const auto a = Fixed<4, 2>::from_double(1.75);
  const auto b = Fixed<3, 4>::from_double(0.0625);
  const auto sum = a + b;
  static_assert(decltype(sum)::kIntBits == 5);   // max(4,3)+1
  static_assert(decltype(sum)::kFracBits == 4);  // max(2,4)
  EXPECT_DOUBLE_EQ(sum.to_double(), 1.8125);
}

TEST(Fixed, SubtractionResolvesFormat) {
  const auto a = Fixed<4, 2>::from_double(1.0);
  const auto b = Fixed<4, 2>::from_double(2.5);
  const auto d = a - b;
  static_assert(decltype(d)::kIntBits == 5);
  EXPECT_DOUBLE_EQ(d.to_double(), -1.5);
}

TEST(Fixed, MultiplicationResolvesFormat) {
  const auto a = Fixed<4, 4>::from_double(1.5);
  const auto b = Fixed<4, 4>::from_double(2.25);
  const auto p = a * b;
  static_assert(decltype(p)::kIntBits == 8);
  static_assert(decltype(p)::kFracBits == 8);
  EXPECT_DOUBLE_EQ(p.to_double(), 3.375);  // exact — no precision lost
}

TEST(Fixed, ChainedArithmeticKeepsPrecision) {
  const auto gain = Fixed<2, 6>::from_double(0.515625);
  const auto signal = Fixed<9, 0>::from_int(200);
  const auto scaled = signal * gain;
  EXPECT_DOUBLE_EQ(scaled.to_double(), 200 * 0.515625);
}

TEST(Fixed, ResizeTruncatesTowardNegInfinity) {
  const auto a = Fixed<8, 8>::from_double(1.9921875);
  const auto r = a.resize<8, 2>();
  EXPECT_DOUBLE_EQ(r.to_double(), 1.75);
  const auto n = Fixed<8, 8>::from_double(-1.0625);
  EXPECT_DOUBLE_EQ((n.resize<8, 2>().to_double()), -1.25);  // floor
  EXPECT_THROW((Fixed<8, 0>::from_int(200).resize<4, 0>()),
               std::overflow_error);
}

TEST(Fixed, ComparisonAcrossFormats) {
  const auto a = Fixed<4, 2>::from_double(1.25);
  const auto b = Fixed<3, 6>::from_double(1.265625);
  EXPECT_TRUE(a.compare(b) == std::strong_ordering::less);
  EXPECT_TRUE(b.compare(a) == std::strong_ordering::greater);
  const auto c = Fixed<3, 6>::from_double(1.25);
  EXPECT_TRUE(a.compare(c) == std::strong_ordering::equal);
}

TEST(Fixed, BitsRoundTrip) {
  const auto a = Fixed<6, 2>::from_double(-3.75);
  const sysc::Bits b = a.to_bits();
  EXPECT_EQ(b.width(), 8u);
  EXPECT_TRUE((Fixed<6, 2>::from_bits(b)) == a);
  EXPECT_THROW((Fixed<6, 3>::from_bits(b)), std::invalid_argument);
}

TEST(Fixed, IntegerConversions) {
  EXPECT_EQ((Fixed<8, 4>::from_int(-3).to_int()), -3);
  EXPECT_EQ((Fixed<8, 4>::from_double(2.75).to_int()), 2);
  EXPECT_EQ((Fixed<8, 4>::from_double(-2.25).to_int()), -3);  // floor
}

}  // namespace
}  // namespace osss
