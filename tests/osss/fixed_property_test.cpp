// Property-based test suite for osss::Fixed<I, F>: constrained-random
// operands (corner-biased via verify::StimGen) checked against a double
// reference.  Formats are kept narrow enough that every exact result fits
// a double mantissa, so the reference comparison is exact, not
// approximate.  Every assertion carries the seed — one log line
// reproduces a failure.

#include "osss/fixed.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "verify/stimgen.hpp"

namespace osss {
namespace {

/// Draw a corner-biased raw value for Fixed<I, F> from a StimGen stream.
template <unsigned I, unsigned F>
Fixed<I, F> draw(verify::StimGen& gen, const std::string& input) {
  const verify::Bits b = gen.next(input);
  // Sign-extend the two's-complement pattern.
  std::int64_t raw = static_cast<std::int64_t>(b.to_u64());
  const unsigned w = I + F;
  if (raw & (1ll << (w - 1))) raw -= 1ll << w;
  return Fixed<I, F>::from_raw(raw);
}

verify::StimGen make_gen(const char* tag, unsigned width_a,
                         unsigned width_b) {
  verify::StimGen gen(
      verify::StimGen::derive(verify::env_seed(4242), tag));
  verify::StimConstraint c;
  c.kind = verify::StimKind::kCorner;
  c.corner_prob = 0.4;
  gen.declare("a", width_a, c);
  gen.declare("b", width_b, c);
  return gen;
}

TEST(FixedProperty, AdditionMatchesDoubleReference) {
  // Fixed<6,4> + Fixed<4,6> -> Fixed<7,6>; all values exact in a double.
  verify::StimGen gen = make_gen("fixed/add", 10, 10);
  for (int i = 0; i < 2000; ++i) {
    const auto a = draw<6, 4>(gen, "a");
    const auto b = draw<4, 6>(gen, "b");
    const auto sum = a + b;
    static_assert(decltype(sum)::kIntBits == 7);
    static_assert(decltype(sum)::kFracBits == 6);
    EXPECT_EQ(sum.to_double(), a.to_double() + b.to_double())
        << "a=" << a.to_double() << " b=" << b.to_double() << " seed "
        << gen.seed();
  }
}

TEST(FixedProperty, SubtractionMatchesDoubleReference) {
  verify::StimGen gen = make_gen("fixed/sub", 12, 9);
  for (int i = 0; i < 2000; ++i) {
    const auto a = draw<7, 5>(gen, "a");
    const auto b = draw<5, 4>(gen, "b");
    const auto diff = a - b;
    static_assert(decltype(diff)::kIntBits == 8);
    static_assert(decltype(diff)::kFracBits == 5);
    EXPECT_EQ(diff.to_double(), a.to_double() - b.to_double())
        << "seed " << gen.seed();
  }
}

TEST(FixedProperty, MultiplicationIsExactInResolvedFormat) {
  // Fixed<6,5> * Fixed<5,6> -> Fixed<11,11>: 22 bits, exact in a double.
  verify::StimGen gen = make_gen("fixed/mul", 11, 11);
  for (int i = 0; i < 2000; ++i) {
    const auto a = draw<6, 5>(gen, "a");
    const auto b = draw<5, 6>(gen, "b");
    const auto prod = a * b;
    static_assert(decltype(prod)::kIntBits == 11);
    static_assert(decltype(prod)::kFracBits == 11);
    EXPECT_EQ(prod.to_double(), a.to_double() * b.to_double())
        << "seed " << gen.seed();
  }
}

TEST(FixedProperty, ResizeTruncatesTowardNegativeInfinity) {
  verify::StimGen gen = make_gen("fixed/resize", 14, 1);
  for (int i = 0; i < 2000; ++i) {
    const auto a = draw<6, 8>(gen, "a");
    (void)gen.next("b");
    // Widening the format must be lossless both ways.
    const auto wide = a.resize<8, 10>();
    EXPECT_EQ(wide.to_double(), a.to_double()) << "seed " << gen.seed();
    // Dropping fraction bits floors, like an arithmetic right shift.
    const auto narrow = a.resize<6, 3>();
    EXPECT_EQ(narrow.to_double(),
              std::floor(a.to_double() * 8.0) / 8.0)
        << "a=" << a.to_double() << " seed " << gen.seed();
  }
}

TEST(FixedProperty, ResizeOverflowAlwaysThrows) {
  verify::StimGen gen = make_gen("fixed/overflow", 12, 1);
  unsigned threw = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto a = draw<8, 4>(gen, "a");
    (void)gen.next("b");
    const double v = a.to_double();
    const bool fits = v >= -4.0 && v < 4.0;
    try {
      const auto r = a.resize<3, 4>();
      EXPECT_TRUE(fits) << "resize accepted out-of-range " << v << " seed "
                        << gen.seed();
      EXPECT_EQ(r.to_double(), v) << "seed " << gen.seed();
    } catch (const std::overflow_error&) {
      EXPECT_FALSE(fits) << "resize rejected in-range " << v << " seed "
                         << gen.seed();
      ++threw;
    }
  }
  // Corner bias guarantees extreme operands, so overflow must occur.
  EXPECT_GT(threw, 0u) << "seed " << gen.seed();
}

TEST(FixedProperty, BitsRoundTripPreservesValue) {
  verify::StimGen gen = make_gen("fixed/bits", 13, 1);
  for (int i = 0; i < 1000; ++i) {
    const auto a = draw<6, 7>(gen, "a");
    (void)gen.next("b");
    const auto back = Fixed<6, 7>::from_bits(a.to_bits());
    EXPECT_EQ(back.raw(), a.raw()) << "seed " << gen.seed();
  }
}

TEST(FixedProperty, ComparisonAgreesWithDoubleReference) {
  verify::StimGen gen = make_gen("fixed/cmp", 10, 12);
  for (int i = 0; i < 2000; ++i) {
    const auto a = draw<6, 4>(gen, "a");
    const auto b = draw<5, 7>(gen, "b");
    const auto ord = a.compare(b);
    const double da = a.to_double(), db = b.to_double();
    EXPECT_EQ(ord < 0, da < db) << "seed " << gen.seed();
    EXPECT_EQ(ord == 0, da == db) << "seed " << gen.seed();
    EXPECT_EQ(ord > 0, da > db) << "seed " << gen.seed();
  }
}

}  // namespace
}  // namespace osss
