// Tests for the Polymorphic<Base, ...> runtime container — the paper's ALU
// example: "simply select between different ALU instantiations (e.g. +, *,
// -) but keeping the same access methods" (§6).

#include "osss/polymorphic.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace osss {
namespace {

struct AluOp {
  virtual ~AluOp() = default;
  virtual std::uint16_t execute(std::uint16_t a, std::uint16_t b) const = 0;
  virtual const char* mnemonic() const = 0;
  bool operator==(const AluOp&) const = default;
};

struct AluAdd final : AluOp {
  std::uint16_t execute(std::uint16_t a, std::uint16_t b) const override {
    return static_cast<std::uint16_t>(a + b);
  }
  const char* mnemonic() const override { return "add"; }
  bool operator==(const AluAdd&) const = default;
};

struct AluSub final : AluOp {
  std::uint16_t execute(std::uint16_t a, std::uint16_t b) const override {
    return static_cast<std::uint16_t>(a - b);
  }
  const char* mnemonic() const override { return "sub"; }
  bool operator==(const AluSub&) const = default;
};

struct AluMul final : AluOp {
  std::uint16_t execute(std::uint16_t a, std::uint16_t b) const override {
    return static_cast<std::uint16_t>(a * b);
  }
  const char* mnemonic() const override { return "mul"; }
  bool operator==(const AluMul&) const = default;
};

using Alu = Polymorphic<AluOp, AluAdd, AluSub, AluMul>;

TEST(Polymorphic, DefaultHoldsFirstAlternative) {
  Alu alu;
  EXPECT_EQ(alu.tag(), 0u);
  EXPECT_TRUE(alu.holds<AluAdd>());
  EXPECT_STREQ(alu->mnemonic(), "add");
}

TEST(Polymorphic, DispatchThroughCommonInterface) {
  Alu alu;
  EXPECT_EQ(alu->execute(7, 3), 10u);
  alu.emplace<AluSub>();
  EXPECT_EQ(alu->execute(7, 3), 4u);
  EXPECT_EQ(alu.tag(), 1u);
  alu.emplace<AluMul>();
  EXPECT_EQ(alu->execute(7, 3), 21u);
  EXPECT_EQ(alu.tag(), 2u);
}

TEST(Polymorphic, ConstructionFromAlternative) {
  Alu alu{AluMul{}};
  EXPECT_TRUE(alu.holds<AluMul>());
  EXPECT_EQ((*alu).execute(4, 4), 16u);
}

TEST(Polymorphic, AsChecksActiveAlternative) {
  Alu alu{AluSub{}};
  EXPECT_NO_THROW(alu.as<AluSub>());
  EXPECT_THROW(alu.as<AluAdd>(), std::bad_variant_access);
}

TEST(Polymorphic, TagWidthFollowsAlternativeCount) {
  EXPECT_EQ(Alu::alternative_count(), 3u);
}

TEST(Polymorphic, EqualityComparesTagAndPayload) {
  Alu a{AluAdd{}};
  Alu b{AluAdd{}};
  Alu c{AluSub{}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

// A stateful hierarchy: alternatives carrying data members.
struct Shape {
  virtual ~Shape() = default;
  virtual unsigned area() const = 0;
};
struct Square final : Shape {
  unsigned side = 0;
  unsigned area() const override { return side * side; }
  bool operator==(const Square&) const = default;
};
struct Rect final : Shape {
  unsigned w = 0;
  unsigned h = 0;
  unsigned area() const override { return w * h; }
  bool operator==(const Rect&) const = default;
};

TEST(Polymorphic, StatefulAlternatives) {
  Polymorphic<Shape, Square, Rect> s;
  s.emplace<Square>().side = 5;
  EXPECT_EQ(s->area(), 25u);
  auto& r = s.emplace<Rect>();
  r.w = 3;
  r.h = 4;
  EXPECT_EQ(s->area(), 12u);
  EXPECT_EQ(s.as<Rect>().w, 3u);
}

}  // namespace
}  // namespace osss
