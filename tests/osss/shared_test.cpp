// Tests for the Shared<T> global-object runtime: arbitration order, grant
// accounting, blocking-access semantics and custom schedulers.

#include "osss/shared.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace osss {
namespace {

using sysc::Behavior;
using sysc::Clock;
using sysc::Context;

struct Counter {
  unsigned value = 0;
  void add(unsigned d) { value += d; }
};

constexpr sysc::Time kPeriod = 1000;

TEST(SharedRuntime, RoundRobinGrantsRotate) {
  Context ctx;
  Clock clk(ctx, "clk", kPeriod);
  Shared<Counter> shared(ctx, "ctr", clk.signal(), 3, Counter{},
                         std::make_unique<RoundRobinScheduler>());
  std::vector<std::size_t> grant_order;
  for (std::size_t id = 0; id < 3; ++id) {
    ctx.create_cthread(
        "client" + std::to_string(id), clk.signal(),
        [&shared, &grant_order, id]() -> Behavior {
          for (int k = 0; k < 3; ++k) {
            auto ticket = shared.request(id, [&grant_order, id](Counter& c) {
              c.add(1);
              grant_order.push_back(id);
            });
            while (!ticket->done()) co_await sysc::wait();
          }
        });
  }
  ctx.run_for(40 * kPeriod);
  EXPECT_EQ(shared.peek().value, 9u);
  ASSERT_GE(grant_order.size(), 3u);
  EXPECT_EQ(grant_order[0], 0u);  // rotation starts at client 0
  EXPECT_EQ(grant_order[1], 1u);
  EXPECT_EQ(grant_order[2], 2u);
  for (std::size_t id = 0; id < 3; ++id)
    EXPECT_EQ(shared.grant_count(id), 3u) << "client " << id;
}

TEST(SharedRuntime, OneGrantPerCycle) {
  Context ctx;
  Clock clk(ctx, "clk", kPeriod);
  Shared<Counter> shared(ctx, "ctr", clk.signal(), 2, Counter{},
                         std::make_unique<RoundRobinScheduler>());
  // Both clients enqueue 4 requests up front.
  for (std::size_t id = 0; id < 2; ++id)
    for (int k = 0; k < 4; ++k)
      shared.request(id, [](Counter& c) { c.add(1); });
  ctx.run_for(5 * kPeriod);  // only ~5 edges: at most 5 grants
  EXPECT_LE(shared.peek().value, 6u);
  ctx.run_for(10 * kPeriod);
  EXPECT_EQ(shared.peek().value, 8u);  // all served eventually
}

TEST(SharedRuntime, StaticPriorityFavoursLowIndex) {
  Context ctx;
  Clock clk(ctx, "clk", kPeriod);
  Shared<Counter> shared(ctx, "ctr", clk.signal(), 2, Counter{},
                         std::make_unique<StaticPriorityScheduler>());
  std::vector<std::size_t> grant_order;
  for (std::size_t id = 0; id < 2; ++id)
    for (int k = 0; k < 3; ++k)
      shared.request(id, [&grant_order, id](Counter& c) {
        c.add(1);
        grant_order.push_back(id);
      });
  ctx.run_for(20 * kPeriod);
  ASSERT_EQ(grant_order.size(), 6u);
  // All of client 0's requests are served before any of client 1's.
  EXPECT_EQ(grant_order[0], 0u);
  EXPECT_EQ(grant_order[2], 0u);
  EXPECT_EQ(grant_order[3], 1u);
}

TEST(SharedRuntime, CustomSchedulerHonoured) {
  // "A designer can ... implement an own according to the required needs."
  class OnlyClientOne final : public SchedulerPolicy {
  public:
    std::size_t pick(const std::vector<bool>& pending,
                     std::size_t /*last*/) const override {
      if (pending[1]) return 1;
      for (std::size_t c = 0; c < pending.size(); ++c)
        if (pending[c]) return c;
      return 0;
    }
    std::string name() const override { return "only_one"; }
  };
  Context ctx;
  Clock clk(ctx, "clk", kPeriod);
  Shared<Counter> shared(ctx, "ctr", clk.signal(), 2, Counter{},
                         std::make_unique<OnlyClientOne>());
  std::vector<std::size_t> order;
  for (int k = 0; k < 2; ++k) {
    shared.request(0, [&order](Counter&) { order.push_back(0); });
    shared.request(1, [&order](Counter&) { order.push_back(1); });
  }
  ctx.run_for(10 * kPeriod);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 0u);
}

TEST(SharedRuntime, BlockingAccessLetsOthersRun) {
  // While client 0 spins on its ticket, an independent thread keeps
  // executing — the paper's requirement that "other modules still must
  // continue their execution".
  Context ctx;
  Clock clk(ctx, "clk", kPeriod);
  Shared<Counter> shared(ctx, "ctr", clk.signal(), 1, Counter{},
                         std::make_unique<RoundRobinScheduler>());
  int independent_ticks = 0;
  ctx.create_cthread("free_runner", clk.signal(), [&]() -> Behavior {
    for (;;) {
      ++independent_ticks;
      co_await sysc::wait();
    }
  });
  bool done = false;
  ctx.create_cthread("client", clk.signal(), [&]() -> Behavior {
    auto t = shared.request(0, [](Counter& c) { c.add(5); });
    while (!t->done()) co_await sysc::wait();
    done = true;
  });
  ctx.run_for(10 * kPeriod);
  EXPECT_TRUE(done);
  EXPECT_GT(independent_ticks, 5);
  EXPECT_EQ(shared.peek().value, 5u);
}

TEST(SharedRuntime, ArgumentValidation) {
  Context ctx;
  Clock clk(ctx, "clk", kPeriod);
  EXPECT_THROW(Shared<Counter>(ctx, "z", clk.signal(), 0, Counter{},
                               std::make_unique<RoundRobinScheduler>()),
               std::invalid_argument);
  Shared<Counter> ok(ctx, "ok", clk.signal(), 2, Counter{},
                     std::make_unique<RoundRobinScheduler>());
  EXPECT_THROW(ok.request(5, [](Counter&) {}), std::out_of_range);
  EXPECT_THROW(ok.grant_count(9), std::out_of_range);
  EXPECT_EQ(ok.client_count(), 2u);
  EXPECT_EQ(ok.policy().name(), "round_robin");
}

}  // namespace
}  // namespace osss
