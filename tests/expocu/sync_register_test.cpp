// SyncRegister: the executable C++ template vs the analyzer's ClassDesc —
// the two views of the paper's running example must agree bit-for-bit.

#include "expocu/sync_register.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace osss::expocu {
namespace {

TEST(SyncRegister, ResetLoadsTemplateParameter) {
  SyncRegister<4, 0x5> r;
  EXPECT_EQ(r.to_bits().to_u64(), 0x5u);
  r.Write(true);
  EXPECT_NE(r.to_bits().to_u64(), 0x5u);
  r.Reset();
  EXPECT_EQ(r.to_bits().to_u64(), 0x5u);
}

TEST(SyncRegister, ShiftAndEdges) {
  SyncRegister<4, 0> r;
  r.Write(true);
  EXPECT_TRUE(r.RisingEdge());
  EXPECT_FALSE(r.FallingEdge());
  r.Write(true);
  EXPECT_FALSE(r.RisingEdge());
  EXPECT_TRUE(r.StableHigh());
  r.Write(false);
  EXPECT_TRUE(r.FallingEdge());
  r.Write(false);
  EXPECT_TRUE(r.StableLow());
}

TEST(SyncRegister, EqualityAndStreaming) {
  SyncRegister<4, 0> a;
  SyncRegister<4, 0> b;
  EXPECT_TRUE(a == b);
  a.Write(true);
  EXPECT_FALSE(a == b);
  std::ostringstream os;
  os << a;
  EXPECT_EQ(os.str(), "0b0001");
}

TEST(SyncRegister, MetaViewMatchesCppView) {
  // Random Write/Reset sequence: the C++ object and the interpreted
  // ClassDesc must hold identical state and report identical edges.
  const auto cls = sync_register_template().instantiate({4, 0});
  SyncRegister<4, 0> cpp;
  meta::Bits state = cls->initial_value();
  std::mt19937_64 rng(11);
  for (int i = 0; i < 500; ++i) {
    const unsigned action = static_cast<unsigned>(rng() % 8);
    if (action == 0) {
      cpp.Reset();
      state = cls->call("Reset", state, {}).state;
    } else {
      const bool bit = (rng() & 1) != 0;
      cpp.Write(bit);
      state = cls->call("Write", state, {meta::Bits(1, bit ? 1u : 0u)}).state;
    }
    EXPECT_TRUE(cpp.to_bits() == state) << "step " << i;
    EXPECT_EQ(cpp.RisingEdge(),
              cls->call("RisingEdge", state, {}).ret->to_u64() == 1u);
    EXPECT_EQ(cpp.StableHigh(),
              cls->call("StableHigh", state, {}).ret->to_u64() == 1u);
  }
}

TEST(SyncRegister, TemplateInstantiationsIndependent) {
  const auto a = sync_register_template().instantiate({2, 0});
  const auto b = sync_register_template().instantiate({8, 0xff});
  EXPECT_EQ(a->data_width(), 2u);
  EXPECT_EQ(b->data_width(), 8u);
  EXPECT_EQ(b->initial_value().to_u64(), 0xffu);
  EXPECT_EQ(sync_register_template().instantiate({2, 0}), a);  // cached
}

}  // namespace
}  // namespace osss::expocu
