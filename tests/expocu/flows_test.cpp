// Flow-level tests: both flows synthesize to gates, produce the component
// inventory of the paper's Fig. 12, and land in the expected area/fmax
// relationship (precise numbers are the experiments' job).

#include <gtest/gtest.h>

#include "expocu/flows.hpp"

namespace osss::expocu {
namespace {

const char* kExpectedComponents[] = {"camera_sync", "histogram",
                                     "threshold_calc", "param_calc",
                                     "i2c_master", "reset_ctrl"};

TEST(Flows, OsssFlowBuildsAllComponents) {
  const auto flow = build_osss_flow();
  ASSERT_EQ(flow.size(), 6u);
  for (const auto& c : flow) EXPECT_NO_THROW(c.module.validate());
  // Behavioral components carry an HLS report.
  for (const auto& c : flow) {
    if (c.behavioral) {
      EXPECT_GT(c.hls_report.states, 0u) << c.name;
    }
  }
}

TEST(Flows, VhdlFlowBuildsAllComponents) {
  const auto flow = build_vhdl_flow();
  ASSERT_EQ(flow.size(), 6u);
  for (const auto& c : flow) {
    EXPECT_NO_THROW(c.module.validate());
    EXPECT_FALSE(c.behavioral);
  }
}

TEST(Flows, SynthesisReportCoversEveryComponent) {
  const auto lib = gate::Library::generic();
  const FlowReport osss = synthesize_flow(build_osss_flow(), lib);
  const FlowReport vhdl = synthesize_flow(build_vhdl_flow(), lib);
  ASSERT_EQ(osss.components.size(), 6u);
  ASSERT_EQ(vhdl.components.size(), 6u);
  for (const char* name : kExpectedComponents) {
    EXPECT_NE(osss.find(name), nullptr) << name;
    EXPECT_NE(vhdl.find(name), nullptr) << name;
    EXPECT_GT(osss.find(name)->timing.area_ge, 0.0) << name;
  }
  EXPECT_GT(osss.total_area_ge, 0.0);
  EXPECT_GT(vhdl.total_area_ge, 0.0);
}

TEST(Flows, PaperShapeAreaAlmostEquivalentFrequencyLower) {
  // §12: "the required area ... almost equivalent"; "the frequency of the
  // achieved in OSSS design is below the frequency in the VHDL flow".
  const auto lib = gate::Library::generic();
  const FlowReport osss = synthesize_flow(build_osss_flow(), lib);
  const FlowReport vhdl = synthesize_flow(build_vhdl_flow(), lib);
  const double ratio = osss.total_area_ge / vhdl.total_area_ge;
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.35);
  EXPECT_LE(osss.min_fmax_mhz, vhdl.min_fmax_mhz);
}

TEST(Flows, VhdlFlowMeetsSixtySixMhz) {
  const auto lib = gate::Library::generic();
  const FlowReport vhdl = synthesize_flow(build_vhdl_flow(), lib);
  for (const auto& c : vhdl.components) {
    EXPECT_TRUE(c.timing.meets(kClockMhz))
        << c.name << " fmax " << c.timing.fmax_mhz;
  }
}

TEST(Flows, SharedHistogramIdenticalAcrossFlows) {
  const auto lib = gate::Library::generic();
  const FlowReport osss = synthesize_flow(build_osss_flow(), lib);
  const FlowReport vhdl = synthesize_flow(build_vhdl_flow(), lib);
  EXPECT_DOUBLE_EQ(osss.find("histogram")->timing.area_ge,
                   vhdl.find("histogram")->timing.area_ge);
}

}  // namespace
}  // namespace osss::expocu
