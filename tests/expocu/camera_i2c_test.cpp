// Camera model framing/transfer and the bit-level I2C master/slave pair.

#include <gtest/gtest.h>

#include "expocu/camera_model.hpp"
#include "expocu/hw.hpp"
#include "expocu/i2c_bus.hpp"

namespace osss::expocu {
namespace {

using sysc::Clock;
using sysc::Context;

TEST(CameraModel, FrameFraming) {
  Context ctx;
  Clock clk(ctx, "clk", kClockPeriodPs);
  CameraRegisters regs;
  CameraModel cam(ctx, "cam", clk.signal(), regs);
  unsigned vsyncs = 0;
  unsigned valid_pixels = 0;
  ctx.create_method(
      "watch",
      [&] {
        if (cam.pixel_valid.read() && cam.vsync.read()) ++vsyncs;
      },
      {&cam.vsync});
  ctx.create_cthread("count", clk.signal(), [&]() -> sysc::Behavior {
    for (;;) {
      if (cam.pixel_valid.read()) ++valid_pixels;
      co_await sysc::wait();
    }
  });
  const unsigned frames = 3;
  ctx.run_for((kPixelsPerFrame + 8) * frames * kClockPeriodPs);
  EXPECT_GE(cam.frame_count(), frames - 1);
  EXPECT_GE(vsyncs, frames - 1);
  EXPECT_GE(valid_pixels, (frames - 1) * kPixelsPerFrame);
}

TEST(CameraModel, TransferMonotonicInExposure) {
  CameraRegisters lo;
  lo.exposure = 0x0400;
  CameraRegisters hi;
  hi.exposure = 0x2000;
  double sum_lo = 0;
  double sum_hi = 0;
  for (unsigned y = 0; y < kFrameHeight; ++y) {
    for (unsigned x = 0; x < kFrameWidth; ++x) {
      sum_lo += CameraModel::sensor_value(x, y, 0, lo);
      sum_hi += CameraModel::sensor_value(x, y, 0, hi);
    }
  }
  EXPECT_GT(sum_hi, sum_lo);
}

TEST(CameraModel, GainScalesOutput) {
  CameraRegisters g1;
  g1.gain = 64;
  CameraRegisters g2;
  g2.gain = 128;
  const auto v1 = CameraModel::sensor_value(10, 10, 0, g1);
  const auto v2 = CameraModel::sensor_value(10, 10, 0, g2);
  EXPECT_NEAR(v2, std::min(255, 2 * v1), 1.0);
}

class I2cFixture : public ::testing::Test {
protected:
  Context ctx;
  Clock clk{ctx, "clk", kClockPeriodPs};
  I2cBus bus{ctx};
  CameraRegisters regs;
  I2cSlaveModel slave{ctx, "slave", bus, regs};
  I2cMasterSim master{ctx, "master", clk.signal(), bus, kI2cPhase};

  void run_transaction() {
    // Generous budget: 5 bytes x 9 clocks x 4 phases x 4 sysclk + framing.
    ctx.run_for(1200 * kClockPeriodPs);
  }
};

TEST_F(I2cFixture, RegisterWriteLands) {
  master.start(kI2cAddress, kRegExposureHi, {0xAB, 0xCD, 0x55});
  run_transaction();
  EXPECT_FALSE(master.busy());
  EXPECT_TRUE(master.last_acked());
  EXPECT_EQ(regs.exposure, 0xABCD);
  EXPECT_EQ(regs.gain, 0x55);
  EXPECT_EQ(slave.transaction_count(), 1u);
  EXPECT_EQ(slave.byte_count(), 3u);
  EXPECT_EQ(slave.nack_count(), 0u);
}

TEST_F(I2cFixture, WrongAddressNacked) {
  master.start(0x22, kRegExposureHi, {0x12});
  run_transaction();
  EXPECT_FALSE(master.last_acked());
  EXPECT_EQ(regs.exposure, 0x0800);  // untouched
  EXPECT_EQ(slave.nack_count(), 1u);
  EXPECT_EQ(slave.byte_count(), 0u);
}

TEST_F(I2cFixture, SingleRegisterWrite) {
  master.start(kI2cAddress, kRegGain, {200});
  run_transaction();
  EXPECT_TRUE(master.last_acked());
  EXPECT_EQ(regs.gain, 200);
  EXPECT_EQ(regs.exposure, 0x0800);
}

TEST_F(I2cFixture, BackToBackTransactions) {
  master.start(kI2cAddress, kRegGain, {100});
  run_transaction();
  EXPECT_EQ(regs.gain, 100);
  master.start(kI2cAddress, kRegGain, {150});
  run_transaction();
  EXPECT_EQ(regs.gain, 150);
  EXPECT_EQ(slave.transaction_count(), 2u);
  EXPECT_EQ(master.transaction_count(), 2u);
}

TEST_F(I2cFixture, StartIgnoredWhileBusy) {
  master.start(kI2cAddress, kRegGain, {100});
  ctx.run_for(20 * kClockPeriodPs);  // transaction under way
  EXPECT_TRUE(master.busy());
  master.start(kI2cAddress, kRegGain, {222});  // must be dropped
  run_transaction();
  EXPECT_EQ(regs.gain, 100);
  EXPECT_EQ(master.transaction_count(), 1u);
}

TEST_F(I2cFixture, UnknownRegisterIgnored) {
  master.start(kI2cAddress, 0x7f, {0x99});
  run_transaction();
  EXPECT_TRUE(master.last_acked());  // still acked, like real devices
  EXPECT_EQ(regs.exposure, 0x0800);
  EXPECT_EQ(regs.gain, 64);
}

}  // namespace
}  // namespace osss::expocu
