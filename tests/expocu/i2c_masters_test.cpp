// The three I2C master implementations: OSSS vs manually-resolved SystemC
// (exact cycle equivalence) and the hand-RTL FSM (protocol equivalence),
// decoded by a software I2C monitor.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "expocu/hw.hpp"
#include "hls/synth.hpp"
#include "rtl/sim.hpp"

namespace osss::expocu {
namespace {

/// Software I2C monitor: feed one (scl, sda) sample per clock; collects
/// complete transactions (sequence of bytes after START).  Always acks by
/// reporting the level the master would see (the testbench drives sda_in
/// separately).
class I2cMonitor {
public:
  void sample(bool scl, bool sda) {
    if (scl && last_scl_) {
      if (last_sda_ && !sda) {  // START
        in_frame_ = true;
        bits_ = 0;
        shift_ = 0;
        current_.clear();
      } else if (!last_sda_ && sda && in_frame_) {  // STOP
        transactions_.push_back(current_);
        in_frame_ = false;
      }
    } else if (scl && !last_scl_ && in_frame_) {
      if (bits_ < 8) {
        shift_ = static_cast<std::uint8_t>((shift_ << 1) | (sda ? 1 : 0));
        if (++bits_ == 8) current_.push_back(shift_);
      } else {
        bits_ = 0;  // ack clock
        shift_ = 0;
      }
    }
    last_scl_ = scl;
    last_sda_ = sda;
  }

  const std::vector<std::vector<std::uint8_t>>& transactions() const {
    return transactions_;
  }

private:
  bool last_scl_ = true;
  bool last_sda_ = true;
  bool in_frame_ = false;
  unsigned bits_ = 0;
  std::uint8_t shift_ = 0;
  std::vector<std::uint8_t> current_;
  std::vector<std::vector<std::uint8_t>> transactions_;
};

/// Run a master for one transaction; returns the decoded transaction.
std::vector<std::uint8_t> run_master(rtl::Simulator& sim,
                                     std::uint16_t exposure,
                                     std::uint8_t gain, bool ack) {
  I2cMonitor monitor;
  sim.set_input("exposure", exposure);
  sim.set_input("gain", gain);
  sim.set_input("sda_in", ack ? 0 : 1);
  sim.set_input("start", 1);
  bool started = false;
  for (int cycle = 0; cycle < 4000; ++cycle) {
    sim.step();
    if (started) sim.set_input("start", 0);
    started = true;
    monitor.sample(sim.output("scl").to_u64() == 1u,
                   sim.output("sda").to_u64() == 1u);
    if (!monitor.transactions().empty()) break;
  }
  sim.step(8 * kI2cPhase);  // let ack_ok/busy settle past the STOP
  EXPECT_EQ(monitor.transactions().size(), 1u);
  return monitor.transactions().empty() ? std::vector<std::uint8_t>{}
                                        : monitor.transactions()[0];
}

const std::vector<std::uint8_t> kExpectedFrame = {
    kI2cAddress << 1, kRegExposureHi, 0xAB, 0xCD, 0x37};

TEST(I2cMasters, OsssProducesCorrectFrame) {
  rtl::Simulator sim(hls::synthesize(build_i2c_master_osss()));
  EXPECT_EQ(run_master(sim, 0xABCD, 0x37, true), kExpectedFrame);
  EXPECT_EQ(sim.output("ack_ok").to_u64(), 1u);
  EXPECT_EQ(sim.output("busy").to_u64(), 0u);
}

TEST(I2cMasters, SystemCProducesCorrectFrame) {
  rtl::Simulator sim(hls::synthesize(build_i2c_master_systemc()));
  EXPECT_EQ(run_master(sim, 0xABCD, 0x37, true), kExpectedFrame);
  EXPECT_EQ(sim.output("ack_ok").to_u64(), 1u);
}

TEST(I2cMasters, VhdlProducesCorrectFrame) {
  rtl::Simulator sim(build_i2c_master_vhdl());
  EXPECT_EQ(run_master(sim, 0xABCD, 0x37, true), kExpectedFrame);
  EXPECT_EQ(sim.output("ack_ok").to_u64(), 1u);
  EXPECT_EQ(sim.output("busy").to_u64(), 0u);
}

TEST(I2cMasters, NackReported) {
  for (int variant = 0; variant < 3; ++variant) {
    rtl::Simulator sim(variant == 0
                           ? hls::synthesize(build_i2c_master_osss())
                           : variant == 1
                                 ? hls::synthesize(build_i2c_master_systemc())
                                 : build_i2c_master_vhdl());
    (void)run_master(sim, 0x1234, 0x40, /*ack=*/false);
    EXPECT_EQ(sim.output("ack_ok").to_u64(), 0u) << "variant " << variant;
  }
}

TEST(I2cMasters, OsssAndSystemCCycleIdentical) {
  // The manually resolved version must be indistinguishable on the bus,
  // cycle for cycle — it is the same design, resolved by hand.
  rtl::Simulator a(hls::synthesize(build_i2c_master_osss()));
  rtl::Simulator b(hls::synthesize(build_i2c_master_systemc()));
  for (auto* s : {&a, &b}) {
    s->set_input("exposure", 0xC0DE);
    s->set_input("gain", 0x5A);
    s->set_input("sda_in", 0);
    s->set_input("start", 1);
  }
  for (int cycle = 0; cycle < 2500; ++cycle) {
    a.step();
    b.step();
    a.set_input("start", 0);
    b.set_input("start", 0);
    for (const char* out : {"scl", "sda", "busy", "ack_ok"}) {
      ASSERT_TRUE(a.output(out) == b.output(out))
          << out << " differs at cycle " << cycle;
    }
  }
}

TEST(I2cMasters, BusyDuringTransaction) {
  rtl::Simulator sim(hls::synthesize(build_i2c_master_osss()));
  sim.set_input("exposure", 0);
  sim.set_input("gain", 0);
  sim.set_input("sda_in", 0);
  sim.set_input("start", 1);
  sim.step(3);
  sim.set_input("start", 0);
  EXPECT_EQ(sim.output("busy").to_u64(), 1u);
}

}  // namespace
}  // namespace osss::expocu
