// Hardware component tests: each ExpoCU component against its reference
// (the AE-law spec, the histogram semantics) and OSSS-vs-VHDL flow
// equivalence where the schedules line up.

#include <gtest/gtest.h>

#include <array>
#include <random>

#include "expocu/ae_law.hpp"
#include "expocu/flows.hpp"
#include "expocu/hw.hpp"
#include "gate/lower.hpp"
#include "gate/sim.hpp"
#include "hls/interp.hpp"
#include "hls/synth.hpp"
#include "rtl/sim.hpp"

namespace osss::expocu {
namespace {

using meta::Bits;

// --- camera_sync -----------------------------------------------------------

TEST(CameraSyncHw, OsssAndVhdlCycleEquivalent) {
  const rtl::Module osss_m = hls::synthesize(build_camera_sync_osss());
  const rtl::Module vhdl_m = build_camera_sync_vhdl();
  rtl::Simulator a(osss_m);
  rtl::Simulator b(vhdl_m);
  std::mt19937_64 rng(41);
  for (int cycle = 0; cycle < 500; ++cycle) {
    const std::uint64_t data = rng() & 0xff;
    const std::uint64_t h = rng() & 1;
    const std::uint64_t v = rng() & 1;
    const std::uint64_t val = rng() & 1;
    for (rtl::Simulator* s : {&a, &b}) {
      s->set_input("data", data);
      s->set_input("hsync", h);
      s->set_input("vsync", v);
      s->set_input("valid", val);
    }
    for (const char* out : {"pixel", "sol", "sof", "pvalid"}) {
      EXPECT_TRUE(a.output(out) == b.output(out))
          << out << " at cycle " << cycle;
    }
    a.step();
    b.step();
  }
}

// --- histogram ---------------------------------------------------------------

TEST(HistogramHw, CountsAndStreamsBins) {
  rtl::Simulator sim(build_histogram_rtl());
  // Frame 1: 8 pixels in bin 3, 4 pixels in bin 15.
  auto send_pixel = [&](unsigned value, bool vs) {
    sim.set_input("pixel", value);
    sim.set_input("pixel_valid", 1);
    sim.set_input("vsync", vs ? 1 : 0);
    sim.step();
  };
  send_pixel(3 << 4, true);
  for (int i = 0; i < 7; ++i) send_pixel((3 << 4) | 5, false);
  for (int i = 0; i < 4; ++i) send_pixel(0xf0 | i, false);
  // Start frame 2: streams frame 1's bins.
  std::array<std::uint64_t, kHistBins> streamed{};
  sim.set_input("pixel", 0);
  sim.set_input("vsync", 1);
  sim.set_input("pixel_valid", 1);
  bool seen_done = false;
  for (int cycle = 0; cycle < 20; ++cycle) {
    sim.step();
    sim.set_input("vsync", 0);
    sim.set_input("pixel_valid", 0);
    if (sim.output("bin_valid").to_u64() == 1u) {
      streamed[sim.output("bin_index").to_u64()] =
          sim.output("bin_count").to_u64();
      if (sim.output("frame_done").to_u64() == 1u) seen_done = true;
    }
  }
  EXPECT_TRUE(seen_done);
  EXPECT_EQ(streamed[3], 8u);
  EXPECT_EQ(streamed[15], 4u);
  EXPECT_EQ(streamed[0], 0u);
}

TEST(HistogramHw, BanksClearBetweenFrames) {
  rtl::Simulator sim(build_histogram_rtl());
  auto frame = [&](unsigned pixel_value, unsigned count) {
    sim.set_input("pixel", pixel_value);
    sim.set_input("pixel_valid", 1);
    sim.set_input("vsync", 1);
    sim.step();
    sim.set_input("vsync", 0);
    for (unsigned i = 1; i < count; ++i) sim.step();
  };
  frame(0x80, 40);  // bin 8 x 40
  frame(0x80, 30);  // bin 8 x 30 -- other bank
  // Third frame start streams the second frame's histogram: 30, not 70.
  sim.set_input("vsync", 1);
  std::uint64_t bin8 = 0;
  for (int cycle = 0; cycle < 20; ++cycle) {
    sim.step();
    sim.set_input("vsync", 0);
    sim.set_input("pixel_valid", 0);
    if (sim.output("bin_valid").to_u64() == 1u &&
        sim.output("bin_index").to_u64() == 8u)
      bin8 = sim.output("bin_count").to_u64();
  }
  EXPECT_EQ(bin8, 30u);
}

// --- threshold_calc --------------------------------------------------------

template <class Driver>
void drive_histogram_stream(Driver&& drive,
                            const std::array<std::uint16_t, kHistBins>& hist) {
  for (unsigned bin = 0; bin < kHistBins; ++bin) {
    drive(true, bin, hist[bin], bin == kHistBins - 1);
  }
  drive(false, 0, 0, false);
}

TEST(ThresholdHw, BothFlowsMatchSpec) {
  std::mt19937_64 rng(53);
  const rtl::Module osss_m = hls::synthesize(build_threshold_osss());
  rtl::Simulator osss_sim(osss_m);
  rtl::Simulator vhdl_sim(build_threshold_vhdl());
  hls::Interpreter interp(build_threshold_osss());

  for (int frame = 0; frame < 5; ++frame) {
    std::array<std::uint16_t, kHistBins> hist{};
    unsigned total = 0;
    for (unsigned bin = 0; bin < kHistBins; ++bin) {
      hist[bin] = static_cast<std::uint16_t>(rng() % 200);
      total += hist[bin];
    }
    const FrameStats expect = stats_from_histogram(hist);
    auto drive_all = [&](bool valid, unsigned bin, unsigned count,
                         bool done) {
      for (auto* s : {&osss_sim, &vhdl_sim}) {
        s->set_input("bin_valid", valid ? 1 : 0);
        s->set_input("bin_index", bin);
        s->set_input("bin_count", count);
        s->set_input("frame_done", done ? 1 : 0);
        s->step();
      }
      interp.set_input("bin_valid", valid ? 1 : 0);
      interp.set_input("bin_index", bin);
      interp.set_input("bin_count", count);
      interp.set_input("frame_done", done ? 1 : 0);
      interp.step();
    };
    drive_histogram_stream(drive_all, hist);
    // Let the ready pulse propagate (one extra idle cycle each).
    drive_all(false, 0, 0, false);
    EXPECT_EQ(osss_sim.output("mean").to_u64(), expect.mean) << "frame "
                                                             << frame;
    EXPECT_EQ(vhdl_sim.output("mean").to_u64(), expect.mean);
    EXPECT_EQ(interp.var("mean").to_u64(), expect.mean);
    EXPECT_EQ(osss_sim.output("dark_o").to_u64(), expect.dark);
    EXPECT_EQ(vhdl_sim.output("dark_o").to_u64(), expect.dark);
    EXPECT_EQ(osss_sim.output("bright_o").to_u64(), expect.bright);
    EXPECT_EQ(vhdl_sim.output("bright_o").to_u64(), expect.bright);
  }
}

TEST(ThresholdHw, ReadyPulsesOncePerFrame) {
  rtl::Simulator sim(build_threshold_vhdl());
  std::array<std::uint16_t, kHistBins> hist{};
  hist[5] = 100;
  unsigned ready_count = 0;
  auto drive = [&](bool valid, unsigned bin, unsigned count, bool done) {
    sim.set_input("bin_valid", valid ? 1 : 0);
    sim.set_input("bin_index", bin);
    sim.set_input("bin_count", count);
    sim.set_input("frame_done", done ? 1 : 0);
    sim.step();
    if (sim.output("ready").to_u64() == 1u) ++ready_count;
  };
  drive_histogram_stream(drive, hist);
  for (int i = 0; i < 10; ++i) drive(false, 0, 0, false);
  EXPECT_EQ(ready_count, 1u);
}

// --- param_calc ---------------------------------------------------------------

TEST(ParamCalcHw, BothFlowsMatchAeLaw) {
  hls::Interpreter osss(build_param_calc_osss());
  rtl::Simulator vhdl(build_param_calc_vhdl());
  AeState spec;

  std::mt19937_64 rng(67);
  for (int frame = 0; frame < 60; ++frame) {
    const std::uint8_t mean = static_cast<std::uint8_t>(rng() & 0xff);
    spec = ae_step(spec, mean);

    // VHDL flavour: three-stage pipeline; run until update pulses.
    vhdl.set_input("mean", mean);
    vhdl.set_input("ready", 1);
    vhdl.step();
    vhdl.set_input("ready", 0);
    for (int guard = 0; guard < 10 && vhdl.output("update").to_u64() != 1u;
         ++guard)
      vhdl.step();
    EXPECT_EQ(vhdl.output("update").to_u64(), 1u);
    EXPECT_EQ(vhdl.output("exposure").to_u64(), spec.exposure)
        << "frame " << frame << " mean " << unsigned(mean);
    EXPECT_EQ(vhdl.output("gain").to_u64(), spec.gain);

    // OSSS flavour: multi-state; pulse ready and run until update pulses.
    osss.set_input("mean", mean);
    osss.set_input("ready", 1);
    osss.step();
    osss.set_input("ready", 0);
    for (int guard = 0; guard < 20 && osss.var("update").to_u64() != 1u;
         ++guard)
      osss.step();
    EXPECT_EQ(osss.var("update").to_u64(), 1u);
    EXPECT_EQ(osss.var("exposure").to_u64(), spec.exposure)
        << "frame " << frame;
    EXPECT_EQ(osss.var("gain").to_u64(), spec.gain);
    osss.step();  // update deasserts
  }
}

TEST(ParamCalcHw, OsssRtlMatchesInterpreter) {
  const hls::Behavior beh = build_param_calc_osss();
  hls::Interpreter interp(beh);
  rtl::Simulator sim(hls::synthesize(beh));
  std::mt19937_64 rng(71);
  for (int cycle = 0; cycle < 400; ++cycle) {
    const std::uint64_t mean = rng() & 0xff;
    const std::uint64_t ready = (cycle % 13 == 0) ? 1 : 0;
    interp.set_input("mean", mean);
    interp.set_input("ready", ready);
    sim.set_input("mean", mean);
    sim.set_input("ready", ready);
    for (const char* out : {"exposure", "gain", "update"}) {
      EXPECT_TRUE(interp.var(out) == sim.output(out))
          << out << " cycle " << cycle;
    }
    interp.step();
    sim.step();
  }
}

// --- reset_ctrl ---------------------------------------------------------------

TEST(ResetCtrlHw, StretchAndRelease) {
  for (bool use_osss : {true, false}) {
    rtl::Simulator sim(use_osss
                           ? hls::synthesize(build_reset_ctrl_osss())
                           : build_reset_ctrl_vhdl());
    sim.set_input("por_n", 0);
    sim.step(5);
    EXPECT_EQ(sim.output("reset").to_u64(), 1u) << "flow " << use_osss;
    sim.set_input("por_n", 1);
    // Must stay asserted for the stretch period...
    sim.step(4);
    EXPECT_EQ(sim.output("reset").to_u64(), 1u);
    // ...and eventually deassert.
    sim.step(12);
    EXPECT_EQ(sim.output("reset").to_u64(), 0u);
    // A new reset pulse re-asserts.
    sim.set_input("por_n", 0);
    sim.step(3);
    EXPECT_EQ(sim.output("reset").to_u64(), 1u);
  }
}

// --- IP integration ------------------------------------------------------

TEST(IpIntegration, ParamCalcWithIpMatchesMonolithic) {
  gate::Simulator ip_sim(param_calc_vhdl_with_ip());
  gate::Simulator mono_sim(gate::lower_to_gates(build_param_calc_vhdl()));
  std::mt19937_64 rng(83);
  for (int frame = 0; frame < 40; ++frame) {
    const std::uint64_t mean = rng() & 0xff;
    for (auto* s : {&ip_sim, &mono_sim}) {
      s->set_input("mean", mean);
      s->set_input("ready", 1);
      s->step();
      s->set_input("ready", 0);
      s->step(4);  // drain the three-stage pipeline
    }
    EXPECT_TRUE(ip_sim.output("exposure") == mono_sim.output("exposure"))
        << "frame " << frame;
    EXPECT_TRUE(ip_sim.output("gain") == mono_sim.output("gain"));
  }
}

TEST(IpIntegration, IpNetlistIsSelfContained) {
  const gate::Netlist ip = multiplier_ip_netlist();
  EXPECT_NO_THROW(ip.validate());
  EXPECT_GT(ip.gate_count(), 100u);  // a real array multiplier
  EXPECT_EQ(ip.dff_count(), 0u);    // combinational macro
}

}  // namespace
}  // namespace osss::expocu
