// Behavioral synthesis tests: FSM extraction, preamble-as-reset, method
// inlining, multiplier binding — validated by cycle-accurate equivalence
// of interpreter, RTL and gate netlist (the paper's §12 claim).

#include "hls/synth.hpp"

#include <gtest/gtest.h>

#include "gate/lower.hpp"
#include "gate/sim.hpp"
#include "hls/interp.hpp"
#include "rtl/sim.hpp"
#include "verify/stimgen.hpp"

namespace osss::hls {
namespace {

using meta::constant;

/// Drive interpreter, RTL sim and gate sim with the same random inputs and
/// require identical outputs every cycle.  Stimulus follows the repo's
/// seed discipline (verify::StimGen): the derived seed is printed in every
/// failure message so a CI log line reproduces the run.
void check_equivalence(const Behavior& beh, const Options& opt,
                       unsigned cycles, unsigned seed) {
  Interpreter ref(beh);
  const rtl::Module m = synthesize(beh, opt);
  rtl::Simulator rsim(m);
  gate::Simulator gsim(gate::lower_to_gates(m));

  std::vector<std::string> outputs;
  for (const VarDecl& v : beh.vars)
    if (v.is_output) outputs.push_back(v.name);

  verify::StimGen gen(
      verify::StimGen::derive(verify::env_seed(seed), "synth/" + beh.name));
  for (const InputDecl& in : beh.inputs) gen.declare(in.name, in.width);
  for (unsigned c = 0; c < cycles; ++c) {
    for (const InputDecl& in : beh.inputs) {
      const Bits v = gen.next(in.name);
      ref.set_input(in.name, v);
      rsim.set_input(in.name, v);
      gsim.set_input(in.name, v);
    }
    for (const std::string& out : outputs) {
      EXPECT_TRUE(ref.var(out) == rsim.output(out))
          << "cycle " << c << " output " << out << ": interp "
          << ref.var(out).to_hex_string() << " vs rtl "
          << rsim.output(out).to_hex_string() << " (seed " << gen.seed()
          << ")";
      EXPECT_TRUE(ref.var(out) == gsim.output(out))
          << "cycle " << c << " output " << out << " (gate, seed "
          << gen.seed() << ")";
    }
    ref.step();
    rsim.step();
    gsim.step();
  }
}

Behavior pulse_controller() {
  // start -> busy for 3 cycles, accumulating data.
  BehaviorBuilder bb("pulse");
  auto start = bb.input("start", 1);
  auto data = bb.input("data", 8);
  auto busy = bb.var("busy", 1, 0, /*output=*/true);
  auto acc = bb.var("acc", 8, 0, /*output=*/true);
  bb.assign(busy, constant(1, 0));
  bb.assign(acc, constant(8, 0));
  bb.wait();
  bb.loop([&] {
    bb.if_(start, [&] {
      bb.assign(busy, constant(1, 1));
      bb.assign(acc, meta::add(acc, data));
      bb.wait(3);
      bb.assign(busy, constant(1, 0));
    });
    bb.wait();
  });
  return bb.take();
}

TEST(HlsSynth, PulseControllerEquivalentAllLevels) {
  check_equivalence(pulse_controller(), {}, 300, 5);
}

TEST(HlsSynth, ReportCountsStatesAndTransitions) {
  Report rep;
  (void)synthesize(pulse_controller(), {}, &rep);
  EXPECT_EQ(rep.states, 5u);  // preamble wait + wait(3) + loop wait
  EXPECT_GE(rep.transitions, rep.states);
  EXPECT_EQ(rep.state_bits, 3u);
  EXPECT_EQ(rep.register_bits, 9u);  // busy + acc
}

TEST(HlsSynth, PreambleBecomesResetValues) {
  BehaviorBuilder bb("init");
  auto x = bb.var("x", 8, 0, true);
  bb.assign(x, constant(8, 0x42));
  bb.wait();
  bb.loop([&] { bb.wait(); });
  const rtl::Module m = synthesize(bb.take());
  rtl::Simulator sim(m);
  EXPECT_EQ(sim.output("x").to_u64(), 0x42u);  // before any clock
}

TEST(HlsSynth, InputDependentPreambleRejected) {
  BehaviorBuilder bb("bad");
  auto go = bb.input("go", 1);
  auto x = bb.var("x", 8, 0, true);
  bb.if_(go, [&] { bb.assign(x, constant(8, 1)); });
  bb.wait();
  bb.loop([&] { bb.wait(); });
  EXPECT_THROW(synthesize(bb.take()), std::logic_error);
}

TEST(HlsSynth, LoopWithoutWaitRejected) {
  BehaviorBuilder bb("bad");
  auto n = bb.input("n", 4);
  auto x = bb.var("x", 4, 0, true);
  bb.wait();
  bb.loop([&] {
    // Data-dependent while with no wait inside: unbounded combinational
    // work in a single cycle — must be rejected.
    bb.while_(meta::ult(x, n), [&] { bb.assign(x, meta::add(x, constant(4, 1))); });
    bb.wait();
  });
  EXPECT_THROW(synthesize(bb.take()), std::logic_error);
}

TEST(HlsSynth, WhileWithWaitMakesBusyLoop) {
  BehaviorBuilder bb("busyloop");
  auto go = bb.input("go", 1);
  auto done = bb.var("done", 1, 0, true);
  bb.wait();
  bb.loop([&] {
    bb.assign(done, constant(1, 0));
    bb.wait_until(go);
    bb.assign(done, constant(1, 1));
    bb.wait();
  });
  check_equivalence(bb.take(), {}, 200, 7);
}

TEST(HlsSynth, ObjectMethodCallsInline) {
  // SyncRegister-style shift object driven from an input bit.
  auto cls = std::make_shared<meta::ClassDesc>("Shift4");
  cls->add_member("v", 4);
  meta::MethodDesc write;
  write.name = "Write";
  write.params = {{"b", 1}};
  write.body = {meta::assign_member(
      "v", meta::concat({meta::slice(meta::member("v", 4), 2, 0),
                         meta::param("b", 1)}))};
  cls->add_method(std::move(write));
  meta::MethodDesc rising;
  rising.name = "RisingEdge";
  rising.return_width = 1;
  rising.is_const = true;
  rising.body = {meta::return_stmt(
      meta::band(meta::slice(meta::member("v", 4), 0, 0),
                 meta::bnot(meta::slice(meta::member("v", 4), 1, 1))))};
  cls->add_method(std::move(rising));

  BehaviorBuilder bb("sync");
  auto data = bb.input("data", 1);
  auto edge = bb.var("edge", 1, 0, true);
  auto reg = bb.object("data_sync_reg", cls);
  bb.wait();
  bb.loop([&] {
    bb.call(reg, "Write", {data});
    auto e = bb.call_r(reg, "RisingEdge");
    bb.assign(edge, e);
    bb.wait();
  });
  check_equivalence(bb.take(), {}, 300, 13);
}

Behavior two_muls_exclusive() {
  BehaviorBuilder bb("muls");
  auto sel = bb.input("sel", 1);
  auto a = bb.input("a", 8);
  auto b = bb.input("b", 8);
  auto x = bb.var("x", 8, 0, true);
  auto y = bb.var("y", 8, 0, true);
  bb.wait();
  bb.loop([&] {
    bb.if_(sel, [&] { bb.assign(x, meta::mul(a, b)); },
           [&] { bb.assign(y, meta::mul(meta::add(a, b), b)); });
    bb.wait();
  });
  return bb.take();
}

TEST(HlsSynth, MultiplierSharingBindsExclusivePaths) {
  const Behavior beh = two_muls_exclusive();
  Report flat;
  const rtl::Module m_flat = synthesize(beh, {.share_multipliers = false},
                                        &flat);
  Report shared;
  const rtl::Module m_shared = synthesize(beh, {.share_multipliers = true},
                                          &shared);
  EXPECT_EQ(flat.mul_units, 2u);
  EXPECT_EQ(shared.mul_units, 1u);
  EXPECT_EQ(shared.mul_ops, 2u);
  EXPECT_EQ(m_shared.stats().op_histogram.at("mul"), 1u);
  EXPECT_EQ(m_flat.stats().op_histogram.at("mul"), 2u);
}

TEST(HlsSynth, MultiplierSharingPreservesBehaviour) {
  check_equivalence(two_muls_exclusive(), {.share_multipliers = true}, 300,
                    17);
  check_equivalence(two_muls_exclusive(), {.share_multipliers = false}, 300,
                    17);
}

TEST(HlsInterp, StateTrackingAndReset) {
  Interpreter in(pulse_controller());
  EXPECT_EQ(in.var("busy").to_u64(), 0u);
  in.set_input("start", 1);
  in.set_input("data", 10);
  in.step();
  EXPECT_EQ(in.var("busy").to_u64(), 1u);
  EXPECT_EQ(in.var("acc").to_u64(), 10u);
  in.set_input("start", 0);
  in.step(3);
  EXPECT_EQ(in.var("busy").to_u64(), 0u);
  in.reset();
  EXPECT_EQ(in.var("acc").to_u64(), 0u);
}

TEST(HlsInterp, UnknownNamesThrow) {
  Interpreter in(pulse_controller());
  EXPECT_THROW(in.set_input("zz", 0), std::logic_error);
  EXPECT_THROW(in.var("zz"), std::logic_error);
}

}  // namespace
}  // namespace osss::hls
