// Tests for behaviour construction and the linear lowering.

#include "hls/behavior.hpp"

#include <gtest/gtest.h>

namespace osss::hls {
namespace {

using meta::constant;

TEST(Behavior, BasicStructure) {
  BehaviorBuilder bb("b");
  auto x = bb.var("x", 8);
  bb.assign(x, constant(8, 1));
  bb.wait();
  bb.loop([&] {
    bb.assign(x, meta::add(x, constant(8, 1)));
    bb.wait();
  });
  Behavior beh = bb.take();
  EXPECT_EQ(beh.name, "b");
  EXPECT_EQ(beh.state_count, 2u);
  ASSERT_NE(beh.find_var("x"), nullptr);
  EXPECT_EQ(beh.find_var("x")->width, 8u);
  EXPECT_EQ(beh.code.back().kind, Instr::Kind::kJump);
}

TEST(Behavior, DuplicateNamesRejected) {
  BehaviorBuilder bb("b");
  bb.var("x", 8);
  EXPECT_THROW(bb.var("x", 4), std::logic_error);
  EXPECT_THROW(bb.input("x", 4), std::logic_error);
}

TEST(Behavior, AssignChecksWidthAndTarget) {
  BehaviorBuilder bb("b");
  auto x = bb.var("x", 8);
  EXPECT_THROW(bb.assign(x, constant(4, 0)), std::logic_error);
  EXPECT_THROW(bb.assign(meta::local("nope", 8), constant(8, 0)),
               std::logic_error);
  EXPECT_THROW(bb.assign(constant(8, 0), constant(8, 0)), std::logic_error);
}

TEST(Behavior, MustEndInLoopAndContainWait) {
  {
    BehaviorBuilder bb("no_loop");
    auto x = bb.var("x", 4);
    bb.assign(x, constant(4, 1));
    bb.wait();
    EXPECT_THROW(bb.take(), std::logic_error);
  }
  {
    BehaviorBuilder bb("no_wait");
    auto x = bb.var("x", 4);
    bb.loop([&] { bb.assign(x, constant(4, 1)); });
    EXPECT_THROW(bb.take(), std::logic_error);
  }
}

TEST(Behavior, WaitZeroRejected) {
  BehaviorBuilder bb("b");
  EXPECT_THROW(bb.wait(0), std::logic_error);
}

TEST(Behavior, MultiCycleWaitMakesStates) {
  BehaviorBuilder bb("b");
  bb.wait(3);
  bb.loop([&] { bb.wait(); });
  Behavior beh = bb.take();
  EXPECT_EQ(beh.state_count, 4u);
}

TEST(Behavior, CallValidatesSignature) {
  auto cls = std::make_shared<meta::ClassDesc>("C");
  cls->add_member("v", 8);
  meta::MethodDesc set;
  set.name = "Set";
  set.params = {{"x", 8}};
  set.body = {meta::assign_member("v", meta::param("x", 8))};
  cls->add_method(std::move(set));
  meta::MethodDesc get;
  get.name = "Get";
  get.return_width = 8;
  get.is_const = true;
  get.body = {meta::return_stmt(meta::member("v", 8))};
  cls->add_method(std::move(get));

  BehaviorBuilder bb("b");
  auto obj = bb.object("o", cls);
  EXPECT_EQ(obj->width, 8u);
  EXPECT_THROW(bb.call(obj, "Nope"), std::logic_error);
  EXPECT_THROW(bb.call(obj, "Set"), std::logic_error);  // missing arg
  EXPECT_THROW(bb.call(obj, "Set", {constant(4, 0)}), std::logic_error);
  EXPECT_NO_THROW(bb.call(obj, "Set", {constant(8, 1)}));
  EXPECT_THROW(bb.call_r(obj, "Set", {constant(8, 1)}), std::logic_error);
  auto r = bb.call_r(obj, "Get");
  EXPECT_EQ(r->width, 8u);
}

TEST(Behavior, BuilderUnusableAfterTake) {
  BehaviorBuilder bb("b");
  bb.wait();
  bb.loop([&] { bb.wait(); });
  (void)bb.take();
  EXPECT_THROW(bb.wait(), std::logic_error);
}

}  // namespace
}  // namespace osss::hls
