// Tests for the event-driven gate simulator itself (event accounting,
// reset, memory poke) — equivalence against RTL is covered in lower_test.

#include "gate/sim.hpp"

#include <gtest/gtest.h>

#include "gate/lower.hpp"
#include "rtl/builder.hpp"

namespace osss::gate {
namespace {

using rtl::Builder;
using rtl::Wire;

TEST(GateSim, EventDrivenOnlyEvaluatesOnChange) {
  // A counter whose LSB toggles every cycle but MSB rarely: event counts
  // must grow far slower than gates * cycles.
  Builder b("counter");
  Wire q = b.reg("count", 16);
  b.connect(q, b.add(q, b.constant(16, 1)));
  b.output("count", q);
  Netlist nl = lower_to_gates(b.take());
  Simulator sim(nl);
  const std::uint64_t baseline = sim.event_count();
  sim.step(256);
  const std::uint64_t per_cycle =
      (sim.event_count() - baseline) / 256;
  // Full evaluation would be every gate every cycle.
  EXPECT_LT(per_cycle, nl.gate_count());
  EXPECT_EQ(sim.output("count").to_u64(), 256u);
}

TEST(GateSim, ResetRestoresInitAndMemories) {
  Builder b("m");
  Wire q = b.reg("r", 4, 0x9);
  b.connect(q, b.add(q, b.constant(4, 1)));
  b.output("q", q);
  Wire addr = b.input("addr", 2);
  rtl::MemHandle mem = b.memory("ram", 4, 4);
  b.mem_write(mem, addr, q, b.constant(1, 1));
  b.output("mq", b.mem_read(mem, addr));
  Netlist nl = lower_to_gates(b.take());
  Simulator sim(nl);
  sim.set_input("addr", 1);
  sim.step(3);
  EXPECT_NE(sim.output("q").to_u64(), 0x9u);
  EXPECT_NE(sim.mem_word(0, 1).to_u64(), 0u);
  sim.reset();
  EXPECT_EQ(sim.output("q").to_u64(), 0x9u);
  EXPECT_EQ(sim.mem_word(0, 1).to_u64(), 0u);
}

TEST(GateSim, PokeMemPropagatesToReadPorts) {
  Builder b("m");
  Wire addr = b.input("addr", 2);
  rtl::MemHandle mem = b.memory("ram", 4, 8);
  b.output("q", b.mem_read(mem, addr));
  Netlist nl = lower_to_gates(b.take());
  Simulator sim(nl);
  sim.set_input("addr", 2);
  EXPECT_EQ(sim.output("q").to_u64(), 0u);
  sim.poke_mem(0, 2, Bits(8, 0xab));
  EXPECT_EQ(sim.output("q").to_u64(), 0xabu);
  EXPECT_THROW(sim.poke_mem(0, 2, Bits(4, 0)), std::logic_error);
}

TEST(GateSim, UnknownBusThrows) {
  Builder b("m");
  Wire a = b.input("a", 2);
  b.output("o", a);
  Netlist nl = lower_to_gates(b.take());
  Simulator sim(nl);
  EXPECT_THROW(sim.set_input("zz", 1), std::logic_error);
  EXPECT_THROW(sim.output("zz"), std::logic_error);
  EXPECT_THROW(sim.set_input("a", Bits(3, 0)), std::logic_error);
}

TEST(GateSim, SetInputU64RejectsOversizedValue) {
  Builder b("m");
  Wire a = b.input("a", 2);
  b.output("o", a);
  Simulator sim(lower_to_gates(b.take()));
  sim.set_input("a", 3);  // widest value that fits
  EXPECT_EQ(sim.output("o").to_u64(), 3u);
  EXPECT_THROW(sim.set_input("a", 4), std::logic_error);
  EXPECT_THROW(sim.set_input("a", 0x100), std::logic_error);
  EXPECT_EQ(sim.output("o").to_u64(), 3u);  // failed set left state alone
}

namespace modes {

rtl::Module accumulator() {
  Builder b("acc");
  Wire en = b.input("en", 1);
  Wire d = b.input("d", 8);
  Wire q = b.reg("acc", 8);
  b.connect(q, b.mux(en, b.add(q, d), q));
  b.output("acc", q);
  return b.take();
}

rtl::Module mem_pipe() {
  Builder b("m");
  Wire waddr = b.input("waddr", 2);
  Wire raddr = b.input("raddr", 2);
  Wire data = b.input("d", 8);
  Wire wen = b.input("wen", 1);
  rtl::MemHandle mem = b.memory("ram", 4, 8);
  b.mem_write(mem, waddr, data, wen);
  b.output("q", b.mem_read(mem, raddr));
  return b.take();
}

}  // namespace modes

TEST(GateSim, EnginesAgreeCycleByCycle) {
  // The same stimulus through all three engines must produce identical
  // outputs every cycle (bit-parallel compared on lane 0 via broadcast).
  const Netlist nl = lower_to_gates(modes::accumulator());
  Simulator ev(nl, SimMode::kEvent);
  Simulator lv(nl, SimMode::kLevelized);
  Simulator bp(nl, SimMode::kBitParallel);
  std::uint64_t x = 0x1234;
  for (unsigned c = 0; c < 200; ++c) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t en = (x >> 17) & 1;
    const std::uint64_t d = (x >> 24) & 0xff;
    for (Simulator* s : {&ev, &lv, &bp}) {
      s->set_input("en", en);
      s->set_input("d", d);
    }
    ASSERT_EQ(ev.output("acc"), lv.output("acc")) << "cycle " << c;
    ASSERT_EQ(ev.output("acc"), bp.output("acc")) << "cycle " << c;
    for (Simulator* s : {&ev, &lv, &bp}) s->step();
  }
}

TEST(GateSim, BitParallelLanesAreIndependent) {
  // Lane l accumulates its own operand stream; each lane must match a
  // scalar reference model.
  Simulator sim(lower_to_gates(modes::accumulator()),
                SimMode::kBitParallel);
  std::uint8_t model[Simulator::kLanes] = {};
  for (unsigned c = 0; c < 40; ++c) {
    std::vector<std::uint64_t> d(8, 0);
    std::uint64_t en = 0;
    for (unsigned lane = 0; lane < Simulator::kLanes; ++lane) {
      const std::uint8_t operand =
          static_cast<std::uint8_t>(lane * 31 + c * 7 + 1);
      const bool enable = ((lane + c) % 3) != 0;
      for (unsigned b = 0; b < 8; ++b)
        d[b] |= static_cast<std::uint64_t>((operand >> b) & 1u) << lane;
      en |= static_cast<std::uint64_t>(enable) << lane;
      if (enable) model[lane] = static_cast<std::uint8_t>(model[lane] +
                                                          operand);
    }
    sim.set_input_lanes("d", d);
    sim.set_input_lanes("en", std::span<const std::uint64_t>(&en, 1));
    sim.step();
    for (unsigned lane : {0u, 1u, 17u, 63u})
      ASSERT_EQ(sim.output_lane("acc", lane).to_u64(), model[lane])
          << "cycle " << c << " lane " << lane;
  }
}

TEST(GateSim, SetInputLanesRequiresBitParallelMode) {
  Simulator sim(lower_to_gates(modes::accumulator()), SimMode::kEvent);
  const std::uint64_t one = 1;
  EXPECT_THROW(sim.set_input_lanes("en", std::span<const std::uint64_t>(&one, 1)),
               std::logic_error);
}

TEST(GateSim, SameCycleMemWriteReachesReadPort) {
  for (const SimMode mode :
       {SimMode::kEvent, SimMode::kLevelized, SimMode::kBitParallel}) {
    Simulator sim(lower_to_gates(modes::mem_pipe()), mode);
    sim.set_input("waddr", 1);
    sim.set_input("raddr", 1);
    sim.set_input("d", 0x5a);
    sim.set_input("wen", 1);
    EXPECT_EQ(sim.output("q").to_u64(), 0u) << sim_mode_name(mode);
    sim.step();  // write commits AND the read port re-evaluates
    EXPECT_EQ(sim.output("q").to_u64(), 0x5au) << sim_mode_name(mode);
    // Disabled write leaves the word (and the read port) untouched.
    sim.set_input("d", 0x33);
    sim.set_input("wen", 0);
    sim.step();
    EXPECT_EQ(sim.output("q").to_u64(), 0x5au) << sim_mode_name(mode);
  }
}

TEST(GateSim, BitParallelLanesWriteDistinctMemoryWords) {
  Simulator sim(lower_to_gates(modes::mem_pipe()), SimMode::kBitParallel);
  // Lane l writes value 0x10+l to address l%4, all lanes enabled.
  std::vector<std::uint64_t> waddr(2, 0), d(8, 0);
  for (unsigned lane = 0; lane < Simulator::kLanes; ++lane) {
    const unsigned a = lane % 4;
    const unsigned v = 0x10 + lane;
    for (unsigned b = 0; b < 2; ++b)
      waddr[b] |= static_cast<std::uint64_t>((a >> b) & 1u) << lane;
    for (unsigned b = 0; b < 8; ++b)
      d[b] |= static_cast<std::uint64_t>((v >> b) & 1u) << lane;
  }
  sim.set_input_lanes("waddr", waddr);
  sim.set_input_lanes("raddr", waddr);  // read back what we wrote
  sim.set_input_lanes("d", d);
  sim.set_input("wen", 1);
  sim.step();
  for (unsigned lane : {0u, 5u, 42u, 63u})
    EXPECT_EQ(sim.output_lane("q", lane).to_u64(), 0x10u + lane)
        << "lane " << lane;
}

TEST(GateSim, StatsExposeEngineInternals) {
  Builder b("counter");
  Wire q = b.reg("count", 16);
  b.connect(q, b.add(q, b.constant(16, 1)));
  b.output("count", q);
  const Netlist nl = lower_to_gates(b.take());

  Simulator ev(nl, SimMode::kEvent);
  ev.step(64);
  EXPECT_EQ(ev.stats().cycles, 64u);
  EXPECT_GT(ev.stats().events, 0u);
  EXPECT_GE(ev.stats().queue_high_water, 1u);
  EXPECT_EQ(ev.stats().levels_evaluated, 0u);  // event engine has no levels

  Simulator lv(nl, SimMode::kLevelized);
  lv.step(64);
  EXPECT_EQ(lv.stats().cycles, 64u);
  EXPECT_GT(lv.stats().levels_evaluated, 0u);
  // A ripple counter's deep carry levels are quiescent most cycles.
  EXPECT_GT(lv.stats().levels_skipped, 0u);
  EXPECT_EQ(lv.stats().queue_high_water, 0u);
  EXPECT_EQ(lv.output("count").to_u64(), ev.output("count").to_u64());
}

TEST(GateSim, CycleCountTracksSteps) {
  Builder b("m");
  Wire q = b.reg("r", 1);
  b.connect(q, b.not_(q));
  b.output("q", q);
  Simulator sim(lower_to_gates(b.take()));
  sim.step(7);
  EXPECT_EQ(sim.cycle_count(), 7u);
  EXPECT_EQ(sim.output("q").to_u64(), 1u);
}

}  // namespace
}  // namespace osss::gate
