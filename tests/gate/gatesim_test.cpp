// Tests for the event-driven gate simulator itself (event accounting,
// reset, memory poke) — equivalence against RTL is covered in lower_test.

#include "gate/sim.hpp"

#include <gtest/gtest.h>

#include "gate/lower.hpp"
#include "rtl/builder.hpp"

namespace osss::gate {
namespace {

using rtl::Builder;
using rtl::Wire;

TEST(GateSim, EventDrivenOnlyEvaluatesOnChange) {
  // A counter whose LSB toggles every cycle but MSB rarely: event counts
  // must grow far slower than gates * cycles.
  Builder b("counter");
  Wire q = b.reg("count", 16);
  b.connect(q, b.add(q, b.constant(16, 1)));
  b.output("count", q);
  Netlist nl = lower_to_gates(b.take());
  Simulator sim(nl);
  const std::uint64_t baseline = sim.event_count();
  sim.step(256);
  const std::uint64_t per_cycle =
      (sim.event_count() - baseline) / 256;
  // Full evaluation would be every gate every cycle.
  EXPECT_LT(per_cycle, nl.gate_count());
  EXPECT_EQ(sim.output("count").to_u64(), 256u);
}

TEST(GateSim, ResetRestoresInitAndMemories) {
  Builder b("m");
  Wire q = b.reg("r", 4, 0x9);
  b.connect(q, b.add(q, b.constant(4, 1)));
  b.output("q", q);
  Wire addr = b.input("addr", 2);
  rtl::MemHandle mem = b.memory("ram", 4, 4);
  b.mem_write(mem, addr, q, b.constant(1, 1));
  b.output("mq", b.mem_read(mem, addr));
  Netlist nl = lower_to_gates(b.take());
  Simulator sim(nl);
  sim.set_input("addr", 1);
  sim.step(3);
  EXPECT_NE(sim.output("q").to_u64(), 0x9u);
  EXPECT_NE(sim.mem_word(0, 1).to_u64(), 0u);
  sim.reset();
  EXPECT_EQ(sim.output("q").to_u64(), 0x9u);
  EXPECT_EQ(sim.mem_word(0, 1).to_u64(), 0u);
}

TEST(GateSim, PokeMemPropagatesToReadPorts) {
  Builder b("m");
  Wire addr = b.input("addr", 2);
  rtl::MemHandle mem = b.memory("ram", 4, 8);
  b.output("q", b.mem_read(mem, addr));
  Netlist nl = lower_to_gates(b.take());
  Simulator sim(nl);
  sim.set_input("addr", 2);
  EXPECT_EQ(sim.output("q").to_u64(), 0u);
  sim.poke_mem(0, 2, Bits(8, 0xab));
  EXPECT_EQ(sim.output("q").to_u64(), 0xabu);
  EXPECT_THROW(sim.poke_mem(0, 2, Bits(4, 0)), std::logic_error);
}

TEST(GateSim, UnknownBusThrows) {
  Builder b("m");
  Wire a = b.input("a", 2);
  b.output("o", a);
  Netlist nl = lower_to_gates(b.take());
  Simulator sim(nl);
  EXPECT_THROW(sim.set_input("zz", 1), std::logic_error);
  EXPECT_THROW(sim.output("zz"), std::logic_error);
  EXPECT_THROW(sim.set_input("a", Bits(3, 0)), std::logic_error);
}

TEST(GateSim, CycleCountTracksSteps) {
  Builder b("m");
  Wire q = b.reg("r", 1);
  b.connect(q, b.not_(q));
  b.output("q", q);
  Simulator sim(lower_to_gates(b.take()));
  sim.step(7);
  EXPECT_EQ(sim.cycle_count(), 7u);
  EXPECT_EQ(sim.output("q").to_u64(), 1u);
}

}  // namespace
}  // namespace osss::gate
