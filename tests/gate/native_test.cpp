// native_test.cpp — differential tests for the gate native-code backend.
//
// Three-way checks (event-driven oracle vs bit-parallel interpreter vs
// NativeEngine) over lowered random_module designs, optimized netlists and
// hand-built memory shapes.  The fuzz sweep runs the interpreted fallback
// (no compile cost per case); dedicated suites exercise the real compile +
// dlopen path, the silent bogus-compiler fallback, the shared jit object
// cache, wide-lane batch running, and mutation observability (a gate-kind
// flip must be caught through the native engine).

#include "gate/codegen.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <random>

#include "gate/equiv.hpp"
#include "gate/lower.hpp"
#include "gate/sim.hpp"
#include "jit/jit.hpp"
#include "opt/opt.hpp"
#include "par/pool.hpp"
#include "rtl/builder.hpp"
#include "verify/cosim.hpp"
#include "verify/random_module.hpp"
#include "verify/stimgen.hpp"

namespace osss::gate {
namespace {

using rtl::Builder;
using rtl::Wire;

/// True when the environment disables the JIT (e.g. the TSan CI job, which
/// cannot instrument dlopen'd code) — real-compile assertions are skipped.
bool jit_disabled() {
  const char* nj = std::getenv("OSSS_NO_JIT");
  return nj != nullptr && *nj != '\0' && *nj != '0';
}

/// Event engine (reference) vs bit-parallel interpreter vs native backend.
/// The event model caps the co-sim at scalar stimulus, so this checks lane
/// 0 of the wide arena against both interpreters under broadcast inputs.
void expect_three_way_match(const Netlist& nl, std::uint64_t seed,
                            unsigned cycles, unsigned lanes,
                            CodegenOptions opt) {
  verify::CoSim cs;
  cs.add(std::make_unique<verify::GateModel>(nl, SimMode::kEvent, "event"));
  cs.add(std::make_unique<verify::GateModel>(nl, SimMode::kBitParallel,
                                             "bitparallel"));
  cs.add(std::make_unique<verify::GateModel>(nl, SimMode::kNative, lanes,
                                             std::move(opt), "native"));
  cs.declare_io(nl);
  verify::StimGen gen(seed);
  cs.declare_stimulus(gen);
  const verify::RunResult r = cs.run(gen, cycles, 2);
  EXPECT_TRUE(r.ok) << r.mismatch.describe(cs.inputs(), false) << " seed "
                    << seed;
}

/// Bit-parallel reference vs native at 64 lanes: both models are wide, so
/// every cycle scores 64 independent stimulus vectors through the native
/// set_input_lanes / output_words path.
void expect_lane_match(const Netlist& nl, std::uint64_t seed,
                       unsigned cycles, CodegenOptions opt) {
  verify::CoSim cs;
  cs.add(std::make_unique<verify::GateModel>(nl, SimMode::kBitParallel,
                                             "bitparallel"));
  cs.add(std::make_unique<verify::GateModel>(
      nl, SimMode::kNative, Simulator::kLanes, std::move(opt), "native"));
  cs.declare_io(nl);
  verify::StimGen gen(seed);
  cs.declare_stimulus(gen);
  const verify::RunResult r = cs.run(gen, cycles, 2);
  EXPECT_TRUE(r.ok) << r.mismatch.describe(cs.inputs(), true) << " seed "
                    << seed;
}

Netlist random_netlist(const char* variant,
                       const verify::RandomModuleOptions& opt,
                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return lower_to_gates(verify::random_module(rng, opt));
}

std::uint64_t case_seed(const char* variant, unsigned index) {
  return verify::StimGen::derive(
      verify::env_seed(7411),
      std::string("gate-native/") + variant + "/" + std::to_string(index));
}

// --- differential fuzz over lowered random designs (fallback dispatch) -----

class GateNativeFuzz : public ::testing::TestWithParam<unsigned> {};

void run_fuzz_case(const char* variant,
                   const verify::RandomModuleOptions& opt, unsigned index,
                   unsigned lanes) {
  const std::uint64_t seed = case_seed(variant, index);
  const Netlist nl = random_netlist(variant, opt, seed);
  CodegenOptions copt;
  copt.force_fallback = true;  // corpus sweep: no per-case compile cost
  expect_three_way_match(nl, seed, 100, lanes, std::move(copt));
}

TEST_P(GateNativeFuzz, MatchesEventEngine) {
  run_fuzz_case("base", {40, false, false, false}, GetParam(), 1);
}

TEST_P(GateNativeFuzz, WithMemories) {
  run_fuzz_case("mem", {32, true, false, false}, GetParam(), 64);
}

TEST_P(GateNativeFuzz, WithSharedMuxShapes) {
  run_fuzz_case("shared", {32, false, true, false}, GetParam(), 128);
}

TEST_P(GateNativeFuzz, WithPolymorphicDispatch) {
  run_fuzz_case("poly", {32, false, false, true}, GetParam(), 256);
}

/// Post-optimization netlists: the standard pipeline's output (rewritten,
/// retimed, techmapped) through the native engine against the oracles.
TEST_P(GateNativeFuzz, OptimizedNetlists) {
  const std::uint64_t seed = case_seed("opt", GetParam());
  const Netlist nl =
      random_netlist("opt", {32, true, false, false}, seed);
  opt::PipelineOptions popt;
  popt.self_check = 0;  // equivalence is what THIS test checks
  const Netlist optimized = opt::optimize(nl, popt);
  CodegenOptions copt;
  copt.force_fallback = true;
  expect_three_way_match(optimized, seed, 100, 192, std::move(copt));
}

/// 64-lane scoring: every lane of the native arena checked against the
/// bit-parallel interpreter each cycle.
TEST_P(GateNativeFuzz, LaneScored) {
  const std::uint64_t seed = case_seed("lanes", GetParam());
  const Netlist nl = random_netlist("lanes", {32, true, false, false}, seed);
  CodegenOptions copt;
  copt.force_fallback = true;
  expect_lane_match(nl, seed, 80, std::move(copt));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GateNativeFuzz,
                         ::testing::Range(0u, verify::env_iters(8)));

// --- real compile + dlopen -------------------------------------------------

/// One random design through the actual JIT: emit, compile, dlopen, and
/// compare against both interpreters.  Asserts the native path really
/// loaded (this is what the -mavx2 CI leg runs).
TEST(GateNativeJit, CompilesAndMatchesEventEngine) {
  const std::uint64_t seed = case_seed("jit", 0);
  const Netlist nl = random_netlist("jit", {48, true, true, true}, seed);
  Simulator probe(nl, SimMode::kNative, 64);
  if (!jit_disabled()) {
    ASSERT_TRUE(probe.native().native()) << probe.native().compile_log();
  }
  expect_three_way_match(nl, seed, 120, 64, {});
  expect_lane_match(nl, seed, 80, {});
}

/// Wide SIMD lanes through the real JIT — 256 lanes = 4 words per net
/// through the store-only word loops (g_bin/g_nbin/g_mux) and the
/// generated commit.
TEST(GateNativeJit, WideLanesCompileAndMatch) {
  const std::uint64_t seed = case_seed("jit-wide", 0);
  const Netlist nl = random_netlist("jit-wide", {40, true, false, false}, seed);
  expect_three_way_match(nl, seed, 100, 256, {});
}

/// Memory semantics through the generated step(): same-cycle write-to-read
/// forwarding, reset clearing, poke_mem propagation — all against the
/// event engine on the same netlist.
TEST(GateNativeJit, MemoryCommitMatchesEventEngine) {
  Builder b("m");
  Wire waddr = b.input("waddr", 2);
  Wire raddr = b.input("raddr", 2);
  Wire data = b.input("d", 8);
  Wire wen = b.input("wen", 1);
  rtl::MemHandle mem = b.memory("ram", 4, 8);
  b.mem_write(mem, waddr, data, wen);
  b.output("q", b.mem_read(mem, raddr));
  const Netlist nl = lower_to_gates(b.take());

  Simulator ev(nl, SimMode::kEvent);
  Simulator nat(nl, SimMode::kNative, 128);
  std::mt19937_64 rng(case_seed("jit-mem", 0));
  for (unsigned c = 0; c < 200; ++c) {
    const std::uint64_t r = rng();
    for (Simulator* s : {&ev, &nat}) {
      s->set_input("waddr", r & 3);
      s->set_input("raddr", (r >> 2) & 3);
      s->set_input("d", (r >> 4) & 0xff);
      s->set_input("wen", (r >> 12) & 1);
      s->step();
    }
    ASSERT_EQ(ev.output("q").to_u64(), nat.output("q").to_u64())
        << "cycle " << c;
    ASSERT_EQ(ev.output("q").to_u64(), nat.output_lane("q", 127).to_u64())
        << "cycle " << c << " (lane 127)";
  }
  ASSERT_EQ(ev.mem_word(0, 2).to_u64(), nat.mem_word(0, 2).to_u64());
  ev.poke_mem(0, 1, Bits(8, 0xcd));
  nat.poke_mem(0, 1, Bits(8, 0xcd));
  ev.set_input("raddr", 1);
  nat.set_input("raddr", 1);
  ASSERT_EQ(ev.output("q").to_u64(), nat.output("q").to_u64());
  ev.reset();
  nat.reset();
  ASSERT_EQ(ev.output("q").to_u64(), nat.output("q").to_u64());
  ASSERT_EQ(nat.mem_word(0, 1).to_u64(), 0u);
}

/// Deep memory, both gather strategies on one netlist: 320 rows exceed
/// 4x64 lanes (sparse per-lane gather) but not 4x128 (one-hot row masks),
/// and the 9-bit address port can point past the depth — such reads return
/// 0 and such writes are dropped, on every path.
TEST(GateNativeJit, DeepMemoryMatchesEventEngine) {
  Builder b("deep");
  Wire waddr = b.input("waddr", 9);
  Wire raddr = b.input("raddr", 9);
  Wire data = b.input("d", 6);
  Wire wen = b.input("wen", 1);
  rtl::MemHandle mem = b.memory("ram", 320, 6);
  b.mem_write(mem, waddr, data, wen);
  b.output("q", b.mem_read(mem, raddr));
  const Netlist nl = lower_to_gates(b.take());

  Simulator ev(nl, SimMode::kEvent);
  Simulator sparse(nl, SimMode::kNative, 64);
  Simulator masked(nl, SimMode::kNative, 128);
  std::mt19937_64 rng(case_seed("jit-deep", 0));
  for (unsigned c = 0; c < 300; ++c) {
    const std::uint64_t r = rng();
    for (Simulator* s : {&ev, &sparse, &masked}) {
      s->set_input("waddr", r & 511);
      s->set_input("raddr", (r >> 9) & 511);
      s->set_input("d", (r >> 18) & 63);
      s->set_input("wen", (r >> 24) & 1);
      s->step();
    }
    ASSERT_EQ(ev.output("q").to_u64(), sparse.output("q").to_u64())
        << "cycle " << c;
    ASSERT_EQ(ev.output("q").to_u64(), masked.output_lane("q", 127).to_u64())
        << "cycle " << c;
  }
}

// --- optimizer integration -------------------------------------------------

/// The optimization pipeline's differential self-check runs on the native
/// engine when asked, and the final result is equivalent to the input under
/// a mixed event-vs-native check.
TEST(GateNativeOpt, PipelineSelfChecksOnNativeEngine) {
  const std::uint64_t seed = case_seed("opt-pipeline", 0);
  const Netlist nl = random_netlist("opt-pipeline", {36, true, false, false},
                                    seed);
  opt::PipelineOptions popt;
  popt.self_check = 1;
  popt.check_mode = SimMode::kNative;
  popt.check_codegen.force_fallback = true;  // one compile per pass is slow
  std::vector<opt::PassStats> stats;
  const Netlist optimized = opt::optimize(nl, popt, &stats);
  ASSERT_FALSE(stats.empty());
  for (const opt::PassStats& s : stats) EXPECT_TRUE(s.verified) << s.pass;

  EquivOptions eopt;
  eopt.mode_a = SimMode::kEvent;
  eopt.mode_b = SimMode::kNative;
  eopt.lanes = 128;
  const EquivResult r = check_equivalence(nl, optimized, eopt);
  EXPECT_TRUE(r) << r.counterexample;
}

/// Fault injection: a gate-kind flip on a live cell of an optimized
/// netlist must be observable through the native engine — guards against a
/// backend that decays to "always matches" (e.g. evaluating nothing).
TEST(GateNativeOpt, MutationsAreCaughtThroughNativeEngine) {
  const std::uint64_t seed = case_seed("mutation", 0);
  const Netlist nl = random_netlist("mutation", {32, false, false, false},
                                    seed);
  opt::PipelineOptions popt;
  popt.self_check = 0;
  const Netlist optimized = opt::optimize(nl, popt);

  std::vector<NetId> targets;
  for (NetId id = 0; id < optimized.cells().size(); ++id) {
    const CellKind k = optimized.cells()[id].kind;
    if (k == CellKind::kAnd2 || k == CellKind::kOr2 || k == CellKind::kXor2)
      targets.push_back(id);
  }
  ASSERT_FALSE(targets.empty());

  CodegenOptions copt;
  copt.force_fallback = true;
  unsigned caught = 0;
  const std::size_t budget = std::min<std::size_t>(targets.size(), 6);
  for (std::size_t i = 0; i < budget; ++i) {
    const NetId victim = targets[i * targets.size() / budget];
    Netlist mutant = optimized;
    const CellKind k = mutant.cells()[victim].kind;
    mutant.mutate_cell(victim, k == CellKind::kAnd2   ? CellKind::kNand2
                               : k == CellKind::kOr2  ? CellKind::kNor2
                                                      : CellKind::kXnor2);
    EquivOptions eopt;
    eopt.mode_a = SimMode::kEvent;
    eopt.mode_b = SimMode::kNative;
    eopt.lanes = 64;
    eopt.codegen = copt;
    if (!check_equivalence(optimized, mutant, eopt)) ++caught;
  }
  EXPECT_GT(caught, 0u) << "no kind-flip observable out of " << budget;
}

// --- fallback robustness ---------------------------------------------------

/// A compiler that cannot exist: the backend must fall back silently (no
/// throw), report why, and stay bit-identical to the interpreters.
TEST(GateNativeFallback, BogusCompilerFallsBackSilently) {
  const std::uint64_t seed = case_seed("bogus-cc", 0);
  const Netlist nl = random_netlist("bogus-cc", {36, true, false, false},
                                    seed);
  CodegenOptions opt;
  opt.compiler = "/nonexistent/osss-cc";
  Simulator probe(nl, SimMode::kNative, 128, opt);
  EXPECT_FALSE(probe.native().native());
  EXPECT_FALSE(probe.native().compile_log().empty());
  expect_three_way_match(nl, seed, 100, 128, opt);
}

/// The backend owns a private temp directory for source/so/log and must
/// remove it when the engine dies — keeps ASan/LSan runs artifact-clean.
TEST(GateNativeFallback, TempDirIsCleanedUp) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("osss-gate-native-test-" + std::to_string(::getpid()));
  fs::create_directories(dir);
  char* old_tmp = std::getenv("TMPDIR");
  const std::string saved = old_tmp != nullptr ? old_tmp : "";
  ::setenv("TMPDIR", dir.c_str(), 1);
  {
    Builder b("t");
    b.output("o", b.add(b.input("a", 8), b.input("b", 8)));
    Simulator sim(lower_to_gates(b.take()), SimMode::kNative, 64);
    sim.set_input("a", std::uint64_t{1});
    sim.set_input("b", std::uint64_t{2});
    sim.step();
    EXPECT_EQ(sim.output("o").to_u64(), 3u);
  }
  if (old_tmp != nullptr)
    ::setenv("TMPDIR", saved.c_str(), 1);
  else
    ::unsetenv("TMPDIR");
  EXPECT_TRUE(fs::is_empty(dir)) << "native backend left artifacts in "
                                 << dir;
  fs::remove_all(dir);
}

// --- shared jit object cache -----------------------------------------------

/// Two live engines over the same netlist at the same lane count share one
/// compiled object: the second construction is a cache hit, not a compile.
TEST(GateNativeCache, ConcurrentEnginesShareOneObject) {
  if (jit_disabled()) GTEST_SKIP() << "OSSS_NO_JIT set";
  Builder b("cachetgt");
  Wire a = b.input("a", 16);
  Wire q = b.reg("q", 16);
  b.connect(q, b.add(q, a));
  b.output("o", q);
  const Netlist nl = lower_to_gates(b.take());

  const jit::CacheStats before = jit::cache_stats();
  Simulator first(nl, SimMode::kNative, 64);
  ASSERT_TRUE(first.native().native()) << first.native().compile_log();
  const jit::CacheStats mid = jit::cache_stats();
  // Cold: one compile.  Under a warm $OSSS_JIT_CACHE_DIR the object loads
  // from disk instead — either way the compiler+disk total moves by one.
  EXPECT_EQ(mid.compiles + mid.disk_hits,
            before.compiles + before.disk_hits + 1);

  Simulator second(nl, SimMode::kNative, 64);  // first is still alive
  ASSERT_TRUE(second.native().native());
  const jit::CacheStats after = jit::cache_stats();
  EXPECT_EQ(after.compiles, mid.compiles) << "second engine recompiled";
  EXPECT_EQ(after.hits, mid.hits + 1);

  // Shared code, private state: the engines still step independently.
  first.set_input("a", std::uint64_t{3});
  second.set_input("a", std::uint64_t{5});
  first.step(4);
  second.step(2);
  EXPECT_EQ(first.output("o").to_u64(), 12u);
  EXPECT_EQ(second.output("o").to_u64(), 10u);
}

// --- generated source sanity ----------------------------------------------

TEST(GateNativeEmit, GeneratedSourceExportsTheGateAbi) {
  Builder b("emit");
  b.output("o", b.xor_(b.input("a", 8), b.input("b", 8)));
  const Netlist nl = lower_to_gates(b.take());
  const std::string src = emit_netlist_cpp(nl, 256);
  EXPECT_NE(src.find("osss_gate_eval"), std::string::npos);
  EXPECT_NE(src.find("osss_gate_step"), std::string::npos);
  EXPECT_NE(src.find("osss_gate_abi"), std::string::npos);
  EXPECT_NE(src.find("osss_gate_lanes"), std::string::npos);
  EXPECT_NE(src.find("osss_gate_nets"), std::string::npos);
  EXPECT_NE(src.find("osss_gate_scratch"), std::string::npos);
}

TEST(GateNativeEmit, LaneValidation) {
  Builder b("v");
  b.output("o", b.not_(b.input("a", 4)));
  const Netlist nl = lower_to_gates(b.take());
  EXPECT_THROW(emit_netlist_cpp(nl, 65), std::invalid_argument);
  EXPECT_THROW(emit_netlist_cpp(nl, Simulator::kMaxLanes + 64),
               std::invalid_argument);
  EXPECT_THROW(Simulator(nl, SimMode::kNative, 65), std::invalid_argument);
  // Interpreted modes carry fixed lane counts; explicit others rejected.
  EXPECT_THROW(Simulator(nl, SimMode::kEvent, 64), std::invalid_argument);
  EXPECT_THROW(Simulator(nl, SimMode::kBitParallel, 128),
               std::invalid_argument);
  Simulator ok(nl, SimMode::kBitParallel, 64);  // the implied value is fine
  EXPECT_EQ(ok.lanes(), 64u);
}

// --- run_batch over wide native lanes --------------------------------------

/// The same stimulus through scalar event-engine blocks and one 128-lane
/// native block must produce identical per-lane outputs.
TEST(GateNativeBatch, WideLaneBlocksMatchScalarBlocks) {
  const std::uint64_t seed = case_seed("batch", 0);
  const Netlist nl = random_netlist("batch", {28, false, false, false}, seed);
  constexpr unsigned kWide = 128, kCycles = 40;
  const unsigned lw = kWide / 64;
  std::mt19937_64 rng(seed);

  std::vector<unsigned> in_widths, out_widths;
  for (const Bus& bus : nl.inputs())
    in_widths.push_back(static_cast<unsigned>(bus.nets.size()));
  for (const Bus& bus : nl.outputs())
    out_widths.push_back(static_cast<unsigned>(bus.nets.size()));
  unsigned in_bits = 0, out_bits = 0;
  for (unsigned w : in_widths) in_bits += w;
  for (unsigned w : out_widths) out_bits += w;
  (void)out_bits;

  // Scalar reference: one block per lane on the event engine.
  std::vector<par::StimulusBlock> scalar(kWide);
  for (auto& blk : scalar)
    blk = par::StimulusBlock::make(kCycles,
                                   static_cast<unsigned>(in_widths.size()));
  for (unsigned l = 0; l < kWide; ++l)
    for (unsigned c = 0; c < kCycles; ++c)
      for (unsigned s = 0; s < in_widths.size(); ++s)
        scalar[l].in_at(c, s) = rng();
  run_batch(nl, SimMode::kEvent, scalar);

  // One wide-lane native block carrying the same stimulus.
  par::StimulusBlock wide =
      par::StimulusBlock::make(kCycles, in_bits * lw, kWide);
  for (unsigned c = 0; c < kCycles; ++c) {
    unsigned slot = 0;
    for (unsigned s = 0; s < in_widths.size(); ++s) {
      const std::uint64_t mask =
          in_widths[s] >= 64 ? ~0ull
                             : ((std::uint64_t{1} << in_widths[s]) - 1);
      for (unsigned bit = 0; bit < in_widths[s]; ++bit)
        for (unsigned l = 0; l < kWide; ++l)
          wide.in_at(c, slot + bit * lw + l / 64) |=
              ((scalar[l].in_at(c, s) & mask) >> bit & 1u) << (l % 64);
      slot += in_widths[s] * lw;
    }
  }
  std::vector<par::StimulusBlock> wide_batch;
  wide_batch.push_back(std::move(wide));
  run_batch(nl, SimMode::kNative, wide_batch);

  const par::StimulusBlock& w = wide_batch.front();
  for (unsigned c = 0; c < kCycles; ++c) {
    unsigned slot = 0;
    for (unsigned s = 0; s < out_widths.size(); ++s) {
      for (unsigned bit = 0; bit < out_widths[s]; ++bit)
        for (unsigned l = 0; l < kWide; ++l)
          ASSERT_EQ((w.out_at(c, slot + bit * lw + l / 64) >> (l % 64)) & 1u,
                    (scalar[l].out_at(c, s) >> bit) & 1u)
              << "cycle " << c << " output " << s << " bit " << bit
              << " lane " << l;
      slot += out_widths[s] * lw;
    }
  }
}

/// A batch split into many chunks across pool workers still costs at most
/// one compile: every pooled engine shares the cached object, and chunks
/// recycle engines via restore_poweron instead of rebuilding them.  The
/// outputs are checked against the bit-parallel interpreter to prove the
/// recycled engines are bit-identical to fresh ones.
TEST(GateNativeBatch, ManyChunksShareOneCompile) {
  if (jit_disabled()) GTEST_SKIP() << "OSSS_NO_JIT set";
  Builder b("batchonce");
  Wire a = b.input("a", 12);
  Wire q = b.reg("q", 12);
  b.connect(q, b.add(q, b.xor_(a, q)));
  b.output("o", q);
  const Netlist nl = lower_to_gates(b.take());

  constexpr unsigned kBlocks = 16, kCycles = 12;
  std::mt19937_64 rng(0x9a7fULL);
  std::vector<par::StimulusBlock> blocks(kBlocks);
  for (auto& blk : blocks) {
    blk = par::StimulusBlock::make(kCycles, 12, 64);
    for (auto& w : blk.in) w = rng();
  }
  std::vector<par::StimulusBlock> reference = blocks;  // same stimulus

  par::Pool pool(4);
  const jit::CacheStats before = jit::cache_stats();
  run_batch(nl, SimMode::kNative, blocks, &pool);
  const jit::CacheStats after = jit::cache_stats();
  EXPECT_LE(after.compiles - before.compiles, 1u)
      << "run_batch must reuse one compiled object across all chunks";

  run_batch(nl, SimMode::kBitParallel, reference, &pool);
  for (unsigned i = 0; i < kBlocks; ++i)
    ASSERT_EQ(blocks[i].out, reference[i].out) << "block " << i;
}

TEST(GateNativeBatch, LaneValidation) {
  Builder b("v");
  b.output("o", b.not_(b.input("a", 4)));
  const Netlist nl = lower_to_gates(b.take());
  std::vector<par::StimulusBlock> blocks;
  blocks.push_back(par::StimulusBlock::make(1, 4 * 2, 128));
  // Wide blocks need the native backend.
  EXPECT_THROW(run_batch(nl, SimMode::kBitParallel, blocks),
               std::invalid_argument);
  blocks.front().lanes = 65;
  EXPECT_THROW(run_batch(nl, SimMode::kNative, blocks),
               std::invalid_argument);
}

// --- value-per-lane I/O ----------------------------------------------------

/// set_input_values/output_values (one value per lane, no bit transpose)
/// must agree with the bit-sliced set_input_lanes/output_words path, at 64
/// and 256 lanes.
TEST(GateNativeValues, ValueApiMatchesBitSlicedApi) {
  Builder b("vals");
  Wire a = b.input("a", 12);
  Wire q = b.reg("q", 12);
  b.connect(q, b.add(q, a));
  b.output("o", b.xor_(q, a));
  const Netlist nl = lower_to_gates(b.take());

  CodegenOptions fb;
  fb.force_fallback = true;
  for (const unsigned lanes : {64u, 256u}) {
    SCOPED_TRACE(lanes);
    const unsigned lw = lanes / 64;
    Simulator byvalue(nl, SimMode::kNative, lanes, fb);
    Simulator bitsliced(nl, SimMode::kNative, lanes, fb);

    std::mt19937_64 rng(1234 + lanes);
    std::vector<std::uint64_t> values(lanes);
    std::vector<std::uint64_t> bit_lanes(12 * lw);
    for (unsigned c = 0; c < 50; ++c) {
      for (unsigned l = 0; l < lanes; ++l) values[l] = rng() & 0xfff;
      std::fill(bit_lanes.begin(), bit_lanes.end(), 0);
      for (unsigned l = 0; l < lanes; ++l)
        for (unsigned bit = 0; bit < 12; ++bit)
          bit_lanes[std::size_t{bit} * lw + l / 64] |=
              ((values[l] >> bit) & 1u) << (l % 64);
      bitsliced.set_input_lanes("a", bit_lanes);
      bitsliced.step();
      byvalue.set_input_values("a", values);
      byvalue.step();
      const std::vector<std::uint64_t> ref_words = bitsliced.output_words("o");
      ASSERT_EQ(byvalue.output_words("o"), ref_words) << "cycle " << c;
      const std::vector<std::uint64_t> vals = byvalue.output_values("o");
      ASSERT_EQ(vals.size(), lanes);
      for (unsigned l = 0; l < lanes; ++l) {
        std::uint64_t expected = 0;
        for (unsigned bit = 0; bit < 12; ++bit)
          expected |=
              ((ref_words[std::size_t{bit} * lw + l / 64] >> (l % 64)) & 1u)
              << bit;
        ASSERT_EQ(vals[l], expected) << "cycle " << c << " lane " << l;
      }
    }
  }
}

TEST(GateNativeValues, RequiresNativeModeAndMatchingLaneCount) {
  Builder b("v");
  b.output("o", b.not_(b.input("a", 4)));
  const Netlist nl = lower_to_gates(b.take());
  Simulator bp(nl, SimMode::kBitParallel);
  std::vector<std::uint64_t> vals(64, 0);
  EXPECT_THROW(bp.set_input_values("a", vals), std::logic_error);
  EXPECT_THROW(bp.output_values("o"), std::logic_error);
  CodegenOptions fb;
  fb.force_fallback = true;
  Simulator nat(nl, SimMode::kNative, 128, fb);
  EXPECT_THROW(nat.set_input_values("a", vals), std::logic_error);
}

}  // namespace
}  // namespace osss::gate
