// Critical-path tests on hand-built netlists whose worst path is known in
// closed form from the generic library numbers (xor2 140 ps, and2 100 ps,
// clk->q 150 ps, dff setup 100 ps, memory setup 250 ps, memory read
// 900 ps).  The lowered-design timing tests only check monotonic
// relationships; these pin the arithmetic exactly.

#include "gate/timing.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gate/netlist.hpp"

namespace osss::gate {
namespace {

TEST(TimingPath, RegToRegXorChainIsExact) {
  Netlist nl("r2r");
  const auto a = nl.add_input("a", 3);
  const NetId q1 = nl.dff("q1");
  const NetId q2 = nl.dff("q2");
  const NetId x1 = nl.xor2(q1, a[0]);
  const NetId x2 = nl.xor2(x1, a[1]);
  const NetId x3 = nl.xor2(x2, a[2]);
  nl.connect_dff(q1, a[0]);
  nl.connect_dff(q2, x3);
  nl.add_output("o", {q2});
  nl.validate();

  const TimingReport r = analyze_timing(nl, Library::generic());
  // clk->q + three xor2 + setup.
  EXPECT_DOUBLE_EQ(r.critical_path_ps, 150.0 + 3 * 140.0 + 100.0);
  EXPECT_EQ(r.endpoint, "dff q2");
  EXPECT_EQ(r.levels, 3u);
  // Launch-to-capture nets, in order.
  const std::vector<NetId> want{q1, x1, x2, x3};
  EXPECT_EQ(r.critical_path, want);
  EXPECT_NEAR(r.fmax_mhz, 1.0e6 / 670.0, 1e-9);
}

TEST(TimingPath, PureCombinationalPathEndsAtOutput) {
  Netlist nl("comb");
  const auto a = nl.add_input("a", 4);
  const NetId c1 = nl.and2(a[0], a[1]);
  const NetId c2 = nl.and2(c1, a[2]);
  const NetId c3 = nl.and2(c2, a[3]);
  nl.add_output("o", {c3});
  nl.validate();

  const TimingReport r = analyze_timing(nl, Library::generic());
  EXPECT_DOUBLE_EQ(r.critical_path_ps, 3 * 100.0);
  EXPECT_EQ(r.endpoint, "output o");
  EXPECT_EQ(r.levels, 3u);
  EXPECT_EQ(r.dffs, 0u);
}

TEST(TimingPath, MemoryWriteSetupIsAnEndpoint) {
  Netlist nl("wr");
  const auto addr = nl.add_input("addr", 2);
  const auto d = nl.add_input("d", 2);
  const auto en = nl.add_input("en", 1);
  const unsigned mem = nl.add_memory("ram", 4, 1);
  // Data reaches the write port through one and2: 100 ps + 250 ps setup.
  nl.mem_write(mem, addr, {nl.and2(d[0], d[1])}, en[0]);
  nl.add_output("o", {addr[0]});

  const TimingReport r = analyze_timing(nl, Library::generic());
  EXPECT_DOUBLE_EQ(r.critical_path_ps, 100.0 + 250.0);
  EXPECT_EQ(r.endpoint, "mem ram");
}

TEST(TimingPath, AsynchronousMemoryReadDominates) {
  Netlist nl("rd");
  const auto addr = nl.add_input("addr", 2);
  const auto d = nl.add_input("d", 1);
  const auto en = nl.add_input("en", 1);
  const unsigned mem = nl.add_memory("ram", 4, 1);
  nl.mem_write(mem, addr, {d[0]}, en[0]);
  nl.add_output("q", nl.mem_read(mem, addr));

  const TimingReport r = analyze_timing(nl, Library::generic());
  // The 900 ps asynchronous read beats the 250 ps write setup.
  EXPECT_DOUBLE_EQ(r.critical_path_ps, 900.0);
  EXPECT_EQ(r.endpoint, "output q");
}

}  // namespace
}  // namespace osss::gate
