// Tests for the optimizing netlist factories: constant folding, identity
// simplification and structural hashing — the machinery behind the paper's
// "resolution adds no overhead" result (R4).

#include "gate/netlist.hpp"

#include <gtest/gtest.h>

namespace osss::gate {
namespace {

TEST(Netlist, ConstantsPreexist) {
  Netlist nl("t");
  EXPECT_EQ(nl.const0(), 0u);
  EXPECT_EQ(nl.const1(), 1u);
  EXPECT_EQ(nl.constant(true), nl.const1());
}

TEST(Netlist, InverterFolding) {
  Netlist nl("t");
  auto a = nl.add_input("a", 1);
  EXPECT_EQ(nl.inv(nl.const0()), nl.const1());
  EXPECT_EQ(nl.inv(nl.const1()), nl.const0());
  const NetId na = nl.inv(a[0]);
  EXPECT_EQ(nl.inv(na), a[0]);  // double inversion vanishes
  EXPECT_EQ(nl.inv(a[0]), na);  // strash: same gate reused
}

TEST(Netlist, AndOrIdentities) {
  Netlist nl("t");
  auto a = nl.add_input("a", 1);
  auto b = nl.add_input("b", 1);
  EXPECT_EQ(nl.and2(a[0], nl.const0()), nl.const0());
  EXPECT_EQ(nl.and2(a[0], nl.const1()), a[0]);
  EXPECT_EQ(nl.and2(a[0], a[0]), a[0]);
  EXPECT_EQ(nl.and2(a[0], nl.inv(a[0])), nl.const0());
  EXPECT_EQ(nl.or2(a[0], nl.const1()), nl.const1());
  EXPECT_EQ(nl.or2(a[0], nl.const0()), a[0]);
  EXPECT_EQ(nl.or2(a[0], nl.inv(a[0])), nl.const1());
  // Commutative canonicalization: and(a,b) == and(b,a).
  EXPECT_EQ(nl.and2(a[0], b[0]), nl.and2(b[0], a[0]));
}

TEST(Netlist, XorIdentities) {
  Netlist nl("t");
  auto a = nl.add_input("a", 1);
  EXPECT_EQ(nl.xor2(a[0], nl.const0()), a[0]);
  EXPECT_EQ(nl.xor2(a[0], nl.const1()), nl.inv(a[0]));
  EXPECT_EQ(nl.xor2(a[0], a[0]), nl.const0());
  EXPECT_EQ(nl.xor2(a[0], nl.inv(a[0])), nl.const1());
}

TEST(Netlist, MuxSimplifications) {
  Netlist nl("t");
  auto s = nl.add_input("s", 1);
  auto a = nl.add_input("a", 1);
  auto b = nl.add_input("b", 1);
  EXPECT_EQ(nl.mux2(nl.const1(), a[0], b[0]), a[0]);
  EXPECT_EQ(nl.mux2(nl.const0(), a[0], b[0]), b[0]);
  EXPECT_EQ(nl.mux2(s[0], a[0], a[0]), a[0]);
  EXPECT_EQ(nl.mux2(s[0], nl.const1(), nl.const0()), s[0]);
  EXPECT_EQ(nl.mux2(s[0], nl.const0(), nl.const1()), nl.inv(s[0]));
  EXPECT_EQ(nl.mux2(s[0], a[0], nl.const0()), nl.and2(s[0], a[0]));
}

TEST(Netlist, StructuralHashingSharesLogic) {
  Netlist nl("t");
  auto a = nl.add_input("a", 1);
  auto b = nl.add_input("b", 1);
  const std::size_t before = nl.cells().size();
  const NetId g1 = nl.xor2(nl.and2(a[0], b[0]), nl.or2(a[0], b[0]));
  const NetId g2 = nl.xor2(nl.and2(b[0], a[0]), nl.or2(b[0], a[0]));
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(nl.cells().size(), before + 3);  // and, or, xor — built once
}

TEST(Netlist, DffConnectionRules) {
  Netlist nl("t");
  const NetId q = nl.dff("r", true);
  EXPECT_THROW(nl.validate(), std::logic_error);  // unconnected D
  nl.connect_dff(q, nl.const0());
  EXPECT_NO_THROW(nl.validate());
  EXPECT_THROW(nl.connect_dff(q, nl.const1()), std::logic_error);
  EXPECT_THROW(nl.connect_dff(nl.const0(), q), std::logic_error);
}

TEST(Netlist, SweepRemovesDeadLogic) {
  Netlist nl("t");
  auto a = nl.add_input("a", 1);
  auto b = nl.add_input("b", 1);
  const NetId live = nl.and2(a[0], b[0]);
  (void)nl.xor2(a[0], b[0]);  // dead
  (void)nl.or2(a[0], b[0]);   // dead
  nl.add_output("o", {live});
  const std::size_t removed = nl.sweep();
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.outputs()[0].name, "o");
}

TEST(Netlist, SweepKeepsMemoryWriteCone) {
  Netlist nl("t");
  auto addr = nl.add_input("addr", 2);
  auto en = nl.add_input("en", 1);
  auto d = nl.add_input("d", 1);
  const unsigned mem = nl.add_memory("m", 4, 1);
  const NetId inv_d = nl.inv(d[0]);  // feeds write data: must survive
  nl.mem_write(mem, addr, {inv_d}, en[0]);
  auto q = nl.mem_read(mem, addr);
  nl.add_output("q", q);
  nl.sweep();
  EXPECT_EQ(nl.gate_count(), 1u);  // the inverter survived
}

TEST(Netlist, InstantiateIpMapsPorts) {
  // Build a tiny "IP": 2-bit AND.
  Netlist ip("and_ip");
  auto ia = ip.add_input("x", 2);
  auto ib = ip.add_input("y", 2);
  ip.add_output("z", {ip.and2(ia[0], ib[0]), ip.and2(ia[1], ib[1])});

  Netlist top("top");
  auto a = top.add_input("a", 2);
  auto b = top.add_input("b", 2);
  auto outs = top.instantiate(ip, "u0", {{"x", a}, {"y", b}});
  ASSERT_EQ(outs.count("z"), 1u);
  top.add_output("o", outs["z"]);
  EXPECT_NO_THROW(top.validate());
  EXPECT_EQ(top.gate_count(), 2u);
}

TEST(Netlist, InstantiateRejectsUnboundOrMismatched) {
  Netlist ip("ip");
  (void)ip.add_input("x", 2);
  ip.add_output("z", {ip.const0()});
  Netlist top("top");
  auto a = top.add_input("a", 1);
  EXPECT_THROW(top.instantiate(ip, "u0", {}), std::logic_error);
  EXPECT_THROW(top.instantiate(ip, "u0", {{"x", a}}), std::logic_error);
}

TEST(Netlist, HistogramCountsKinds) {
  Netlist nl("t");
  auto a = nl.add_input("a", 1);
  auto b = nl.add_input("b", 1);
  nl.add_output("o", {nl.and2(a[0], nl.inv(b[0]))});
  auto h = nl.cell_histogram();
  EXPECT_EQ(h[CellKind::kAnd2], 1u);
  EXPECT_EQ(h[CellKind::kInv], 1u);
  EXPECT_EQ(h[CellKind::kInput], 2u);
}

TEST(Netlist, OutputBoundsChecked) {
  Netlist nl("t");
  EXPECT_THROW(nl.add_output("o", {999u}), std::logic_error);
}

}  // namespace
}  // namespace osss::gate
