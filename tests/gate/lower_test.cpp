// Tests for RTL -> gate lowering.  The centrepiece is the randomized
// equivalence check: the gate-level netlist must be bit- and cycle-accurate
// against the RTL simulator for every operator (the paper's §12 claim that
// "the behavior on every stage is bit and cycle accurate").

#include "gate/lower.hpp"

#include <gtest/gtest.h>

#include "gate/sim.hpp"
#include "rtl/builder.hpp"
#include "rtl/sim.hpp"
#include "verify/stimgen.hpp"

namespace osss::gate {
namespace {

using rtl::Builder;
using rtl::Wire;

/// Random co-simulation of an RTL module against its gate lowering.
/// Stimulus comes from verify::StimGen under the repo's seed discipline:
/// the effective seed is derived from the base and the module name and is
/// part of every failure message, so a CI log line reproduces the run.
void check_equivalence(const rtl::Module& m, unsigned cycles, unsigned seed,
                       const std::vector<std::string>& input_names) {
  rtl::Simulator ref(m);
  Netlist nl = lower_to_gates(m);
  Simulator dut(nl);
  verify::StimGen gen(
      verify::StimGen::derive(verify::env_seed(seed), "lower/" + m.name()));
  for (const auto& name : input_names)
    gen.declare(name, m.node(m.find_input(name)).width);
  for (unsigned c = 0; c < cycles; ++c) {
    for (const auto& name : input_names) {
      const Bits v = gen.next(name);
      ref.set_input(name, v);
      dut.set_input(name, v);
    }
    for (const auto& out : m.outputs()) {
      EXPECT_TRUE(ref.output(out.name) == dut.output(out.name))
          << "cycle " << c << " output " << out.name << ": rtl "
          << ref.output(out.name).to_hex_string() << " vs gate "
          << dut.output(out.name).to_hex_string() << " (seed "
          << gen.seed() << ")";
    }
    ref.step();
    dut.step();
  }
}

TEST(Lower, CombOperatorsEquivalent) {
  Builder b("ops");
  Wire a = b.input("a", 11);
  Wire x = b.input("b", 11);
  b.output("add", b.add(a, x));
  b.output("sub", b.sub(a, x));
  b.output("mul", b.mul(a, x));
  b.output("and", b.and_(a, x));
  b.output("or", b.or_(a, x));
  b.output("xor", b.xor_(a, x));
  b.output("not", b.not_(a));
  b.output("eq", b.eq(a, x));
  b.output("ne", b.ne(a, x));
  b.output("ult", b.ult(a, x));
  b.output("ule", b.ule(a, x));
  b.output("slt", b.slt(a, x));
  b.output("sle", b.sle(a, x));
  b.output("shl3", b.shli(a, 3));
  b.output("lshr3", b.lshri(a, 3));
  b.output("ashr3", b.ashri(a, 3));
  b.output("redor", b.red_or(a));
  b.output("redand", b.red_and(a));
  b.output("redxor", b.red_xor(a));
  b.output("zext", b.zext(a, 16));
  b.output("sext", b.sext(a, 16));
  b.output("slice", b.slice(a, 7, 2));
  b.output("cat", b.concat({a, x}));
  check_equivalence(b.take(), 300, 11, {"a", "b"});
}

TEST(Lower, VariableShiftsEquivalent) {
  Builder b("shifts");
  Wire a = b.input("a", 13);
  Wire s = b.input("s", 5);
  b.output("shl", b.shlv(a, s));
  b.output("lshr", b.lshrv(a, s));
  check_equivalence(b.take(), 300, 17, {"a", "s"});
}

TEST(Lower, MuxTreeEquivalent) {
  Builder b("muxes");
  Wire a = b.input("a", 8);
  Wire x = b.input("b", 8);
  Wire s = b.input("s", 2);
  Wire r = b.mux(b.bit(s, 0), a, x);
  Wire r2 = b.mux(b.bit(s, 1), r, b.xor_(a, x));
  b.output("r", r2);
  check_equivalence(b.take(), 200, 23, {"a", "b", "s"});
}

TEST(Lower, SequentialDatapathEquivalent) {
  // Accumulator with enable + saturating compare flag.
  Builder b("accum");
  Wire en = b.input("en", 1);
  Wire d = b.input("d", 9);
  Wire acc = b.reg("acc", 9);
  b.connect(acc, b.add(acc, d));
  b.enable(acc, en);
  b.output("acc", acc);
  b.output("big", b.ult(b.constant(9, 300), acc));
  check_equivalence(b.take(), 300, 31, {"en", "d"});
}

TEST(Lower, MemoryEquivalent) {
  Builder b("mem");
  Wire waddr = b.input("waddr", 4);
  Wire raddr = b.input("raddr", 4);
  Wire data = b.input("data", 6);
  Wire wen = b.input("wen", 1);
  rtl::MemHandle mem = b.memory("ram", 16, 6);
  b.mem_write(mem, waddr, data, wen);
  b.output("q", b.mem_read(mem, raddr));
  check_equivalence(b.take(), 400, 37, {"waddr", "raddr", "data", "wen"});
}

TEST(Lower, RegisterInitHonoured) {
  Builder b("m");
  Wire q = b.reg("r", 8, 0x5a);
  b.connect(q, q);
  b.output("q", q);
  Netlist nl = lower_to_gates(b.take());
  Simulator sim(nl);
  EXPECT_EQ(sim.output("q").to_u64(), 0x5au);
  sim.step(3);
  EXPECT_EQ(sim.output("q").to_u64(), 0x5au);
}

TEST(Lower, ConstantsFoldAway) {
  // y = (a & 0) | (b ^ b) | 0 must lower to constant 0 with no gates.
  Builder b("fold");
  Wire a = b.input("a", 4);
  Wire x = b.input("b", 4);
  Wire z = b.constant(4, 0);
  b.output("y", b.or_(b.or_(b.and_(a, z), b.xor_(x, x)), z));
  Netlist nl = lower_to_gates(b.take());
  EXPECT_EQ(nl.gate_count(), 0u);
}

TEST(Lower, StrashSharesIdenticalSubexpressions) {
  // Two adders fed by the same operands: second one is free.
  Builder b1("one_adder");
  {
    Wire a = b1.input("a", 8);
    Wire x = b1.input("b", 8);
    b1.output("s1", b1.add(a, x));
  }
  Netlist nl1 = lower_to_gates(b1.take());

  Builder b2("two_adders");
  {
    Wire a = b2.input("a", 8);
    Wire x = b2.input("b", 8);
    b2.output("s1", b2.add(a, x));
    b2.output("s2", b2.add(a, x));
  }
  Netlist nl2 = lower_to_gates(b2.take());
  EXPECT_EQ(nl1.gate_count(), nl2.gate_count());
}

TEST(Lower, EnableLowersToFeedbackMux) {
  Builder b("en");
  Wire en = b.input("en", 1);
  Wire q = b.reg("r", 1);
  b.connect(q, b.not_(q));
  b.enable(q, en);
  b.output("q", q);
  Netlist nl = lower_to_gates(b.take());
  Simulator sim(nl);
  sim.set_input("en", 0);
  sim.step(5);
  EXPECT_EQ(sim.output("q").to_u64(), 0u);
  sim.set_input("en", 1);
  sim.step(1);
  EXPECT_EQ(sim.output("q").to_u64(), 1u);
}

}  // namespace
}  // namespace osss::gate
