// Tests for the VHDL netlist writer.

#include <gtest/gtest.h>

#include "gate/lower.hpp"
#include "gate/vhdl.hpp"
#include "rtl/builder.hpp"

namespace osss::gate {
namespace {

using rtl::Builder;
using rtl::Wire;

Netlist small_netlist() {
  Builder b("toggle");
  Wire en = b.input("en", 1);
  Wire q = b.reg("state", 2, rtl::Bits(2, 1));
  b.connect(q, b.add(q, b.constant(2, 1)));
  b.enable(q, en);
  b.output("state", q);
  return lower_to_gates(b.take());
}

TEST(Vhdl, EntityAndArchitectureEmitted) {
  const std::string v = write_vhdl(small_netlist());
  EXPECT_NE(v.find("entity toggle is"), std::string::npos);
  EXPECT_NE(v.find("architecture netlist of toggle is"), std::string::npos);
  EXPECT_NE(v.find("en : in std_logic_vector(0 downto 0)"),
            std::string::npos);
  EXPECT_NE(v.find("state : out std_logic_vector(1 downto 0)"),
            std::string::npos);
  EXPECT_NE(v.find("end architecture;"), std::string::npos);
}

TEST(Vhdl, RegistersHaveResetValues) {
  const std::string v = write_vhdl(small_netlist());
  EXPECT_NE(v.find("if rising_edge(clk) then"), std::string::npos);
  EXPECT_NE(v.find("if rst = '1' then"), std::string::npos);
  EXPECT_NE(v.find("<= '1';"), std::string::npos);  // init bit of value 1
}

TEST(Vhdl, MemoriesEmitted) {
  Builder b("m");
  Wire addr = b.input("addr", 2);
  Wire data = b.input("data", 4);
  Wire en = b.input("en", 1);
  rtl::MemHandle mem = b.memory("ram", 4, 4);
  b.mem_write(mem, addr, data, en);
  b.output("q", b.mem_read(mem, addr));
  const std::string v = write_vhdl(lower_to_gates(b.take()));
  EXPECT_NE(v.find("type mem0_t is array (0 to 3) of "
                   "std_logic_vector(3 downto 0);"),
            std::string::npos)
      << v;
  EXPECT_NE(v.find("mem0_write : process (clk)"), std::string::npos);
  EXPECT_NE(v.find("to_integer(unsigned"), std::string::npos);
}

TEST(Vhdl, CombinationalOperatorsUseVhdlKeywords) {
  Builder b("ops");
  Wire a = b.input("a", 1);
  Wire c = b.input("b", 1);
  b.output("x", b.xor_(a, c));
  b.output("o", b.or_(a, c));
  b.output("n", b.not_(a));
  const std::string v = write_vhdl(lower_to_gates(b.take()));
  EXPECT_NE(v.find(" xor "), std::string::npos);
  EXPECT_NE(v.find(" or "), std::string::npos);
  EXPECT_NE(v.find("not "), std::string::npos);
}

}  // namespace
}  // namespace osss::gate
