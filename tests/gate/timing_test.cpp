// Tests for static timing analysis and the area model.

#include "gate/timing.hpp"

#include <gtest/gtest.h>

#include "gate/lower.hpp"
#include "rtl/builder.hpp"

namespace osss::gate {
namespace {

using rtl::Builder;
using rtl::Wire;

Netlist counter_netlist(unsigned width) {
  Builder b("counter" + std::to_string(width));
  Wire q = b.reg("count", width);
  b.connect(q, b.add(q, b.constant(width, 1)));
  b.output("count", q);
  return lower_to_gates(b.take());
}

TEST(Timing, WiderRippleCounterIsSlower) {
  const Library lib = Library::generic();
  const TimingReport r8 = analyze_timing(counter_netlist(8), lib);
  const TimingReport r32 = analyze_timing(counter_netlist(32), lib);
  EXPECT_GT(r8.critical_path_ps, 0.0);
  EXPECT_GT(r32.critical_path_ps, r8.critical_path_ps);
  EXPECT_LT(r32.fmax_mhz, r8.fmax_mhz);
  EXPECT_GT(r32.area_ge, r8.area_ge);
  EXPECT_GT(r32.levels, r8.levels);
}

TEST(Timing, CriticalPathEndsAtRegister) {
  const Library lib = Library::generic();
  const TimingReport r = analyze_timing(counter_netlist(8), lib);
  EXPECT_NE(r.endpoint.find("dff"), std::string::npos);
  EXPECT_FALSE(r.critical_path.empty());
}

TEST(Timing, FmaxInversesCriticalPath) {
  const Library lib = Library::generic();
  const TimingReport r = analyze_timing(counter_netlist(16), lib);
  EXPECT_NEAR(r.fmax_mhz * r.critical_path_ps, 1.0e6, 1.0);
}

TEST(Timing, PipeliningRaisesFmax) {
  const Library lib = Library::generic();
  // Unpipelined: mul feeding a register.
  Builder b1("mul_flat");
  {
    Wire a = b1.input("a", 12);
    Wire x = b1.input("b", 12);
    Wire q = b1.reg("r", 12);
    b1.connect(q, b1.mul(a, x));
    b1.output("p", q);
  }
  const TimingReport flat = analyze_timing(lower_to_gates(b1.take()), lib);

  // Pipelined: registered operands first (halves the input-to-reg path and
  // makes the mul a reg-to-reg path; fmax must not degrade).
  Builder b2("mul_piped");
  {
    Wire a = b2.input("a", 12);
    Wire x = b2.input("b", 12);
    Wire ra = b2.reg("ra", 12);
    Wire rb = b2.reg("rb", 12);
    b2.connect(ra, a);
    b2.connect(rb, x);
    Wire q = b2.reg("r", 12);
    b2.connect(q, b2.mul(ra, rb));
    b2.output("p", q);
  }
  const TimingReport piped = analyze_timing(lower_to_gates(b2.take()), lib);
  // Same combinational depth through the multiplier, but the piped version
  // adds clk->q launch; both should be close, and area strictly larger.
  EXPECT_GT(piped.area_ge, flat.area_ge);
  EXPECT_GE(piped.dffs, flat.dffs + 24);
}

TEST(Timing, MemoryPathsIncludeMacroTiming) {
  const Library lib = Library::generic();
  Builder b("mem");
  Wire addr = b.input("addr", 4);
  rtl::MemHandle mem = b.memory("ram", 16, 8);
  Wire q = b.mem_read(mem, addr);
  Wire r = b.reg("r", 8);
  b.connect(r, q);
  b.output("q", r);
  const TimingReport rep = analyze_timing(lower_to_gates(b.take()), lib);
  // Path: input -> memq (900ps) -> dff setup (100ps) minimum.
  EXPECT_GE(rep.critical_path_ps, lib.mem_read_delay_ps + lib.dff_setup_ps);
}

TEST(Timing, AreaModelCountsMacrosAndDffs) {
  const Library lib = Library::generic();
  Netlist nl("t");
  const NetId q = nl.dff("r", false);
  nl.connect_dff(q, nl.const0());
  nl.add_memory("m", 64, 20);
  nl.add_output("q", {q});
  const double area = lib.area_of(nl);
  EXPECT_NEAR(area,
              lib.dff_area_ge + lib.mem_area_overhead_ge +
                  64 * 20 * lib.mem_area_per_bit_ge,
              1e-9);
}

TEST(Timing, FormatReportMentionsKeyNumbers) {
  const Library lib = Library::generic();
  const TimingReport r = analyze_timing(counter_netlist(8), lib);
  const std::string s = format_report("counter8", r);
  EXPECT_NE(s.find("counter8"), std::string::npos);
  EXPECT_NE(s.find("fmax"), std::string::npos);
  EXPECT_NE(s.find("GE"), std::string::npos);
}

}  // namespace
}  // namespace osss::gate
