// Tests for the Verilog netlist writer and the randomized equivalence
// checker (the netlist-level backend of the paper's Fig. 6).

#include <gtest/gtest.h>

#include "gate/equiv.hpp"
#include "gate/lower.hpp"
#include "gate/verilog.hpp"
#include "rtl/builder.hpp"

namespace osss::gate {
namespace {

using rtl::Builder;
using rtl::Wire;

Netlist counter_netlist() {
  Builder b("counter");
  Wire en = b.input("en", 1);
  Wire q = b.reg("count", 8, rtl::Bits(8, 3));
  b.connect(q, b.add(q, b.constant(8, 1)));
  b.enable(q, en);
  b.output("count", q);
  return lower_to_gates(b.take());
}

TEST(Verilog, EmitsSelfContainedModule) {
  const std::string v = write_verilog(counter_netlist());
  EXPECT_NE(v.find("module counter ("), std::string::npos);
  EXPECT_NE(v.find("module OSSS_DFF"), std::string::npos);
  EXPECT_NE(v.find("input [0:0] en"), std::string::npos);
  EXPECT_NE(v.find("output [7:0] count"), std::string::npos);
  EXPECT_NE(v.find("OSSS_XOR2"), std::string::npos);  // adder bits
  EXPECT_NE(v.find(".INIT(1'b1)"), std::string::npos);  // init 3 = 0b11
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, MemoriesBecomeBehaviouralArrays) {
  Builder b("m");
  Wire addr = b.input("addr", 3);
  Wire data = b.input("data", 4);
  Wire en = b.input("en", 1);
  rtl::MemHandle mem = b.memory("ram", 8, 4);
  b.mem_write(mem, addr, data, en);
  b.output("q", b.mem_read(mem, addr));
  const std::string v = write_verilog(lower_to_gates(b.take()));
  EXPECT_NE(v.find("reg [3:0] mem0 [0:7];"), std::string::npos) << v;
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
}

TEST(Verilog, BalancedModuleKeywords) {
  const std::string v = write_verilog(counter_netlist());
  std::size_t modules = 0;
  std::size_t ends = 0;
  for (std::size_t pos = v.find("module "); pos != std::string::npos;
       pos = v.find("module ", pos + 1)) {
    if (pos == 0 || v[pos - 1] != 'd') ++modules;  // not "endmodule "
  }
  for (std::size_t pos = v.find("endmodule"); pos != std::string::npos;
       pos = v.find("endmodule", pos + 1))
    ++ends;
  EXPECT_EQ(modules, ends);
  EXPECT_GE(modules, 11u);  // 10 library cells + the design
}

TEST(Equiv, IdenticalNetlistsAreEquivalent) {
  const EquivResult r = check_equivalence(counter_netlist(),
                                          counter_netlist(), 4, 64);
  EXPECT_TRUE(r) << r.counterexample;
  EXPECT_EQ(r.cycles_checked, 4u * 64u);
}

TEST(Equiv, DifferentBehaviourDetected) {
  Builder b("counter");
  Wire en = b.input("en", 1);
  Wire q = b.reg("count", 8, rtl::Bits(8, 3));
  b.connect(q, b.add(q, b.constant(8, 2)));  // counts by 2 instead of 1
  b.enable(q, en);
  b.output("count", q);
  const EquivResult r =
      check_equivalence(counter_netlist(), lower_to_gates(b.take()), 2, 32);
  EXPECT_FALSE(r);
  EXPECT_NE(r.counterexample.find("count"), std::string::npos);
}

TEST(Equiv, InterfaceMismatchReported) {
  Builder b("other");
  Wire a = b.input("a", 1);
  b.output("count", b.zext(a, 8));
  const EquivResult r =
      check_equivalence(counter_netlist(), lower_to_gates(b.take()), 1, 4);
  EXPECT_FALSE(r);
  EXPECT_NE(r.counterexample.find("interface mismatch"), std::string::npos);
}

TEST(Equiv, ResetStateDifferenceDetected) {
  Builder b("counter");
  Wire en = b.input("en", 1);
  Wire q = b.reg("count", 8, rtl::Bits(8, 7));  // different reset value
  b.connect(q, b.add(q, b.constant(8, 1)));
  b.enable(q, en);
  b.output("count", q);
  const EquivResult r =
      check_equivalence(counter_netlist(), lower_to_gates(b.take()), 1, 4);
  EXPECT_FALSE(r);
}

}  // namespace
}  // namespace osss::gate
