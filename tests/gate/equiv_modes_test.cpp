// Tests that randomized equivalence checking reaches the same verdict on
// every simulator engine — scalar event-driven, levelized and 64-lane
// bit-parallel — and that mixed-engine runs cross-validate the engines.

#include "gate/equiv.hpp"

#include <gtest/gtest.h>

#include "gate/lower.hpp"
#include "rtl/builder.hpp"

namespace osss::gate {
namespace {

using rtl::Builder;
using rtl::Wire;

rtl::Module xor_pipe() {
  Builder b("pipe");
  Wire a = b.input("a", 8);
  Wire x = b.input("b", 8);
  Wire q = b.reg("q", 8);
  b.connect(q, b.xor_(a, x));
  b.output("o", q);
  return b.take();
}

rtl::Module or_pipe() {  // differs from xor_pipe whenever a & b != 0
  Builder b("pipe");
  Wire a = b.input("a", 8);
  Wire x = b.input("b", 8);
  Wire q = b.reg("q", 8);
  b.connect(q, b.or_(a, x));
  b.output("o", q);
  return b.take();
}

constexpr SimMode kAllModes[] = {SimMode::kEvent, SimMode::kLevelized,
                                 SimMode::kBitParallel};

TEST(EquivModes, EquivalentPairPassesInEveryMode) {
  const Netlist a = lower_to_gates(xor_pipe());
  const Netlist b = lower_to_gates(xor_pipe());
  for (const SimMode mode : kAllModes) {
    const EquivResult r = check_equivalence(a, b, 2, 64, 5, mode);
    EXPECT_TRUE(r) << sim_mode_name(mode) << ": " << r.counterexample;
  }
}

TEST(EquivModes, InequivalentPairFailsInEveryMode) {
  const Netlist a = lower_to_gates(xor_pipe());
  const Netlist b = lower_to_gates(or_pipe());
  for (const SimMode mode : kAllModes) {
    const EquivResult r = check_equivalence(a, b, 2, 64, 5, mode);
    EXPECT_FALSE(r) << sim_mode_name(mode);
    EXPECT_NE(r.counterexample.find("output o"), std::string::npos)
        << sim_mode_name(mode) << ": " << r.counterexample;
  }
}

TEST(EquivModes, BitParallelChecks64VectorsPerCycle) {
  const Netlist a = lower_to_gates(xor_pipe());
  const Netlist b = lower_to_gates(xor_pipe());
  const EquivResult scalar =
      check_equivalence(a, b, 1, 32, 7, SimMode::kEvent);
  const EquivResult par =
      check_equivalence(a, b, 1, 32, 7, SimMode::kBitParallel);
  ASSERT_TRUE(scalar);
  ASSERT_TRUE(par);
  EXPECT_EQ(scalar.cycles_checked, 32u);
  EXPECT_EQ(par.cycles_checked, 32u * Simulator::kLanes);
}

TEST(EquivModes, MixedEnginesCrossValidateOneNetlist) {
  const Netlist nl = lower_to_gates(xor_pipe());
  for (const SimMode mode_b : {SimMode::kLevelized, SimMode::kBitParallel}) {
    EquivOptions opt;
    opt.sequences = 2;
    opt.cycles = 64;
    opt.mode_a = SimMode::kEvent;
    opt.mode_b = mode_b;
    const EquivResult r = check_equivalence(nl, nl, opt);
    EXPECT_TRUE(r) << sim_mode_name(mode_b) << ": " << r.counterexample;
  }
}

TEST(EquivModes, InterfaceMismatchReportedInEveryMode) {
  Builder b("other");
  b.output("o", b.input("a", 4));
  const Netlist narrow = lower_to_gates(b.take());
  const Netlist pipe = lower_to_gates(xor_pipe());
  for (const SimMode mode : kAllModes) {
    const EquivResult r = check_equivalence(pipe, narrow, 1, 4, 1, mode);
    EXPECT_FALSE(r);
    EXPECT_NE(r.counterexample.find("interface mismatch"), std::string::npos);
  }
}

}  // namespace
}  // namespace osss::gate
