// testutil.hpp — shared fixtures for the test suite.

#pragma once

#include <memory>
#include <string>

#include "meta/class_desc.hpp"

namespace osss::testutil {

/// The paper's SyncRegister<REGSIZE, RESETVALUE> as the analyzer sees it:
/// a shift register with reset value, LSB-in Write and rising-edge detect
/// at a fixed index.
inline meta::ClassDesc make_sync_register(unsigned regsize,
                                          std::uint64_t resetvalue) {
  using namespace meta;
  ClassDesc c("SyncRegister_" + std::to_string(regsize) + "_" +
              std::to_string(resetvalue));
  c.add_member("RegValue", regsize);

  MethodDesc ctor;
  ctor.name = "__ctor__";
  ctor.body = {assign_member("RegValue", constant(regsize, resetvalue))};
  c.add_method(std::move(ctor));

  MethodDesc reset;
  reset.name = "Reset";
  reset.body = {assign_member("RegValue", constant(regsize, resetvalue))};
  c.add_method(std::move(reset));

  MethodDesc write;
  write.name = "Write";
  write.params = {{"NewValue", 1}};
  if (regsize > 1) {
    write.body = {assign_member(
        "RegValue", concat({slice(member("RegValue", regsize), regsize - 2, 0),
                            param("NewValue", 1)}))};
  } else {
    write.body = {assign_member("RegValue", param("NewValue", 1))};
  }
  c.add_method(std::move(write));

  MethodDesc rising;  // newest sample high, previous low
  rising.name = "RisingEdge";
  rising.return_width = 1;
  rising.is_const = true;
  rising.body = {return_stmt(band(slice(member("RegValue", regsize), 0, 0),
                                  bnot(slice(member("RegValue", regsize), 1,
                                             1))))};
  c.add_method(std::move(rising));
  return c;
}

/// A small accumulator class used by the shared-object tests.
inline meta::ClassPtr make_counter_class(unsigned width) {
  using namespace meta;
  auto c = std::make_shared<ClassDesc>("Counter" + std::to_string(width));
  c->add_member("value", width);

  MethodDesc add;
  add.name = "Add";
  add.params = {{"d", width}};
  add.body = {assign_member("value",
                            meta::add(member("value", width),
                                      param("d", width)))};
  c->add_method(std::move(add));

  MethodDesc get;
  get.name = "Get";
  get.return_width = width;
  get.is_const = true;
  get.body = {return_stmt(member("value", width))};
  c->add_method(std::move(get));

  MethodDesc clear;
  clear.name = "Clear";
  clear.body = {assign_member("value", constant(width, 0))};
  c->add_method(std::move(clear));
  return c;
}

}  // namespace osss::testutil
