// The analyzer gate over the evaluation designs: every ExpoCU component of
// both flows must lint free of error-severity findings at RTL and at gate
// level (the acceptance bar CI enforces through tools/osss-lint as well).

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "expocu/flows.hpp"
#include "gate/lower.hpp"
#include "lint/lint.hpp"
#include "rtl/sim.hpp"

namespace osss::expocu {
namespace {

void expect_flow_error_free(const std::vector<FlowComponent>& flow,
                            const char* flow_name) {
  ASSERT_EQ(flow.size(), 6u);
  for (const FlowComponent& c : flow) {
    const lint::Report rtl_rep = lint::lint_module(c.module);
    EXPECT_TRUE(rtl_rep.clean())
        << flow_name << "/" << c.name << " [rtl]:\n" << rtl_rep.text();
    const gate::Netlist nl = gate::lower_to_gates(c.module);
    const lint::Report gate_rep = lint::lint_netlist(nl);
    EXPECT_TRUE(gate_rep.clean())
        << flow_name << "/" << c.name << " [gate]:\n" << gate_rep.text();
    // Swept netlists must carry no dead cells either.
    EXPECT_FALSE(gate_rep.has("GATE-004"))
        << flow_name << "/" << c.name << ":\n" << gate_rep.text();
  }
}

TEST(ExpoCuLint, OsssFlowComponentsAreErrorFree) {
  expect_flow_error_free(build_osss_flow(), "osss");
}

TEST(ExpoCuLint, VhdlFlowComponentsAreErrorFree) {
  expect_flow_error_free(build_vhdl_flow(), "vhdl");
}

// The dataflow rules (RTL-010..013) must stay silent on the evaluation
// designs — they are clean by construction — and every RTL-014 per-bit
// stuck-register claim must survive a concrete random-stimulus run: a
// claimed bit that ever leaves its reset value is a false positive.
TEST(ExpoCuLint, DataflowRulesHaveNoFalsePositives) {
  std::mt19937_64 rng(0x5eed);
  for (const auto& [flow, flow_name] :
       {std::pair{build_osss_flow(), "osss"},
        std::pair{build_vhdl_flow(), "vhdl"}}) {
    for (const FlowComponent& c : flow) {
      const lint::Report r = lint::lint_module(c.module);
      for (const char* id : {"RTL-010", "RTL-011", "RTL-012", "RTL-013"})
        EXPECT_FALSE(r.has(id))
            << flow_name << "/" << c.name << ":\n" << r.text();

      const auto claims = r.by_rule("RTL-014");
      if (claims.empty()) continue;
      rtl::Simulator sim(c.module);
      for (unsigned cycle = 0; cycle < 256; ++cycle) {
        for (const auto& in : c.module.inputs())
          sim.set_input(in.name, rng());
        sim.step();
        for (const lint::Diagnostic& d : claims) {
          const auto& reg =
              c.module.registers()[static_cast<std::size_t>(d.index)];
          const sysc::Bits q = sim.get(reg.q);
          // Note format: "stuck bits: B=V B=V ..." (ours; stable).
          std::istringstream note(d.note.substr(d.note.find(':') + 1));
          std::string pair;
          while (note >> pair) {
            const auto eq = pair.find('=');
            const unsigned bit = std::stoul(pair.substr(0, eq));
            const bool val = pair.substr(eq + 1) == "1";
            EXPECT_EQ(q.bit(bit), val)
                << flow_name << "/" << c.name << " reg '" << reg.name
                << "' bit " << bit << " toggled at cycle " << cycle;
          }
        }
      }
    }
  }
}

TEST(ExpoCuLint, IpIntegratedParamCalcIsErrorFree) {
  const lint::Report r = lint::lint_netlist(param_calc_vhdl_with_ip());
  EXPECT_TRUE(r.clean()) << r.text();
}

}  // namespace
}  // namespace osss::expocu
