// The analyzer gate over the evaluation designs: every ExpoCU component of
// both flows must lint free of error-severity findings at RTL and at gate
// level (the acceptance bar CI enforces through tools/osss-lint as well).

#include <gtest/gtest.h>

#include "expocu/flows.hpp"
#include "gate/lower.hpp"
#include "lint/lint.hpp"

namespace osss::expocu {
namespace {

void expect_flow_error_free(const std::vector<FlowComponent>& flow,
                            const char* flow_name) {
  ASSERT_EQ(flow.size(), 6u);
  for (const FlowComponent& c : flow) {
    const lint::Report rtl_rep = lint::lint_module(c.module);
    EXPECT_TRUE(rtl_rep.clean())
        << flow_name << "/" << c.name << " [rtl]:\n" << rtl_rep.text();
    const gate::Netlist nl = gate::lower_to_gates(c.module);
    const lint::Report gate_rep = lint::lint_netlist(nl);
    EXPECT_TRUE(gate_rep.clean())
        << flow_name << "/" << c.name << " [gate]:\n" << gate_rep.text();
    // Swept netlists must carry no dead cells either.
    EXPECT_FALSE(gate_rep.has("GATE-004"))
        << flow_name << "/" << c.name << ":\n" << gate_rep.text();
  }
}

TEST(ExpoCuLint, OsssFlowComponentsAreErrorFree) {
  expect_flow_error_free(build_osss_flow(), "osss");
}

TEST(ExpoCuLint, VhdlFlowComponentsAreErrorFree) {
  expect_flow_error_free(build_vhdl_flow(), "vhdl");
}

TEST(ExpoCuLint, IpIntegratedParamCalcIsErrorFree) {
  const lint::Report r = lint::lint_netlist(param_calc_vhdl_with_ip());
  EXPECT_TRUE(r.clean()) << r.text();
}

}  // namespace
}  // namespace osss::expocu
