// Tests for the diagnostic framework: registry integrity, report
// counting/queries, reporter output, suppression plumbing.

#include "lint/diag.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

namespace osss::lint {
namespace {

TEST(DiagRegistry, EveryRuleHasUniqueIdAndKnownPack) {
  std::set<std::string> ids;
  for (const RuleInfo& r : rule_registry()) {
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate rule id " << r.id;
    const std::string pack = r.pack;
    EXPECT_TRUE(pack == "rtl" || pack == "gate" || pack == "kernel" ||
                pack == "opt")
        << r.id;
    EXPECT_NE(std::string(r.title), "");
    // --explain and docs/lint-rules.md render from the registry: every
    // rule needs a real description.
    EXPECT_GE(std::string(r.description).size(), 40u) << r.id;
  }
  // The full rule set this PR ships; additions only append.
  for (const char* id :
       {"RTL-001", "RTL-002", "RTL-003", "RTL-004", "RTL-005", "RTL-006",
        "RTL-007", "RTL-008", "RTL-009", "RTL-010", "RTL-011", "RTL-012",
        "RTL-013", "RTL-014", "GATE-001", "GATE-002", "GATE-003", "GATE-004",
        "GATE-005", "RACE-001", "RACE-002", "RACE-003", "OPT-001", "OPT-002"})
    EXPECT_NE(find_rule(id), nullptr) << id;
  EXPECT_EQ(rule_registry().size(), 24u);
  EXPECT_EQ(find_rule("RTL-999"), nullptr);
}

TEST(DiagRegistry, DefaultSeveritiesMatchSpec) {
  EXPECT_EQ(find_rule("RTL-001")->default_severity, Severity::kError);
  EXPECT_EQ(find_rule("RTL-002")->default_severity, Severity::kError);
  EXPECT_EQ(find_rule("RTL-003")->default_severity, Severity::kWarning);
  EXPECT_EQ(find_rule("GATE-001")->default_severity, Severity::kError);
  EXPECT_EQ(find_rule("GATE-003")->default_severity, Severity::kError);
  EXPECT_EQ(find_rule("GATE-005")->default_severity, Severity::kInfo);
  EXPECT_EQ(find_rule("RACE-001")->default_severity, Severity::kError);
  EXPECT_EQ(find_rule("RACE-003")->default_severity, Severity::kInfo);
}

Diagnostic make(const char* rule, Severity sev, const char* obj) {
  Diagnostic d;
  d.rule = rule;
  d.severity = sev;
  d.source = "unit";
  d.object = obj;
  d.message = "something happened";
  return d;
}

TEST(DiagReport, CountsAndQueries) {
  Report r;
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.clean());
  r.add(make("RTL-001", Severity::kError, "%3"));
  r.add(make("RTL-003", Severity::kWarning, "%5"));
  r.add(make("RTL-003", Severity::kWarning, "%9"));
  r.add(make("GATE-005", Severity::kInfo, "netlist"));
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.error_count(), 1u);
  EXPECT_EQ(r.warning_count(), 2u);
  EXPECT_EQ(r.count(Severity::kInfo), 1u);
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(r.has("RTL-001"));
  EXPECT_FALSE(r.has("RTL-002"));
  EXPECT_EQ(r.by_rule("RTL-003").size(), 2u);

  Report merged;
  merged.merge(r);
  merged.merge(r);
  EXPECT_EQ(merged.size(), 8u);
}

TEST(DiagReport, TextReporterMentionsRuleSeverityAndObject) {
  Report r;
  Diagnostic d = make("RTL-001", Severity::kError, "%12");
  d.note = "%12 -> %13 -> %12";
  r.add(d);
  const std::string t = r.text();
  EXPECT_NE(t.find("RTL-001"), std::string::npos);
  EXPECT_NE(t.find("error"), std::string::npos);
  EXPECT_NE(t.find("%12"), std::string::npos);
  EXPECT_NE(t.find("1 error"), std::string::npos);
}

TEST(DiagReport, JsonReporterIsWellFormedAndEscaped) {
  Report r;
  Diagnostic d = make("GATE-003", Severity::kError, "n4 'weird\"name'");
  d.message = "line1\nline2";
  r.add(d);
  const std::string j = r.json();
  EXPECT_NE(j.find("\"rule\":\"GATE-003\""), std::string::npos);
  EXPECT_NE(j.find("\\\"name"), std::string::npos);  // quote escaped
  EXPECT_NE(j.find("\\n"), std::string::npos);   // newline escaped
  EXPECT_EQ(j.find('\n'), std::string::npos);    // reporter stays one line
  EXPECT_NE(j.find("\"errors\":1"), std::string::npos);
}

TEST(DiagReport, JsonEscapeReplacesInvalidUtf8AndKeepsValidSequences) {
  // Adversarial object names round-tripped through Report::json(): the
  // emitted document must stay valid UTF-8 JSON whatever bytes leak in.
  const std::string valid_utf8 = "sigma \xcf\x83, snowman \xe2\x98\x83";
  const std::string bad = std::string("truncated \xe2\x98") + " lone \x80" +
                          " overlong \xc0\xaf" + " surrogate \xed\xa0\x80" +
                          " beyond \xf4\x90\x80\x80" + " ctl \x01";
  Report r;
  Diagnostic d = make("RTL-001", Severity::kError, valid_utf8.c_str());
  d.message = bad;
  r.add(d);
  const std::string j = r.json();

  // Well-formed multi-byte sequences pass through byte-identically...
  EXPECT_NE(j.find(valid_utf8), std::string::npos);
  // ...every invalid byte became U+FFFD (one replacement per byte: the
  // truncated two-byte prefix yields two), controls became \u escapes...
  EXPECT_NE(j.find("truncated \xef\xbf\xbd\xef\xbf\xbd lone \xef\xbf\xbd"),
            std::string::npos);
  EXPECT_NE(j.find("ctl \\u0001"), std::string::npos);
  for (const char* raw : {"\xe2\x98 ", "\xc0", "\xed\xa0", "\xf4\x90"})
    EXPECT_EQ(j.find(raw), std::string::npos) << "raw bytes leaked: " << raw;
  // ...and the whole document decodes as UTF-8 (any decoder would do; this
  // reuses the escaper's own validator on the final byte stream, which
  // rejects exactly what RFC 3629 rejects).
  for (std::size_t i = 0; i < j.size();) {
    unsigned char c = static_cast<unsigned char>(j[i]);
    if (c < 0x80) { ++i; continue; }
    std::size_t len = (c & 0xe0) == 0xc0 ? 2 : (c & 0xf0) == 0xe0 ? 3 : 4;
    ASSERT_LE(i + len, j.size()) << "truncated sequence at " << i;
    for (std::size_t k = 1; k < len; ++k)
      ASSERT_EQ(static_cast<unsigned char>(j[i + k]) & 0xc0, 0x80)
          << "bad continuation at " << i + k;
    i += len;
  }
}

TEST(DiagReport, SarifReporterListsRulesResultsAndLocations) {
  Report r;
  Diagnostic d = make("RTL-001", Severity::kError, "%12");
  d.note = "%12 -> %13 -> %12";
  r.add(d);
  r.add(make("GATE-005", Severity::kInfo, "netlist"));
  const std::string s = to_sarif(r);

  EXPECT_NE(s.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"osss-lint\""), std::string::npos);
  // Referenced rules carry registry metadata, in registry order.
  EXPECT_NE(s.find("\"id\":\"RTL-001\""), std::string::npos);
  EXPECT_NE(s.find("\"id\":\"GATE-005\""), std::string::npos);
  EXPECT_LT(s.find("\"id\":\"RTL-001\""), s.find("\"id\":\"GATE-005\""));
  EXPECT_NE(s.find(find_rule("RTL-001")->title), std::string::npos);
  // Results: level mapping (kInfo -> "note"), logical location, note.
  EXPECT_NE(s.find("\"ruleId\":\"RTL-001\""), std::string::npos);
  EXPECT_NE(s.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(s.find("\"level\":\"note\""), std::string::npos);
  EXPECT_EQ(s.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(s.find("\"fullyQualifiedName\":\"unit.%12\""), std::string::npos);
  EXPECT_NE(s.find("%12 -> %13 -> %12"), std::string::npos);
  // A rule never reported stays out of the rules array.
  EXPECT_EQ(s.find("\"id\":\"RTL-002\""), std::string::npos);
}

TEST(DiagRegistry, MarkdownReferenceCoversEveryRule) {
  const std::string md = rules_markdown();
  for (const RuleInfo& r : rule_registry()) {
    EXPECT_NE(md.find(std::string("### ") + r.id), std::string::npos) << r.id;
    EXPECT_NE(md.find(r.title), std::string::npos) << r.id;
    EXPECT_NE(md.find(r.description), std::string::npos) << r.id;
  }
}

TEST(DiagRegistry, CommittedRuleDocsMatchTheRegistry) {
  // docs/lint-rules.md is generated (`osss-lint --rules-doc`); regenerate
  // it whenever a rule is added or reworded, or this drifts.
  std::ifstream f(std::string(OSSS_SOURCE_DIR) + "/docs/lint-rules.md",
                  std::ios::binary);
  ASSERT_TRUE(f.is_open()) << "docs/lint-rules.md missing";
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), rules_markdown())
      << "docs/lint-rules.md is stale; regenerate with "
         "`osss-lint --rules-doc > docs/lint-rules.md`";
}

TEST(DiagOptions, SuppressionLooksUpRuleIds) {
  Options opt;
  opt.suppress.insert("RTL-003");
  EXPECT_TRUE(opt.suppressed("RTL-003"));
  EXPECT_FALSE(opt.suppressed("RTL-001"));
}

}  // namespace
}  // namespace osss::lint
