// Tests for the diagnostic framework: registry integrity, report
// counting/queries, reporter output, suppression plumbing.

#include "lint/diag.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace osss::lint {
namespace {

TEST(DiagRegistry, EveryRuleHasUniqueIdAndKnownPack) {
  std::set<std::string> ids;
  for (const RuleInfo& r : rule_registry()) {
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate rule id " << r.id;
    const std::string pack = r.pack;
    EXPECT_TRUE(pack == "rtl" || pack == "gate" || pack == "kernel" ||
                pack == "opt")
        << r.id;
    EXPECT_NE(std::string(r.title), "");
  }
  // The full rule set this PR ships; additions only append.
  for (const char* id :
       {"RTL-001", "RTL-002", "RTL-003", "RTL-004", "RTL-005", "RTL-006",
        "RTL-007", "RTL-008", "RTL-009", "GATE-001", "GATE-002", "GATE-003",
        "GATE-004", "GATE-005", "RACE-001", "RACE-002", "RACE-003", "OPT-001",
        "OPT-002"})
    EXPECT_NE(find_rule(id), nullptr) << id;
  EXPECT_EQ(rule_registry().size(), 19u);
  EXPECT_EQ(find_rule("RTL-999"), nullptr);
}

TEST(DiagRegistry, DefaultSeveritiesMatchSpec) {
  EXPECT_EQ(find_rule("RTL-001")->default_severity, Severity::kError);
  EXPECT_EQ(find_rule("RTL-002")->default_severity, Severity::kError);
  EXPECT_EQ(find_rule("RTL-003")->default_severity, Severity::kWarning);
  EXPECT_EQ(find_rule("GATE-001")->default_severity, Severity::kError);
  EXPECT_EQ(find_rule("GATE-003")->default_severity, Severity::kError);
  EXPECT_EQ(find_rule("GATE-005")->default_severity, Severity::kInfo);
  EXPECT_EQ(find_rule("RACE-001")->default_severity, Severity::kError);
  EXPECT_EQ(find_rule("RACE-003")->default_severity, Severity::kInfo);
}

Diagnostic make(const char* rule, Severity sev, const char* obj) {
  Diagnostic d;
  d.rule = rule;
  d.severity = sev;
  d.source = "unit";
  d.object = obj;
  d.message = "something happened";
  return d;
}

TEST(DiagReport, CountsAndQueries) {
  Report r;
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.clean());
  r.add(make("RTL-001", Severity::kError, "%3"));
  r.add(make("RTL-003", Severity::kWarning, "%5"));
  r.add(make("RTL-003", Severity::kWarning, "%9"));
  r.add(make("GATE-005", Severity::kInfo, "netlist"));
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.error_count(), 1u);
  EXPECT_EQ(r.warning_count(), 2u);
  EXPECT_EQ(r.count(Severity::kInfo), 1u);
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(r.has("RTL-001"));
  EXPECT_FALSE(r.has("RTL-002"));
  EXPECT_EQ(r.by_rule("RTL-003").size(), 2u);

  Report merged;
  merged.merge(r);
  merged.merge(r);
  EXPECT_EQ(merged.size(), 8u);
}

TEST(DiagReport, TextReporterMentionsRuleSeverityAndObject) {
  Report r;
  Diagnostic d = make("RTL-001", Severity::kError, "%12");
  d.note = "%12 -> %13 -> %12";
  r.add(d);
  const std::string t = r.text();
  EXPECT_NE(t.find("RTL-001"), std::string::npos);
  EXPECT_NE(t.find("error"), std::string::npos);
  EXPECT_NE(t.find("%12"), std::string::npos);
  EXPECT_NE(t.find("1 error"), std::string::npos);
}

TEST(DiagReport, JsonReporterIsWellFormedAndEscaped) {
  Report r;
  Diagnostic d = make("GATE-003", Severity::kError, "n4 'weird\"name'");
  d.message = "line1\nline2";
  r.add(d);
  const std::string j = r.json();
  EXPECT_NE(j.find("\"rule\":\"GATE-003\""), std::string::npos);
  EXPECT_NE(j.find("\\\"name"), std::string::npos);  // quote escaped
  EXPECT_NE(j.find("\\n"), std::string::npos);   // newline escaped
  EXPECT_EQ(j.find('\n'), std::string::npos);    // reporter stays one line
  EXPECT_NE(j.find("\"errors\":1"), std::string::npos);
}

TEST(DiagOptions, SuppressionLooksUpRuleIds) {
  Options opt;
  opt.suppress.insert("RTL-003");
  EXPECT_TRUE(opt.suppressed("RTL-003"));
  EXPECT_FALSE(opt.suppressed("RTL-001"));
}

}  // namespace
}  // namespace osss::lint
