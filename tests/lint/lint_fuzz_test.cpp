// Fuzz-grade consistency checks between the linter and the execution
// engines:
//
//   * 500 random modules lint free of error-severity findings (the
//     generator only produces buildable designs — anything else is a
//     generator or linter bug);
//   * the RTL-003 dead-node set agrees exactly with the tape compiler's
//     pruner on every one of those modules (same count, and every flagged
//     node lacks an arena slot while every slotted node is unflagged);
//   * nodes lint calls dead are simulation-unobservable: the tape engine,
//     which drops them entirely, stays bit-identical to the interpreter,
//     which still evaluates them;
//   * a dead gate-level cell can be mutated without any observable output
//     change, while mutating a live cell is caught (positive control).

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "gate/netlist.hpp"
#include "lint/lint.hpp"
#include "rtl/tape.hpp"
#include "verify/cosim.hpp"
#include "verify/random_module.hpp"
#include "verify/stimgen.hpp"

namespace osss::lint {
namespace {

verify::RandomModuleOptions corpus_options(unsigned i) {
  verify::RandomModuleOptions opt;
  opt.ops = 15 + i % 40;
  opt.with_memory = i % 3 == 0;
  opt.with_shared_mux = i % 5 == 0;
  opt.with_polymorphic = i % 7 == 0;
  return opt;
}

TEST(LintFuzz, FiveHundredRandomModulesLintErrorFreeAndAgreeWithPruner) {
  const std::uint64_t seed = verify::env_seed(97310);
  std::mt19937_64 rng(seed);
  std::size_t total_dead = 0;
  for (unsigned i = 0; i < 500; ++i) {
    const rtl::Module m = verify::random_module(rng, corpus_options(i));
    const Report r = lint_module(m);
    ASSERT_TRUE(r.clean())
        << "module " << i << " seed " << seed << ":\n" << r.text();

    const auto diags = r.by_rule("RTL-003");
    const auto p = rtl::tape::Program::compile(m);
    ASSERT_EQ(diags.size(), p.stats.pruned)
        << "module " << i << " seed " << seed << ":\n" << r.text();
    total_dead += diags.size();
    std::vector<bool> flagged(m.node_count(), false);
    for (const auto& d : diags) {
      ASSERT_GE(d.index, 0);
      const auto id = static_cast<rtl::NodeId>(d.index);
      ASSERT_LT(id, m.node_count());
      flagged[id] = true;
      // Lint-dead -> the compiler gave it no arena slot.
      EXPECT_EQ(p.node_slot[id], rtl::tape::kNoSlot) << "module " << i;
    }
    for (rtl::NodeId id = 0; id < m.node_count(); ++id) {
      if (p.node_slot[id] != rtl::tape::kNoSlot) {
        EXPECT_FALSE(flagged[id]) << "module " << i << " node " << id;
      }
    }
  }
  // The corpus is expected to actually exercise the dead-node rule.
  EXPECT_GT(total_dead, 0u);
}

TEST(LintFuzz, LintDeadNodesAreSimulationUnobservable) {
  // The tape engine erases everything RTL-003 flags (previous test); if a
  // flagged node could influence an output, interpreter and tape would
  // diverge.  Differentially simulate modules that have dead nodes.
  const std::uint64_t seed = verify::env_seed(41523);
  std::mt19937_64 rng(seed);
  unsigned exercised = 0;
  for (unsigned i = 0; exercised < 10 && i < 200; ++i) {
    const rtl::Module m = verify::random_module(rng, corpus_options(i));
    const Report r = lint_module(m);
    if (!r.has("RTL-003")) continue;
    ++exercised;
    verify::CoSim cs;
    cs.add(std::make_unique<verify::RtlModel>(m));  // interpreter: runs all
    cs.add(std::make_unique<verify::RtlModel>(m, rtl::SimMode::kTape));
    cs.declare_io(m);
    verify::StimGen gen(seed + i);
    cs.declare_stimulus(gen);
    const verify::RunResult res = cs.run(gen, 100, 2);
    EXPECT_TRUE(res.ok) << "module " << i << " seed " << seed << "\n"
                        << res.mismatch.describe(cs.inputs(), false);
  }
  EXPECT_EQ(exercised, 10u);
}

TEST(LintFuzz, DeadCellMutationIsUnobservableLiveCellMutationIsNot) {
  // Hand-built netlist with one dead AND gate next to live logic.
  auto build = [] {
    gate::Netlist nl("mutant");
    const auto a = nl.add_input("a", 2);
    const gate::NetId live = nl.xor2(a[0], a[1]);
    const gate::NetId dead = nl.and2(a[0], a[1]);
    nl.add_output("o", {live});
    return std::tuple{std::move(nl), live, dead};
  };

  auto [reference, live, dead] = build();
  const Report r = lint_netlist(reference);
  ASSERT_TRUE(r.has("GATE-004")) << r.text();
  ASSERT_EQ(r.by_rule("GATE-004")[0].index, static_cast<std::int64_t>(dead));

  auto run_diff = [&](gate::NetId victim, gate::CellKind kind) {
    auto [mutant, l2, d2] = build();
    (void)l2;
    (void)d2;
    mutant.mutate_cell(victim, kind);
    verify::CoSim cs;
    auto [ref2, l3, d3] = build();
    (void)l3;
    (void)d3;
    cs.add(std::make_unique<verify::GateModel>(std::move(ref2)));
    cs.add(std::make_unique<verify::GateModel>(std::move(mutant)));
    cs.add_input("a", 2);
    cs.add_output("o", 1);
    verify::StimGen gen(7);
    cs.declare_stimulus(gen);
    return cs.run(gen, 64, 1);
  };

  // Mutating the cell lint called dead never changes any output...
  EXPECT_TRUE(run_diff(dead, gate::CellKind::kOr2).ok);
  // ...while the same mutation on the live cell is observable.
  EXPECT_FALSE(run_diff(live, gate::CellKind::kXnor2).ok);
}

}  // namespace
}  // namespace osss::lint
