// Tests for the RTL-IR lint pack: every rule is provoked by a module built
// to trigger exactly it, and the diagnostic carries the expected stable ID.
// Malformed shapes the Builder refuses to construct (cycles, width breaks)
// are inflicted through ModuleSurgeon.

#include "lint/rtl_rules.hpp"

#include <gtest/gtest.h>

#include "rtl/builder.hpp"
#include "rtl/tape.hpp"

namespace osss::rtl {
namespace {

using lint::Options;
using lint::Report;
using lint::Severity;

TEST(RtlLint, CleanCounterHasNoFindings) {
  Builder b("counter");
  Wire q = b.reg("q", 4, 0);
  b.connect(q, b.add(q, b.constant(4, 1)));
  b.output("count", q);
  const Module m = b.take();
  const Report r = lint::lint_module(m);
  EXPECT_TRUE(r.clean()) << r.text();
  EXPECT_EQ(r.warning_count(), 0u) << r.text();
}

TEST(RtlLint, CombinationalCycleIsRtl001) {
  Builder b("loopy");
  Wire a = b.input("a", 4);
  Wire x = b.and_(a, a);
  Wire y = b.or_(x, a);
  b.output("o", y);
  Module m = b.take();
  // Rewire the AND to consume the OR downstream of it: x -> y -> x.
  ModuleSurgeon::nodes(m)[x.id].ins[1] = y.id;
  const Report r = lint::lint_module(m);
  ASSERT_TRUE(r.has("RTL-001")) << r.text();
  const auto diags = r.by_rule("RTL-001");
  EXPECT_EQ(diags[0].severity, Severity::kError);
  // The reported path names both cycle members.
  EXPECT_NE(diags[0].note.find("%" + std::to_string(x.id)),
            std::string::npos);
  EXPECT_NE(diags[0].note.find("%" + std::to_string(y.id)),
            std::string::npos);
}

TEST(RtlLint, WidthMismatchIsRtl002) {
  Builder b("widths");
  Wire a = b.input("a", 4);
  Wire x = b.and_(a, a);
  b.output("o", x);
  Module m = b.take();
  ModuleSurgeon::nodes(m)[x.id].width = 7;  // and must match operand width
  const Report r = lint::lint_module(m);
  ASSERT_TRUE(r.has("RTL-002")) << r.text();
  EXPECT_EQ(r.by_rule("RTL-002")[0].severity, Severity::kError);
}

TEST(RtlLint, DeadNodeIsRtl003AndAgreesWithTapePruner) {
  Builder b("deadwood");
  Wire a = b.input("a", 8);
  Wire x = b.input("b", 8);
  Wire live = b.xor_(a, x);
  Wire dead = b.mul(b.add(a, x), x);  // feeds nothing
  b.output("o", live);
  const Module m = b.take();
  const Report r = lint::lint_module(m);
  ASSERT_TRUE(r.has("RTL-003")) << r.text();
  EXPECT_TRUE(r.clean());
  const auto diags = r.by_rule("RTL-003");
  // Exactly the tape compiler's pruned set, by construction.
  const auto p = tape::Program::compile(m);
  EXPECT_EQ(diags.size(), p.stats.pruned);
  bool flagged_mul = false;
  for (const auto& d : diags) {
    ASSERT_GE(d.index, 0);
    EXPECT_EQ(p.node_slot[static_cast<NodeId>(d.index)], tape::kNoSlot);
    if (d.index == dead.id) flagged_mul = true;
  }
  EXPECT_TRUE(flagged_mul);
  // And no live node is ever flagged (live = it has an arena slot).
  for (NodeId id = 0; id < m.node_count(); ++id) {
    if (p.node_slot[id] == tape::kNoSlot) continue;
    for (const auto& d : diags) EXPECT_NE(d.index, id);
  }
}

TEST(RtlLint, RegisterWithoutResetIsRtl004) {
  Builder b("noreset");
  Wire q = b.reg("q", 4, 0);
  b.connect(q, b.add(q, b.constant(4, 1)));
  b.output("o", q);
  Module m = b.take();
  ModuleSurgeon::registers(m)[0].init = Bits();  // strip the reset value
  const Report r = lint::lint_module(m);
  ASSERT_TRUE(r.has("RTL-004")) << r.text();
  EXPECT_EQ(r.by_rule("RTL-004")[0].severity, Severity::kWarning);
  EXPECT_TRUE(r.clean()) << r.text();  // a missing reset is not an error
}

TEST(RtlLint, ConstantOutputIsRtl005) {
  Builder b("constout");
  Wire a = b.input("a", 8);
  b.output("pass", a);  // keeps the input live
  // The folder propagates constants bottom-up: 0x55 & 0x33 folds to 0x11.
  b.output("o", b.and_(b.constant(8, 0x55), b.constant(8, 0x33)));
  const Module m = b.take();
  const Report r = lint::lint_module(m);
  ASSERT_TRUE(r.has("RTL-005")) << r.text();
  const auto d = r.by_rule("RTL-005")[0];
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.object, "o");
}

// A two-bit FSM whose third encodable state is a declared transition target
// but unreachable: 0 -> 1 -> 1 forever; the arm guarded by state == 3 can
// never fire, so its target state 2 is unreachable and the transition dead.
Module fsm_with_dead_arm() {
  Builder b("fsm");
  Wire st = b.reg("__state", 2, 0);
  Wire go1 = b.eq(st, b.constant(2, 0));
  Wire never = b.eq(st, b.constant(2, 3));
  Wire next = b.mux(go1, b.constant(2, 1),
                    b.mux(never, b.constant(2, 2), st));
  b.connect(st, next);
  b.output("state", st);
  return b.take();
}

TEST(RtlLint, UnreachableFsmStateIsRtl006) {
  const Report r = lint::lint_module(fsm_with_dead_arm());
  ASSERT_TRUE(r.has("RTL-006")) << r.text();
  const auto d = r.by_rule("RTL-006")[0];
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.object, "__state");
  EXPECT_NE(d.note.find("2"), std::string::npos);  // names state 2
}

TEST(RtlLint, DeadFsmTransitionIsRtl007) {
  const Report r = lint::lint_module(fsm_with_dead_arm());
  ASSERT_TRUE(r.has("RTL-007")) << r.text();
  EXPECT_EQ(r.by_rule("RTL-007")[0].severity, Severity::kInfo);
}

TEST(RtlLint, ReachableFsmIsNotFlagged) {
  // 0 -> 1 -> 0 ping-pong driven by an input: everything reachable.
  Builder b("fsm_ok");
  Wire go = b.input("go", 1);
  Wire st = b.reg("__state", 1, 0);
  Wire next = b.mux(go, b.not_(st), st);
  b.connect(st, next);
  b.output("state", st);
  const Report r = lint::lint_module(b.take());
  EXPECT_FALSE(r.has("RTL-006")) << r.text();
  EXPECT_FALSE(r.has("RTL-007")) << r.text();
}

TEST(RtlLint, StuckRegisterIsRtl008) {
  Builder b("stuck");
  Wire q = b.reg("q", 4, 9);
  b.connect(q, q);  // D feeds back Q: can never change
  b.output("o", q);
  const Report r = lint::lint_module(b.take());
  ASSERT_TRUE(r.has("RTL-008")) << r.text();
  EXPECT_EQ(r.by_rule("RTL-008")[0].object, "q");
}

TEST(RtlLint, StuckByConstantZeroEnableIsRtl008) {
  Builder b("gated");
  Wire q = b.reg("q", 4, 0);
  b.connect(q, b.add(q, b.constant(4, 1)));
  b.enable(q, b.constant(1, 0));  // enable tied low
  b.output("o", q);
  const Report r = lint::lint_module(b.take());
  ASSERT_TRUE(r.has("RTL-008")) << r.text();
}

TEST(RtlLint, OverShiftIsRtl009) {
  Builder b("shifty");
  Wire a = b.input("a", 8);
  b.output("o", b.shli(a, 8));  // shifts every bit out
  const Report r = lint::lint_module(b.take());
  ASSERT_TRUE(r.has("RTL-009")) << r.text();
  EXPECT_EQ(r.by_rule("RTL-009")[0].severity, Severity::kInfo);
}

TEST(RtlLint, SuppressionSilencesARule) {
  Builder b("deadwood2");
  Wire a = b.input("a", 8);
  Wire dead = b.add(a, a);
  (void)dead;
  b.output("o", a);
  Options opt;
  opt.suppress.insert("RTL-003");
  const Report r = lint::lint_module(b.take(), opt);
  EXPECT_FALSE(r.has("RTL-003")) << r.text();
}

// --- dataflow rules (RTL-010..014) ----------------------------------------

TEST(RtlLint, UnreachableMuxArmIsRtl010) {
  // count saturates at 8, so `count < 12` is always true and the second
  // mux's else arm can never be selected.  Plain folding cannot see this.
  Builder b("sat_mux");
  Wire count = b.reg("count", 4, 0);
  Wire lt8 = b.ult(count, b.constant(4, 8));
  b.connect(count, b.mux(lt8, b.add(count, b.constant(4, 1)), count));
  Wire sel = b.ult(count, b.constant(4, 12));
  Wire y = b.mux(sel, count, b.input("alt", 4));
  b.output("o", y);
  const Report r = lint::lint_module(b.take());
  ASSERT_TRUE(r.has("RTL-010")) << r.text();
  const auto d = r.by_rule("RTL-010")[0];
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.index, static_cast<std::int64_t>(y.id));
  EXPECT_NE(d.message.find("always 1"), std::string::npos);
  EXPECT_NE(d.message.find("else arm"), std::string::npos);
}

TEST(RtlLint, ConstantComparisonIsRtl011) {
  Builder b("sat_cmp");
  Wire count = b.reg("count", 4, 0);
  Wire lt8 = b.ult(count, b.constant(4, 8));
  b.connect(count, b.mux(lt8, b.add(count, b.constant(4, 1)), count));
  Wire never = b.ult(b.constant(4, 9), count);  // 9 < count is impossible
  b.output("flag", never);
  const Report r = lint::lint_module(b.take());
  ASSERT_TRUE(r.has("RTL-011")) << r.text();
  const auto d = r.by_rule("RTL-011")[0];
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.index, static_cast<std::int64_t>(never.id));
  EXPECT_NE(d.message.find("always false"), std::string::npos);
  // The note carries the interval evidence ([0, 8] for the counter).
  EXPECT_NE(d.note.find("[0, 8]"), std::string::npos) << d.note;
  // ... and the saturation guard itself is NOT constant: no other finding.
  EXPECT_EQ(r.by_rule("RTL-011").size(), 1u) << r.text();
}

TEST(RtlLint, TruncationDroppingSetBitsIsRtl012) {
  // (zext(x) + 8) always has bit 3 set; slicing back to 3 bits provably
  // destroys it every cycle.
  Builder b("trunc");
  Wire x = b.input("x", 3);
  Wire wide = b.add(b.zext(x, 4), b.constant(4, 8));
  Wire low = b.slice(wide, 2, 0);
  b.output("o", low);
  const Report r = lint::lint_module(b.take());
  ASSERT_TRUE(r.has("RTL-012")) << r.text();
  const auto d = r.by_rule("RTL-012")[0];
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.index, static_cast<std::int64_t>(low.id));
  EXPECT_NE(d.note.find("3"), std::string::npos);
}

TEST(RtlLint, OutOfRangeMemoryWriteIsRtl013) {
  // Address {2'b11, x} is always >= 12 but the memory has 10 rows.
  Builder b("oob_write");
  Wire x = b.input("x", 2);
  MemHandle mem = b.memory("buf", /*depth=*/10, /*data_width=*/8);
  Wire addr = b.concat({b.constant(2, 3), x});
  b.mem_write(mem, addr, b.input("d", 8), b.input("we", 1));
  b.output("q", b.mem_read(mem, b.input("raddr", 4)));
  const Report r = lint::lint_module(b.take());
  ASSERT_TRUE(r.has("RTL-013")) << r.text();
  const auto d = r.by_rule("RTL-013")[0];
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.object, "buf");
  EXPECT_NE(d.note.find("depth 10"), std::string::npos) << d.note;
}

TEST(RtlLint, StuckRegisterBitsAreRtl014) {
  // The top two bits of r are fed constant zero: per-bit stuck, even
  // though the register as a whole changes (RTL-008 cannot fire).
  Builder b("stuck_bits");
  Wire x = b.input("x", 2);
  Wire r = b.reg("r", 4, 0);
  b.connect(r, b.concat({b.constant(2, 0), x}));
  b.output("q", r);
  const Report rep = lint::lint_module(b.take());
  EXPECT_FALSE(rep.has("RTL-008")) << rep.text();
  ASSERT_TRUE(rep.has("RTL-014")) << rep.text();
  const auto d = rep.by_rule("RTL-014")[0];
  EXPECT_EQ(d.severity, Severity::kInfo);
  EXPECT_EQ(d.object, "r");
  EXPECT_NE(d.message.find("2 of 4 bits"), std::string::npos) << d.message;
  EXPECT_NE(d.note.find("2=0 3=0"), std::string::npos) << d.note;
}

TEST(RtlLint, Rtl014DefersToStructuralRtl008) {
  // A register RTL-008 already explains must not be double-reported.
  Builder b("stuck");
  Wire q = b.reg("q", 4, 9);
  b.connect(q, q);
  b.output("o", q);
  const Report r = lint::lint_module(b.take());
  ASSERT_TRUE(r.has("RTL-008")) << r.text();
  EXPECT_FALSE(r.has("RTL-014")) << r.text();
}

TEST(RtlLint, MalformedIrNeverThrows) {
  Builder b("mangled");
  Wire a = b.input("a", 4);
  Wire x = b.and_(a, a);
  b.output("o", x);
  Module m = b.take();
  auto& nodes = ModuleSurgeon::nodes(m);
  nodes[x.id].ins.push_back(kInvalidNode);  // dangling operand
  nodes[x.id].width = 0;                    // zero width on top
  ModuleSurgeon::outputs(m).push_back({"ghost", 999});
  Report r;
  EXPECT_NO_THROW(r = lint::lint_module(m));
  EXPECT_TRUE(r.has("RTL-002")) << r.text();
  EXPECT_FALSE(r.clean());
}

}  // namespace
}  // namespace osss::rtl
