// lint_golden_test.cpp — byte-stable golden output of the text reporter
// over every ExpoCU component in both flows, RTL and gate level.
//
// The lint report is part of the toolchain's user interface: CI logs are
// diffed, downstream scripts grep rule IDs, and the paper's analyzer stage
// is evaluated by exactly these findings.  Any wording tweak, new rule
// firing, or ordering change on the evaluation designs must show up here
// as a reviewable golden diff, never as silent churn.  The RTL and gate
// reporters are fully deterministic (no timestamps or wall-clock fields —
// the OPT-001 pass-statistics diagnostics, which do carry a volatile
// `wall_ms`, are deliberately not goldened), so the comparison is exact.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "expocu/flows.hpp"
#include "gate/lower.hpp"
#include "lint/lint.hpp"

namespace osss::lint {
namespace {

const std::map<std::string, std::string>& golden() {
  static const std::map<std::string, std::string> kGolden = {
    {"osss/camera_sync[rtl]", R"lint(0 diagnostics (0 errors, 0 warnings, 0 info)
)lint"},
    {"osss/camera_sync[gate]", R"lint(info[GATE-005] camera_sync.netlist: fanout histogram (max 2 at n10 'hsync[0]') (fanout 0: 2 net(s), fanout 1: 27 net(s), fanout 2: 3 net(s))
1 diagnostic (0 errors, 0 warnings, 1 info)
)lint"},
    {"osss/histogram[rtl]", R"lint(0 diagnostics (0 errors, 0 warnings, 0 info)
)lint"},
    {"osss/histogram[gate]", R"lint(warning[GATE-002] histogram.memory 'bins': 2 write ports drive one memory; simultaneous writes to the same word collide
info[GATE-005] histogram.netlist: fanout histogram (max 22 at n13 'stream_cnt[0]') (fanout 0: 5 net(s), fanout 1: 54 net(s), fanout 2: 31 net(s), fanout 3: 4 net(s), fanout 5: 1 net(s), fanout 9: 1 net(s), fanout 16: 1 net(s), fanout 17: 4 net(s), fanout 18: 2 net(s), fanout 21: 3 net(s), fanout 22: 1 net(s))
2 diagnostics (0 errors, 1 warnings, 1 info)
)lint"},
    {"osss/threshold_calc[rtl]", R"lint(info[RTL-014] threshold_calc.wsum: register 'wsum': 3 of 24 bits never toggle (stuck bits: 0=0 1=0 2=0)
1 diagnostic (0 errors, 0 warnings, 1 info)
)lint"},
    {"osss/threshold_calc[gate]", R"lint(info[GATE-005] threshold_calc.netlist: fanout histogram (max 89 at n2 'bin_valid[0]') (fanout 0: 2 net(s), fanout 1: 515 net(s), fanout 2: 317 net(s), fanout 3: 24 net(s), fanout 4: 34 net(s), fanout 5: 30 net(s), fanout 7: 1 net(s), fanout 8: 1 net(s), fanout 9: 1 net(s), fanout 10: 12 net(s), fanout 14: 1 net(s), fanout 15: 3 net(s), fanout 32: 2 net(s), fanout 74: 1 net(s), fanout 80: 1 net(s), fanout 89: 1 net(s))
1 diagnostic (0 errors, 0 warnings, 1 info)
)lint"},
    {"osss/param_calc[rtl]", R"lint(info[RTL-014] param_calc.gain: register 'gain': 2 of 8 bits never toggle (stuck bits: 0=0 1=0)
info[RTL-014] param_calc.delta: register 'delta': 2 of 16 bits never toggle (stuck bits: 14=0 15=0)
2 diagnostics (0 errors, 0 warnings, 2 info)
)lint"},
    {"osss/param_calc[gate]", R"lint(info[GATE-005] param_calc.netlist: fanout histogram (max 18 at n26 'exposure[12]') (fanout 0: 2 net(s), fanout 1: 668 net(s), fanout 2: 547 net(s), fanout 3: 27 net(s), fanout 4: 24 net(s), fanout 5: 5 net(s), fanout 6: 12 net(s), fanout 7: 1 net(s), fanout 8: 2 net(s), fanout 9: 4 net(s), fanout 10: 2 net(s), fanout 12: 1 net(s), fanout 14: 1 net(s), fanout 15: 6 net(s), fanout 16: 3 net(s), fanout 17: 12 net(s), fanout 18: 6 net(s))
1 diagnostic (0 errors, 0 warnings, 1 info)
)lint"},
    {"osss/i2c_master[rtl]", R"lint(0 diagnostics (0 errors, 0 warnings, 0 info)
)lint"},
    {"osss/i2c_master[gate]", R"lint(info[GATE-005] i2c_master.netlist: fanout histogram (max 32 at n87) (fanout 0: 2 net(s), fanout 1: 489 net(s), fanout 2: 95 net(s), fanout 3: 38 net(s), fanout 4: 40 net(s), fanout 5: 23 net(s), fanout 6: 10 net(s), fanout 7: 1 net(s), fanout 8: 3 net(s), fanout 9: 1 net(s), fanout 10: 1 net(s), fanout 11: 1 net(s), fanout 12: 1 net(s), fanout 16: 1 net(s), fanout 18: 2 net(s), fanout 25: 1 net(s), fanout 32: 1 net(s))
1 diagnostic (0 errors, 0 warnings, 1 info)
)lint"},
    {"osss/reset_ctrl[rtl]", R"lint(0 diagnostics (0 errors, 0 warnings, 0 info)
)lint"},
    {"osss/reset_ctrl[gate]", R"lint(info[GATE-005] reset_ctrl.netlist: fanout histogram (max 5 at n15) (fanout 0: 2 net(s), fanout 1: 17 net(s), fanout 2: 2 net(s), fanout 3: 3 net(s), fanout 4: 1 net(s), fanout 5: 2 net(s))
1 diagnostic (0 errors, 0 warnings, 1 info)
)lint"},
    {"vhdl/camera_sync[rtl]", R"lint(0 diagnostics (0 errors, 0 warnings, 0 info)
)lint"},
    {"vhdl/camera_sync[gate]", R"lint(info[GATE-005] camera_sync.netlist: fanout histogram (max 2 at n10 'hsync[0]') (fanout 0: 2 net(s), fanout 1: 27 net(s), fanout 2: 3 net(s))
1 diagnostic (0 errors, 0 warnings, 1 info)
)lint"},
    {"vhdl/histogram[rtl]", R"lint(0 diagnostics (0 errors, 0 warnings, 0 info)
)lint"},
    {"vhdl/histogram[gate]", R"lint(warning[GATE-002] histogram.memory 'bins': 2 write ports drive one memory; simultaneous writes to the same word collide
info[GATE-005] histogram.netlist: fanout histogram (max 22 at n13 'stream_cnt[0]') (fanout 0: 5 net(s), fanout 1: 54 net(s), fanout 2: 31 net(s), fanout 3: 4 net(s), fanout 5: 1 net(s), fanout 9: 1 net(s), fanout 16: 1 net(s), fanout 17: 4 net(s), fanout 18: 2 net(s), fanout 21: 3 net(s), fanout 22: 1 net(s))
2 diagnostics (0 errors, 1 warnings, 1 info)
)lint"},
    {"vhdl/threshold_calc[rtl]", R"lint(info[RTL-014] threshold_calc.wsum: register 'wsum': 3 of 24 bits never toggle (stuck bits: 0=0 1=0 2=0)
1 diagnostic (0 errors, 0 warnings, 1 info)
)lint"},
    {"vhdl/threshold_calc[gate]", R"lint(info[GATE-005] threshold_calc.netlist: fanout histogram (max 48 at n715) (fanout 0: 2 net(s), fanout 1: 349 net(s), fanout 2: 359 net(s), fanout 3: 46 net(s), fanout 7: 1 net(s), fanout 8: 1 net(s), fanout 9: 1 net(s), fanout 10: 12 net(s), fanout 14: 1 net(s), fanout 15: 3 net(s), fanout 16: 2 net(s), fanout 19: 1 net(s), fanout 42: 1 net(s), fanout 48: 1 net(s))
1 diagnostic (0 errors, 0 warnings, 1 info)
)lint"},
    {"vhdl/param_calc[rtl]", R"lint(info[RTL-014] param_calc.gain: register 'gain': 2 of 8 bits never toggle (stuck bits: 0=0 1=0)
info[RTL-014] param_calc.r_prod: register 'r_prod': 1 of 24 bits never toggle (stuck bits: 23=0)
2 diagnostics (0 errors, 0 warnings, 2 info)
)lint"},
    {"vhdl/param_calc[gate]", R"lint(info[GATE-005] param_calc.netlist: fanout histogram (max 23 at n46 'v2[0]') (fanout 0: 2 net(s), fanout 1: 630 net(s), fanout 2: 562 net(s), fanout 3: 11 net(s), fanout 4: 18 net(s), fanout 5: 5 net(s), fanout 6: 12 net(s), fanout 7: 1 net(s), fanout 8: 2 net(s), fanout 9: 3 net(s), fanout 10: 2 net(s), fanout 12: 1 net(s), fanout 14: 2 net(s), fanout 15: 6 net(s), fanout 16: 3 net(s), fanout 17: 15 net(s), fanout 18: 1 net(s), fanout 23: 1 net(s))
1 diagnostic (0 errors, 0 warnings, 1 info)
)lint"},
    {"vhdl/i2c_master[rtl]", R"lint(warning[RTL-003] i2c_master.%37: eq node is dead (unreachable from outputs and state) (the tape compiler prunes it)
warning[RTL-003] i2c_master.%38: or node is dead (unreachable from outputs and state) (the tape compiler prunes it)
warning[RTL-003] i2c_master.%39: mux node is dead (unreachable from outputs and state) (the tape compiler prunes it)
3 diagnostics (0 errors, 3 warnings, 0 info)
)lint"},
    {"vhdl/i2c_master[gate]", R"lint(info[GATE-005] i2c_master.netlist: fanout histogram (max 16 at n64) (fanout 0: 2 net(s), fanout 1: 248 net(s), fanout 2: 62 net(s), fanout 3: 16 net(s), fanout 4: 12 net(s), fanout 5: 6 net(s), fanout 6: 5 net(s), fanout 7: 4 net(s), fanout 8: 3 net(s), fanout 9: 1 net(s), fanout 10: 2 net(s), fanout 11: 2 net(s), fanout 12: 1 net(s), fanout 13: 2 net(s), fanout 16: 1 net(s))
1 diagnostic (0 errors, 0 warnings, 1 info)
)lint"},
    {"vhdl/reset_ctrl[rtl]", R"lint(0 diagnostics (0 errors, 0 warnings, 0 info)
)lint"},
    {"vhdl/reset_ctrl[gate]", R"lint(info[GATE-005] reset_ctrl.netlist: fanout histogram (max 5 at n15) (fanout 0: 2 net(s), fanout 1: 17 net(s), fanout 2: 2 net(s), fanout 3: 3 net(s), fanout 4: 1 net(s), fanout 5: 2 net(s))
1 diagnostic (0 errors, 0 warnings, 1 info)
)lint"},
  };
  return kGolden;
}

TEST(LintGolden, ExpoCuTextReportsAreByteStable) {
  std::size_t checked = 0;
  for (const char* flow : {"osss", "vhdl"}) {
    const auto components = std::string(flow) == "osss"
                                ? expocu::build_osss_flow()
                                : expocu::build_vhdl_flow();
    ASSERT_EQ(components.size(), 6u);
    for (const auto& c : components) {
      const std::string base = std::string(flow) + "/" + c.name;
      const auto rtl_it = golden().find(base + "[rtl]");
      ASSERT_NE(rtl_it, golden().end()) << base;
      EXPECT_EQ(lint_module(c.module).text(), rtl_it->second) << base;

      const auto nl = gate::lower_to_gates(c.module);
      const auto gate_it = golden().find(base + "[gate]");
      ASSERT_NE(gate_it, golden().end()) << base;
      EXPECT_EQ(lint_netlist(nl).text(), gate_it->second) << base;
      checked += 2;
    }
  }
  EXPECT_EQ(checked, golden().size());
}

}  // namespace
}  // namespace osss::lint
