// Tests for the gate-netlist lint pack.  Structurally broken netlists
// (loops, floating inputs) cannot be produced through the optimizing
// factories, so NetlistSurgeon inflicts them directly.

#include "lint/gate_rules.hpp"

#include <gtest/gtest.h>

#include "gate/lower.hpp"
#include "rtl/builder.hpp"

namespace osss::gate {
namespace {

using lint::Options;
using lint::Report;
using lint::Severity;

Netlist clean_netlist() {
  Netlist nl("clean");
  const auto a = nl.add_input("a", 2);
  const auto b = nl.add_input("b", 2);
  const NetId q = nl.dff("q");
  nl.connect_dff(q, nl.xor2(a[0], b[0]));
  nl.add_output("o", {nl.and2(a[1], b[1]), q});
  return nl;
}

TEST(GateLint, CleanNetlistHasNoErrorsOrWarnings) {
  const Report r = lint::lint_netlist(clean_netlist());
  EXPECT_TRUE(r.clean()) << r.text();
  EXPECT_EQ(r.warning_count(), 0u) << r.text();
  // The fanout histogram info line is always present.
  EXPECT_TRUE(r.has("GATE-005")) << r.text();
}

TEST(GateLint, CombinationalLoopIsGate001) {
  Netlist nl("loop");
  const auto a = nl.add_input("a", 1);
  auto& cells = NetlistSurgeon::cells(nl);
  const NetId x = static_cast<NetId>(cells.size());
  cells.push_back(Cell{CellKind::kAnd2, {a[0], x + 1}, false, 0, 0, ""});
  cells.push_back(Cell{CellKind::kInv, {x}, false, 0, 0, ""});
  nl.add_output("o", {x});
  const Report r = lint::lint_netlist(nl);
  ASSERT_TRUE(r.has("GATE-001")) << r.text();
  const auto d = r.by_rule("GATE-001")[0];
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.note.find("n" + std::to_string(x)), std::string::npos);
  EXPECT_NE(d.note.find("n" + std::to_string(x + 1)), std::string::npos);
}

TEST(GateLint, MultipleMemoryWritePortsAreGate002) {
  Netlist nl("mem2w");
  const auto addr = nl.add_input("addr", 2);
  const auto d0 = nl.add_input("d0", 4);
  const auto d1 = nl.add_input("d1", 4);
  const auto en = nl.add_input("en", 2);
  const unsigned mem = nl.add_memory("ram", 4, 4);
  nl.mem_write(mem, addr, d0, en[0]);
  nl.mem_write(mem, addr, d1, en[1]);
  nl.add_output("q", nl.mem_read(mem, addr));
  const Report r = lint::lint_netlist(nl);
  ASSERT_TRUE(r.has("GATE-002")) << r.text();
  EXPECT_EQ(r.by_rule("GATE-002")[0].severity, Severity::kWarning);
  EXPECT_TRUE(r.clean()) << r.text();
}

TEST(GateLint, UnconnectedDffIsGate003) {
  Netlist nl("noD");
  const NetId q = nl.dff("q");  // connect_dff never called
  nl.add_output("o", {q});
  const Report r = lint::lint_netlist(nl);
  ASSERT_TRUE(r.has("GATE-003")) << r.text();
  const auto d = r.by_rule("GATE-003")[0];
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.index, static_cast<std::int64_t>(q));
}

TEST(GateLint, DanglingNetReferenceIsGate003AndNeverThrows) {
  Netlist nl("dangle");
  const auto a = nl.add_input("a", 1);
  const NetId x = nl.inv(a[0]);
  nl.add_output("o", {x});
  NetlistSurgeon::cells(nl)[x].ins[0] = 999;
  Report r;
  EXPECT_NO_THROW(r = lint::lint_netlist(nl));
  ASSERT_TRUE(r.has("GATE-003")) << r.text();
  EXPECT_FALSE(r.clean());
}

TEST(GateLint, DeadCellIsGate004AndAgreesWithSweep) {
  Netlist nl("deadcell");
  const auto a = nl.add_input("a", 2);
  const NetId live = nl.xor2(a[0], a[1]);
  const NetId dead = nl.and2(a[0], a[1]);  // feeds nothing
  nl.add_output("o", {live});
  const Report r = lint::lint_netlist(nl);
  ASSERT_TRUE(r.has("GATE-004")) << r.text();
  const auto diags = r.by_rule("GATE-004");
  bool flagged = false;
  for (const auto& d : diags)
    if (d.index == static_cast<std::int64_t>(dead)) flagged = true;
  EXPECT_TRUE(flagged) << r.text();
  // Lint's dead set is exactly what sweep removes.
  const std::size_t removed = nl.sweep();
  EXPECT_EQ(diags.size(), removed);
  const Report after = lint::lint_netlist(nl);
  EXPECT_FALSE(after.has("GATE-004")) << after.text();
}

TEST(GateLint, FanoutThresholdWarnsPerNet) {
  Netlist nl("fanout");
  const auto a = nl.add_input("a", 1);
  const auto b = nl.add_input("b", 4);
  // a[0] drives four gates.
  nl.add_output("o", {nl.and2(a[0], b[0]), nl.or2(a[0], b[1]),
                      nl.xor2(a[0], b[2]), nl.and2(a[0], b[3])});
  Options opt;
  opt.fanout_warn_threshold = 4;
  const Report r = lint::lint_netlist(nl, opt);
  const auto diags = r.by_rule("GATE-005");
  bool warned = false;
  for (const auto& d : diags)
    if (d.severity == Severity::kWarning &&
        d.index == static_cast<std::int64_t>(a[0]))
      warned = true;
  EXPECT_TRUE(warned) << r.text();
}

TEST(GateLint, SuppressionSilencesARule) {
  Netlist nl("quiet");
  const auto a = nl.add_input("a", 2);
  (void)nl.and2(a[0], a[1]);  // dead
  nl.add_output("o", {a[0]});
  Options opt;
  opt.suppress.insert("GATE-004");
  opt.suppress.insert("GATE-005");
  const Report r = lint::lint_netlist(nl, opt);
  EXPECT_TRUE(r.empty()) << r.text();
}

TEST(GateLint, LoweredRtlIsLintClean) {
  rtl::Builder b("acc");
  rtl::Wire x = b.input("x", 8);
  rtl::Wire q = b.reg("acc", 8, 0);
  b.connect(q, b.add(q, x));
  b.output("sum", q);
  const Netlist nl = lower_to_gates(b.take());
  const Report r = lint::lint_netlist(nl);
  EXPECT_TRUE(r.clean()) << r.text();
  EXPECT_EQ(r.warning_count(), 0u) << r.text();
}

}  // namespace
}  // namespace osss::gate
