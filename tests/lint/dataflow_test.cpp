// dataflow_test.cpp — unit tests for the abstract-interpretation engine:
// lattice algebra, transfer precision on hand-built modules, and the
// invariants the new rule pack and the ODC-aware satsweep rely on.

#include "lint/dataflow.hpp"

#include <gtest/gtest.h>

#include "expocu/flows.hpp"
#include "rtl/builder.hpp"

namespace osss::lint {
namespace {

using rtl::Builder;
using rtl::Wire;

TEST(DataflowDomains, KnownBitsAlgebra) {
  const KnownBits c = KnownBits::constant(Bits(8, 0xa5));
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(c.constant_value().to_u64(), 0xa5u);
  EXPECT_TRUE(c.contains(Bits(8, 0xa5)));
  EXPECT_FALSE(c.contains(Bits(8, 0xa4)));

  const KnownBits j = KnownBits::join(c, KnownBits::constant(Bits(8, 0xa4)));
  EXPECT_FALSE(j.is_constant());
  EXPECT_TRUE(j.contains(Bits(8, 0xa5)));
  EXPECT_TRUE(j.contains(Bits(8, 0xa4)));
  EXPECT_EQ(j.bit(7), std::optional<bool>(true));
  EXPECT_EQ(j.bit(0), std::nullopt);
}

TEST(DataflowDomains, IntervalJoinAndNormalize) {
  const Interval a(3, 5);
  const Interval b(9, 12);
  const Interval j = Interval::join(a, b);
  EXPECT_EQ(j.lo, 3u);
  EXPECT_EQ(j.hi, 12u);

  // normalize(): interval [0, 8] pins bits above bit 3 of a 8-bit bus.
  Fact f = Fact::top(8);
  f.iv = Interval(0, 8);
  f.normalize();
  EXPECT_EQ(f.kb.bit(7), std::optional<bool>(false));
  EXPECT_EQ(f.kb.bit(4), std::optional<bool>(false));
  EXPECT_EQ(f.kb.bit(3), std::nullopt);

  // ... and known bits clamp the interval.
  Fact g = Fact::top(8);
  g.kb.zeros = Bits(8, 0xf0);  // top nibble known zero
  g.normalize();
  EXPECT_TRUE(g.iv.tracked);
  EXPECT_EQ(g.iv.hi, 0x0fu);
}

TEST(DataflowEngine, ConstantPropagationThroughLogic) {
  Builder b("const_prop");
  const Wire x = b.input("x", 8);
  const Wire k = b.constant(8, 0x0f);
  const Wire anded = b.and_(x, k);       // top nibble 0
  const Wire ored = b.or_(anded, b.constant(8, 0x01));  // bit 0 is 1
  b.output("y", ored);
  const rtl::Module m = b.take();

  const FactDB db = analyze_dataflow(m);
  const rtl::NodeId y = m.outputs().front().node;
  EXPECT_EQ(db.bit(y, 7), std::optional<bool>(false));
  EXPECT_EQ(db.bit(y, 4), std::optional<bool>(false));
  EXPECT_EQ(db.bit(y, 0), std::optional<bool>(true));
  EXPECT_EQ(db.bit(y, 1), std::nullopt);
  EXPECT_TRUE(db.interval(y).tracked);
  EXPECT_LE(db.interval(y).hi, 0x0fu);
}

TEST(DataflowEngine, SaturatingCounterKeepsBound) {
  // count' = (count < 8) ? count + 1 : count — the reset_ctrl idiom; the
  // guard refinement plus threshold widening must hold count <= 8.
  Builder b("sat_counter");
  const Wire count = b.reg("count", 4);
  const Wire lt = b.ult(count, b.constant(4, 8));
  b.connect(count, b.mux(lt, b.add(count, b.constant(4, 1)), count));
  b.output("q", count);
  const rtl::Module m = b.take();

  const FactDB db = analyze_dataflow(m);
  const Fact& f = db.register_fact(0);
  EXPECT_TRUE(f.iv.tracked);
  EXPECT_EQ(f.iv.lo, 0u);
  EXPECT_EQ(f.iv.hi, 8u);
  EXPECT_TRUE(db.converged());
}

TEST(DataflowEngine, WrappingCounterIsTop) {
  Builder b("wrap_counter");
  const Wire count = b.reg("count", 4);
  b.connect(count, b.add(count, b.constant(4, 1)));
  b.output("q", count);
  const rtl::Module m = b.take();

  const FactDB db = analyze_dataflow(m);
  const Fact& f = db.register_fact(0);
  EXPECT_TRUE(f.contains(Bits(4, 15)));
  EXPECT_TRUE(f.contains(Bits(4, 0)));
  EXPECT_TRUE(db.converged());
}

TEST(DataflowEngine, StuckRegisterBitsAreConstant) {
  // A 4-bit register fed by {2'b00, x[1:0]}: the top two bits never
  // toggle — the fact the satsweep consumes via const_reg_bits().
  Builder b("stuck_bits");
  const Wire x = b.input("x", 2);
  const Wire r = b.reg("r", 4);
  b.connect(r, b.concat({b.constant(2, 0), x}));
  b.output("q", r);
  const rtl::Module m = b.take();

  const FactDB db = analyze_dataflow(m);
  const Fact& f = db.register_fact(0);
  EXPECT_EQ(f.kb.bit(3), std::optional<bool>(false));
  EXPECT_EQ(f.kb.bit(2), std::optional<bool>(false));
  EXPECT_EQ(f.kb.bit(1), std::nullopt);

  const auto bits = db.const_reg_bits();
  EXPECT_EQ(bits.count("r[3]"), 1u);
  EXPECT_EQ(bits.at("r[3]"), false);
  EXPECT_EQ(bits.count("r[1]"), 0u);
}

TEST(DataflowEngine, EnableGatedRegisterHoldsJoin) {
  Builder b("en_reg");
  const Wire en = b.input("en", 1);
  const Wire r = b.reg("r", 8, 0x80);
  b.connect(r, b.constant(8, 0x81));
  b.enable(r, en);
  b.output("q", r);
  const rtl::Module m = b.take();

  const FactDB db = analyze_dataflow(m);
  const Fact& f = db.register_fact(0);
  // Holds 0x80 until en, then 0x81 forever: bit 7 always set.
  EXPECT_EQ(f.kb.bit(7), std::optional<bool>(true));
  EXPECT_EQ(f.kb.bit(1), std::optional<bool>(false));
  EXPECT_EQ(f.kb.bit(0), std::nullopt);
}

TEST(DataflowEngine, MemoryFactsJoinWrites) {
  Builder b("mem_facts");
  const Wire addr = b.input("addr", 3);
  const rtl::MemHandle mem = b.memory("m", /*depth=*/8, /*data_width=*/8);
  // Only ever writes values with the top bit clear.
  b.mem_write(mem, addr, b.and_(b.input("d", 8), b.constant(8, 0x7f)),
              b.input("we", 1));
  const Wire q = b.mem_read(mem, addr);
  b.output("q", q);
  const rtl::Module m = b.take();

  const FactDB db = analyze_dataflow(m);
  const rtl::NodeId qn = m.outputs().front().node;
  EXPECT_EQ(db.bit(qn, 7), std::optional<bool>(false));
  EXPECT_EQ(db.bit(qn, 0), std::nullopt);
}

TEST(DataflowEngine, DeadMemoryWriteDetected) {
  Builder b("dead_write");
  const rtl::MemHandle mem = b.memory("m", /*depth=*/10, /*data_width=*/8);
  // Address 12 >= depth 10: the write can never land.
  b.mem_write(mem, b.constant(4, 12), b.input("d", 8), b.input("we", 1));
  const Wire q = b.mem_read(mem, b.input("addr", 4));
  b.output("q", q);
  const rtl::Module m = b.take();

  const FactDB db = analyze_dataflow(m);
  ASSERT_EQ(db.dead_writes().size(), 1u);
  EXPECT_EQ(db.dead_writes()[0].first, 0u);
  // ... and the read can only ever see the zero-initialised rows.
  const rtl::NodeId qn = m.outputs().front().node;
  EXPECT_EQ(db.constant(qn).value_or(Bits(8, 1)), Bits(8, 0));
}

TEST(DataflowEngine, ExpoCuComponentsAnalyzeAndConverge) {
  for (const auto& flow :
       {expocu::build_osss_flow(), expocu::build_vhdl_flow()}) {
    for (const auto& comp : flow) {
      const FactDB db = analyze_dataflow(comp.module);
      EXPECT_TRUE(db.converged()) << comp.module.name();
      EXPECT_EQ(db.node_count(), comp.module.node_count());
    }
  }
}

}  // namespace
}  // namespace osss::lint
