// dataflow_fuzz_test.cpp — soundness harness for the abstract interpreter.
//
// A FactDB claim is an invariant: "node n takes only values in this set, in
// every cycle of every execution from reset, for any stimulus".  The
// reference interpreter (rtl/sim.cpp, SimMode::kInterp) is the semantic
// oracle, so soundness is directly testable: simulate concrete executions
// and demand that no node value ever falls outside its fact.
//
//   * 500 random modules (the lowering fuzzer's full corpus — memories,
//     shared-mux arbitration, polymorphic dispatch shapes) under random and
//     corner-pattern stimulus;
//   * all six ExpoCU components, both flows, for over a thousand cycles
//     each — the designs whose register constants actually feed the
//     ODC/SDC-aware satsweep.
//
// One contradiction anywhere is an engine bug (an unsound transfer
// function or a broken sequential join), never a test flake: the checked
// property is universally quantified, and the stimulus only needs to reach
// a counterexample state.  The corpus is also checked for non-vacuity —
// the runs must prove a healthy number of non-trivial facts, or the
// harness is quietly testing `top` against everything.

#include <gtest/gtest.h>

#include <cstddef>
#include <random>

#include "expocu/flows.hpp"
#include "lint/dataflow.hpp"
#include "rtl/sim.hpp"
#include "verify/random_module.hpp"
#include "verify/stimgen.hpp"

namespace osss::lint {
namespace {

struct SoundnessStats {
  std::size_t checks = 0;        ///< (node, cycle) containment checks
  std::size_t known_nodes = 0;   ///< nodes with at least one proven bit
};

Bits random_stimulus(std::mt19937_64& rng, unsigned width) {
  // Mostly uniform random, with corner patterns mixed in: all-zeros and
  // all-ones stress saturation guards, enables and reset-like inputs far
  // harder than uniform bits would.
  switch (rng() % 8) {
    case 0: return Bits(width);
    case 1: return Bits::ones(width);
    default: {
      Bits v(width);
      for (unsigned i = 0; i < width; ++i) v.set_bit(i, rng() & 1);
      return v;
    }
  }
}

/// Simulate `cycles` cycles of random stimulus and check every node of
/// every cycle against its fact.  gtest ASSERTs need a void function.
void check_soundness(const rtl::Module& m, unsigned cycles,
                     std::mt19937_64& rng, std::uint64_t seed,
                     const char* label, SoundnessStats& stats) {
  const FactDB db = analyze_dataflow(m);
  ASSERT_EQ(db.node_count(), m.node_count()) << label;
  for (rtl::NodeId id = 0; id < m.node_count(); ++id)
    if (!db.fact(id).kb.known().is_zero()) ++stats.known_nodes;

  rtl::Simulator sim(m);  // kInterp: the oracle the FactDB contract names
  sim.reset();
  for (unsigned t = 0; t < cycles; ++t) {
    for (const auto& in : m.inputs())
      sim.set_input(in.name, random_stimulus(rng, m.node(in.node).width));
    for (rtl::NodeId id = 0; id < m.node_count(); ++id) {
      const Bits v = sim.get(id);
      ++stats.checks;
      ASSERT_TRUE(db.fact(id).contains(v))
          << label << " seed " << seed << ": node " << id << " ("
          << rtl::op_name(m.node(id).op) << " \"" << m.node(id).name
          << "\") holds " << v.to_hex_string() << " at cycle " << t
          << " outside its claimed fact";
    }
    sim.step();
  }
}

TEST(DataflowFuzz, RandomModulesNeverContradictClaimedFacts) {
  const std::uint64_t seed = verify::env_seed(52417);
  const unsigned n = verify::env_iters(500);
  std::mt19937_64 rng(seed);
  SoundnessStats stats;
  for (unsigned i = 0; i < n; ++i) {
    verify::RandomModuleOptions opt;
    opt.ops = 15 + i % 40;
    opt.with_memory = i % 3 == 0;
    opt.with_shared_mux = i % 5 == 0;
    opt.with_polymorphic = i % 7 == 0;
    const rtl::Module m = verify::random_module(rng, opt);
    const std::string label = "module " + std::to_string(i);
    check_soundness(m, /*cycles=*/16, rng, seed, label.c_str(), stats);
    if (HasFatalFailure()) return;
  }
  // Non-vacuity: the corpus must exercise real transfer precision.
  EXPECT_GT(stats.known_nodes, n);
  EXPECT_GT(stats.checks, 100000u);
}

TEST(DataflowFuzz, ExpoCuComponentsNeverContradictClaimedFacts) {
  const std::uint64_t seed = verify::env_seed(90733);
  const unsigned cycles = verify::env_iters(1200);
  std::mt19937_64 rng(seed);
  SoundnessStats stats;
  for (const auto& flow :
       {expocu::build_osss_flow(), expocu::build_vhdl_flow()}) {
    for (const auto& comp : flow) {
      check_soundness(comp.module, cycles, rng, seed,
                      comp.module.name().c_str(), stats);
      if (HasFatalFailure()) return;
    }
  }
  // These are the designs whose const_reg_bits() seed the optimizer; the
  // runs must keep proving facts there, or the conduit is silently empty.
  EXPECT_GT(stats.known_nodes, 0u);
  EXPECT_GT(stats.checks, 1000000u);
}

}  // namespace
}  // namespace osss::lint
