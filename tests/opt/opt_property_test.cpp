// Algebraic properties of the pass pipeline:
//
//   * idempotence — the standard pipeline runs to a fixpoint, so running it
//     again changes nothing: one round, zero changes, identical statistics;
//   * pass-order independence of *equivalence* — any permutation of the
//     registered passes yields a netlist equivalent to the input (the areas
//     may differ; correctness may not);
//   * stats conservation — cells_after equals the output netlist's live
//     cell count, and sweep() on the output removes nothing (the pass
//     contract says results are swept).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "expocu/flows.hpp"
#include "gate/equiv.hpp"
#include "gate/lower.hpp"
#include "opt/opt.hpp"
#include "verify/random_module.hpp"
#include "verify/stimgen.hpp"

namespace osss::opt {
namespace {

std::vector<gate::Netlist> corpus() {
  std::vector<gate::Netlist> nls;
  const std::uint64_t base = verify::env_seed(6163);
  for (unsigned i = 0; i < 2; ++i) {
    std::mt19937_64 rng(
        verify::StimGen::derive(base, "opt_prop/" + std::to_string(i)));
    verify::RandomModuleOptions shape;
    shape.ops = 30;
    shape.with_memory = i == 1;
    nls.push_back(gate::lower_to_gates(verify::random_module(rng, shape)));
  }
  for (const auto& c : expocu::build_osss_flow())
    if (c.name == "reset_ctrl" || c.name == "histogram")
      nls.push_back(gate::lower_to_gates(c.module));
  return nls;
}

TEST(OptProperty, StandardPipelineIsIdempotent) {
  for (const gate::Netlist& in : corpus()) {
    PipelineOptions po;
    po.self_check = 0;
    Pipeline first = Pipeline::standard(po);
    const gate::Netlist once = first.run(in);

    Pipeline second = Pipeline::standard(po);
    const gate::Netlist twice = second.run(once);
    // The fixpoint is recognized immediately: a single round, all quiet.
    ASSERT_EQ(second.stats().size(), second.pass_count()) << in.name();
    for (const PassStats& s : second.stats()) {
      EXPECT_EQ(s.changes, 0u) << in.name() << "/" << s.pass;
      EXPECT_EQ(s.cells_before, s.cells_after) << in.name() << "/" << s.pass;
      EXPECT_EQ(s.area_before, s.area_after) << in.name() << "/" << s.pass;
      EXPECT_EQ(s.depth_before, s.depth_after) << in.name() << "/" << s.pass;
    }
    EXPECT_EQ(twice.cells().size(), once.cells().size()) << in.name();
  }
}

TEST(OptProperty, AnyPassOrderPreservesEquivalence) {
  std::vector<std::string> names;
  for (const PassInfo& info : pass_registry()) names.emplace_back(info.name);
  std::sort(names.begin(), names.end());

  const std::vector<gate::Netlist> nls = corpus();
  // Permuting the order is a correctness property, not a quality one — run
  // each order once (max_rounds = 1) and check equivalence to the input.
  do {
    PipelineOptions po;
    po.self_check = 0;
    po.max_rounds = 1;
    for (const gate::Netlist& in : nls) {
      Pipeline p(po);
      for (const std::string& n : names) {
        std::unique_ptr<Pass> pass = make_pass(n);
        ASSERT_NE(pass, nullptr) << n;
        p.add(std::move(pass));
      }
      const gate::Netlist out = p.run(in);
      gate::EquivOptions eo;
      eo.sequences = 1;
      eo.cycles = 48;
      eo.seed = verify::StimGen::derive(verify::env_seed(6163),
                                        "opt_prop/order/" + in.name());
      eo.mode_b = gate::SimMode::kBitParallel;
      eo.threads = 1;
      const gate::EquivResult r = gate::check_equivalence(in, out, eo);
      std::string order;
      for (const std::string& n : names) order += n + " ";
      EXPECT_TRUE(r.equivalent) << in.name() << " under order " << order
                                << ": " << r.counterexample << " (seed "
                                << eo.seed << ")";
    }
  } while (std::next_permutation(names.begin(), names.end()));
}

TEST(OptProperty, StatsConservation) {
  for (const gate::Netlist& in : corpus()) {
    for (const PassInfo& info : pass_registry()) {
      PipelineOptions po;
      po.self_check = 0;
      po.max_rounds = 1;
      Pipeline p(po);
      p.add(info.make());
      const gate::Netlist out = p.run(in);
      ASSERT_EQ(p.stats().size(), 1u);
      const PassStats& s = p.stats().front();
      EXPECT_EQ(s.cells_before, in.cells().size())
          << in.name() << "/" << info.name;
      EXPECT_EQ(s.cells_after, out.cells().size())
          << in.name() << "/" << info.name;
      gate::Netlist copy = out;
      EXPECT_EQ(copy.sweep(), 0u)
          << in.name() << "/" << info.name << ": pass left dead cells";
    }
  }
}

}  // namespace
}  // namespace osss::opt
