// Golden per-pass statistics over the six ExpoCU components (OSSS flow),
// mirroring the emitter goldens: a silent optimization regression — a rule
// that stops matching, a pass that stops converging — shifts the committed
// area/depth trajectory and fails here, while small legitimate drifts stay
// inside the tolerance bands (±2% area, ±1 logic level).
//
// The final block pins the headline result the R1/R2 experiments report:
// at least three of the six components shrink by ≥10% gate area, and no
// component's critical path gets longer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "expocu/flows.hpp"
#include "gate/lower.hpp"
#include "gate/timing.hpp"
#include "opt/opt.hpp"

namespace osss::opt {
namespace {

struct PassGolden {
  const char* pass;
  double area_after;       ///< GE after this pass, first pipeline round
  std::size_t depth_after; ///< logic levels after this pass, first round
};

struct ComponentGolden {
  const char* component;
  PassGolden rounds[4];   ///< rewrite, satsweep, retime, techmap (round 1)
  double final_area;      ///< GE at the pipeline fixpoint
  std::size_t final_depth;
};

// Harvested from osss-opt --flow=osss with the generic library.
const ComponentGolden kGolden[] = {
    {"camera_sync",
     {{"rewrite", 89.5, 2}, {"satsweep", 89.5, 2}, {"retime", 89.5, 1},
      {"techmap", 89.5, 1}},
     89.5, 1},
    {"histogram",
     {{"rewrite", 472.5, 18}, {"satsweep", 462, 16}, {"retime", 462, 16},
      {"techmap", 462, 16}},
     462, 16},
    {"threshold_calc",
     {{"rewrite", 2131.5, 39}, {"satsweep", 2131.5, 39},
      {"retime", 2131.5, 39}, {"techmap", 1954.5, 26}},
     1954.5, 26},
    {"param_calc",
     {{"rewrite", 2494, 57}, {"satsweep", 2244, 57}, {"retime", 2244, 57},
      {"techmap", 1913, 36}},
     1893, 36},
    {"i2c_master",
     {{"rewrite", 1108.5, 66}, {"satsweep", 751.5, 65}, {"retime", 751.5, 65},
      {"techmap", 685, 64}},
     683, 64},
    {"reset_ctrl",
     {{"rewrite", 66.5, 5}, {"satsweep", 64, 4}, {"retime", 64, 4},
      {"techmap", 63, 4}},
     63, 4},
};

void expect_area_near(double got, double want, const std::string& what) {
  const double band = std::max(2.0, 0.02 * want);
  EXPECT_NEAR(got, want, band) << what;
}

void expect_depth_near(std::size_t got, std::size_t want,
                       const std::string& what) {
  const auto g = static_cast<long>(got), w = static_cast<long>(want);
  EXPECT_LE(std::labs(g - w), 1) << what << ": depth " << got << " vs golden "
                                 << want;
}

TEST(OptGolden, PerPassStatsMatchCommittedTrajectory) {
  const gate::Library lib = gate::Library::generic();
  std::map<std::string, gate::Netlist> lowered;
  for (const auto& c : expocu::build_osss_flow())
    lowered.emplace(c.name, gate::lower_to_gates(c.module));

  for (const ComponentGolden& g : kGolden) {
    const auto it = lowered.find(g.component);
    ASSERT_NE(it, lowered.end()) << g.component;
    PipelineOptions po;
    po.lib = &lib;
    Pipeline p = Pipeline::standard(po);
    const gate::Netlist out = p.run(it->second);
    const std::vector<PassStats>& stats = p.stats();
    ASSERT_GE(stats.size(), 4u) << g.component;
    // Every run ends on a zero-change fixpoint round within the round cap.
    std::size_t tail_changes = 0;
    for (std::size_t i = stats.size() - 4; i < stats.size(); ++i)
      tail_changes += stats[i].changes;
    EXPECT_EQ(tail_changes, 0u) << g.component << " did not converge";

    for (std::size_t i = 0; i < 4; ++i) {
      const std::string what =
          std::string(g.component) + "/" + g.rounds[i].pass;
      ASSERT_EQ(stats[i].pass, g.rounds[i].pass) << what;
      expect_area_near(stats[i].area_after, g.rounds[i].area_after, what);
      expect_depth_near(stats[i].depth_after, g.rounds[i].depth_after, what);
    }
    expect_area_near(stats.back().area_after, g.final_area,
                     std::string(g.component) + "/final");
    expect_depth_near(stats.back().depth_after, g.final_depth,
                      std::string(g.component) + "/final");
    expect_area_near(lib.area_of(out), stats.back().area_after,
                     std::string(g.component) + "/stats-vs-netlist");
  }
}

TEST(OptGolden, HeadlineResultHolds) {
  const gate::Library lib = gate::Library::generic();
  unsigned big_wins = 0;
  for (const auto& c : expocu::build_osss_flow()) {
    const gate::Netlist before = gate::lower_to_gates(c.module);
    PipelineOptions po;
    po.lib = &lib;
    const gate::Netlist after = optimize(before, po);
    const gate::TimingReport tb = gate::analyze_timing(before, lib);
    const gate::TimingReport ta = gate::analyze_timing(after, lib);
    EXPECT_LE(ta.critical_path_ps, tb.critical_path_ps + 1e-6)
        << c.name << ": critical path regressed";
    EXPECT_LE(ta.area_ge, tb.area_ge + 1e-6) << c.name << ": area regressed";
    if (ta.area_ge <= 0.9 * tb.area_ge) ++big_wins;
  }
  EXPECT_GE(big_wins, 3u)
      << "fewer than 3 of 6 ExpoCU components reach a 10% area reduction";
}

}  // namespace
}  // namespace osss::opt
