// Pass-level differential fuzz harness: every registered optimization pass
// must preserve sequential equivalence on randomly generated netlists.
//
// The corpus is verify::random_module across the four structural shapes the
// OSSS synthesizer emits (base / memory / shared-mux / polymorphic), lowered
// to gates; each case runs one pass standalone (no pipeline self-check — the
// check HERE is the test) and asserts gate::check_equivalence between the
// pass input and output with the event-driven engine on one side and the
// 64-lane bit-parallel engine on the other.  Failures print the derived
// seed the way lower_test does, so a CI log line alone reproduces the case
// (set OSSS_FUZZ_SEED); OSSS_FUZZ_ITERS scales the corpus for nightly runs.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "gate/equiv.hpp"
#include "gate/lower.hpp"
#include "opt/opt.hpp"
#include "verify/random_module.hpp"
#include "verify/stimgen.hpp"

namespace osss::opt {
namespace {

struct Shape {
  const char* tag;
  verify::RandomModuleOptions opt;
};

const Shape kShapes[] = {
    {"base", {40, false, false, false}},
    {"mem", {32, true, false, false}},
    {"shared", {32, false, true, false}},
    {"poly", {32, false, false, true}},
};

gate::Netlist make_case(const Shape& shape, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return gate::lower_to_gates(verify::random_module(rng, shape.opt));
}

gate::EquivResult check(const gate::Netlist& before, const gate::Netlist& after,
                        std::uint64_t seed) {
  gate::EquivOptions eo;
  eo.sequences = 1;
  eo.cycles = 48;
  eo.seed = seed;
  eo.mode_a = gate::SimMode::kEvent;
  eo.mode_b = gate::SimMode::kBitParallel;
  eo.threads = 1;  // the gtest/ctest case grid is the parallel axis
  return gate::check_equivalence(before, after, eo);
}

/// (pass index in the registry, corpus index).
class OptPassEquiv
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(OptPassEquiv, PassPreservesEquivalence) {
  const PassInfo& info = pass_registry()[std::get<0>(GetParam())];
  const unsigned index = std::get<1>(GetParam());
  const std::unique_ptr<Pass> pass = info.make();
  for (const Shape& shape : kShapes) {
    const std::uint64_t seed = verify::StimGen::derive(
        verify::env_seed(4441), std::string("opt_equiv/") + info.name + "/" +
                                    shape.tag + "/" + std::to_string(index));
    const gate::Netlist before = make_case(shape, seed);
    PassStats stats;
    const gate::Netlist after = pass->run(before, stats);
    const gate::EquivResult r = check(before, after, seed);
    EXPECT_TRUE(r.equivalent)
        << info.name << " diverged on shape '" << shape.tag << "' index "
        << index << ": " << r.counterexample << " (seed " << seed << ")";
  }
}

std::string pass_case_name(
    const ::testing::TestParamInfo<std::tuple<std::size_t, unsigned>>& info) {
  return std::string(pass_registry()[std::get<0>(info.param)].name) + "_" +
         std::to_string(std::get<1>(info.param));
}

// 4 shapes x 125 indices = 500 netlists per registered pass by default.
INSTANTIATE_TEST_SUITE_P(
    Registry, OptPassEquiv,
    ::testing::Combine(
        ::testing::Range<std::size_t>(0, pass_registry().size()),
        ::testing::Range(0u, verify::env_iters(125))),
    pass_case_name);

/// The composed standard pipeline must hold end-to-end, not just per pass —
/// a pass pair could in principle conspire (one emits a shape the next
/// mis-rewrites) in a way the standalone runs never exercise.
class OptPipelineEquiv : public ::testing::TestWithParam<unsigned> {};

TEST_P(OptPipelineEquiv, StandardPipelinePreservesEquivalence) {
  const unsigned index = GetParam();
  for (const Shape& shape : kShapes) {
    const std::uint64_t seed = verify::StimGen::derive(
        verify::env_seed(4441), std::string("opt_equiv/pipeline/") +
                                    shape.tag + "/" + std::to_string(index));
    const gate::Netlist before = make_case(shape, seed);
    PipelineOptions po;
    po.self_check = 0;  // this test is the check
    const gate::Netlist after = optimize(before, po);
    const gate::EquivResult r = check(before, after, seed);
    EXPECT_TRUE(r.equivalent)
        << "pipeline diverged on shape '" << shape.tag << "' index " << index
        << ": " << r.counterexample << " (seed " << seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptPipelineEquiv,
                         ::testing::Range(0u, verify::env_iters(25)));

}  // namespace
}  // namespace osss::opt
