// Mutation-catch: fault injection on *optimized* netlists must still be
// caught by the verification stack — optimization removes redundancy, so a
// single gate-kind flip on a live cell of the optimized network should be
// MORE observable, not masked.  Each caught fault is delta-debug shrunk and
// must reduce to a replay record of at most 10 cycles that round-trips
// through save_replay/from_text and reproduces the mismatch.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "expocu/flows.hpp"
#include "gate/lower.hpp"
#include "opt/opt.hpp"
#include "verify/cosim.hpp"
#include "verify/random_module.hpp"
#include "verify/shrink.hpp"
#include "verify/stimgen.hpp"

namespace osss::opt {
namespace {

/// The complementary kind of a 2-input gate (or kBuf for an inverter) —
/// the classic stuck-wrong-polarity mutation.  Empty for cells we do not
/// mutate (sources, muxes, state).
std::optional<gate::CellKind> flip_kind(gate::CellKind k) {
  using gate::CellKind;
  switch (k) {
    case CellKind::kAnd2: return CellKind::kNand2;
    case CellKind::kNand2: return CellKind::kAnd2;
    case CellKind::kOr2: return CellKind::kNor2;
    case CellKind::kNor2: return CellKind::kOr2;
    case CellKind::kXor2: return CellKind::kXnor2;
    case CellKind::kXnor2: return CellKind::kXor2;
    case CellKind::kInv: return CellKind::kBuf;
    default: return std::nullopt;
  }
}

struct CatchTally {
  unsigned injected = 0;
  unsigned caught = 0;
};

/// Inject up to `budget` kind-flips into `optimized` (one at a time, spread
/// across the netlist), scoreboard each mutant against the unmutated
/// netlist, and shrink + replay every caught fault.
CatchTally run_mutations(const gate::Netlist& optimized, std::uint64_t seed,
                         unsigned budget) {
  std::vector<gate::NetId> targets;
  for (gate::NetId id = 0; id < optimized.cells().size(); ++id)
    if (flip_kind(optimized.cells()[id].kind))
      targets.push_back(id);
  const std::size_t stride = std::max<std::size_t>(1, targets.size() / budget);

  CatchTally tally;
  for (std::size_t i = 0; i < targets.size() && tally.injected < budget;
       i += stride) {
    const gate::NetId victim = targets[i];
    gate::Netlist mutant = optimized;
    mutant.mutate_cell(victim, *flip_kind(optimized.cells()[victim].kind));
    ++tally.injected;

    verify::CoSim cs;
    cs.add(std::make_unique<verify::GateModel>(optimized,
                                               gate::SimMode::kEvent, "good"));
    cs.add(std::make_unique<verify::GateModel>(std::move(mutant),
                                               gate::SimMode::kEvent, "bad"));
    cs.declare_io(optimized);
    verify::StimGen gen(verify::StimGen::derive(seed, std::to_string(victim)));
    cs.declare_stimulus(gen);
    const verify::RunResult r = cs.run(gen, 192);
    if (r.ok) continue;  // fault unobservable within budget: not a miss
    ++tally.caught;

    verify::ShrinkResult shrunk = verify::shrink(cs, r.failing_trace);
    EXPECT_FALSE(shrunk.final_run.ok);
    EXPECT_LE(shrunk.trace.length(), 10u)
        << "shrinker left " << shrunk.trace.length() << " cycles (from "
        << shrunk.original_cycles << ") for cell " << victim << " of "
        << optimized.name() << " (seed " << gen.seed() << ")";

    verify::ReplayRecord rec;
    rec.design = optimized.name();
    rec.seed = gen.seed();
    rec.note = shrunk.final_run.mismatch.describe(cs.inputs(), false);
    rec.trace = shrunk.trace;
    const std::string path = verify::save_replay(rec, ::testing::TempDir());
    std::ifstream back(path);
    EXPECT_TRUE(back.good()) << path;
    if (!back.good()) continue;
    std::string text((std::istreambuf_iterator<char>(back)),
                     std::istreambuf_iterator<char>());
    const verify::ReplayRecord parsed = verify::ReplayRecord::from_text(text);
    EXPECT_EQ(parsed.design, rec.design);
    EXPECT_EQ(parsed.trace.length(), shrunk.trace.length());
    const verify::RunResult again = verify::replay(cs, parsed);
    EXPECT_FALSE(again.ok) << "replay did not reproduce the mismatch";
  }
  return tally;
}

gate::Netlist optimize_quiet(const gate::Netlist& nl) {
  PipelineOptions po;
  po.self_check = 0;  // equivalence of the pipeline is covered elsewhere
  return optimize(nl, po);
}

TEST(OptMutation, RandomModuleFaultsAreCaughtAndShrinkSmall) {
  for (unsigned index = 0; index < verify::env_iters(3); ++index) {
    // A random module can optimize down to nothing (every output constant
    // or a plain register slice) — walk the derived seed sequence until a
    // netlist with real surviving logic comes up.
    std::uint64_t seed = 0;
    std::optional<gate::Netlist> optimized;
    for (unsigned attempt = 0; attempt < 16; ++attempt) {
      seed = verify::StimGen::derive(
          verify::env_seed(9091), "opt_mutation/" + std::to_string(index) +
                                      "/" + std::to_string(attempt));
      std::mt19937_64 rng(seed);
      verify::RandomModuleOptions shape;
      shape.ops = 40;
      optimized = optimize_quiet(
          gate::lower_to_gates(verify::random_module(rng, shape)));
      if (optimized->gate_count() >= 16) break;
    }
    ASSERT_GE(optimized->gate_count(), 16u)
        << "no non-degenerate random module in 16 attempts (index " << index
        << ")";
    const CatchTally tally = run_mutations(*optimized, seed, 8);
    EXPECT_GT(tally.injected, 0u);
    EXPECT_GT(tally.caught, 0u)
        << "no observable mutation on index " << index << " (seed " << seed
        << ")";
  }
}

TEST(OptMutation, ExpoCuComponentFaultsAreCaughtAndShrinkSmall) {
  const std::uint64_t seed = verify::env_seed(9092);
  unsigned total_caught = 0;
  for (const auto& c : expocu::build_osss_flow()) {
    if (c.name != "reset_ctrl" && c.name != "threshold_calc") continue;
    const gate::Netlist optimized =
        optimize_quiet(gate::lower_to_gates(c.module));
    const CatchTally tally = run_mutations(
        optimized, verify::StimGen::derive(seed, "opt_mutation/" + c.name), 6);
    EXPECT_GT(tally.injected, 0u) << c.name;
    total_caught += tally.caught;
  }
  EXPECT_GT(total_caught, 0u);
}

}  // namespace
}  // namespace osss::opt
