// Fuzz test: randomly generated RTL modules must survive lowering and be
// cycle-equivalent between the RTL simulator and the gate netlist — the
// broad-spectrum version of the per-operator lowering tests.
//
// Runs on the unified verification stack: verify::random_module generates
// the designs (including the memory / shared-mux / polymorphic-dispatch
// shapes the OSSS synthesizer emits), verify::CoSim scoreboards RTL
// against gates, and any mismatch is shrunk to a minimal replay record
// that is saved to disk and whose seed is part of the assertion message —
// a CI log line alone reproduces the failure (set OSSS_FUZZ_SEED).

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "gate/lower.hpp"
#include "verify/cosim.hpp"
#include "verify/random_module.hpp"
#include "verify/shrink.hpp"
#include "verify/stimgen.hpp"

namespace osss {
namespace {

/// Build the module for one (variant, index) fuzz case.
rtl::Module make_case(const verify::RandomModuleOptions& opt,
                      std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return verify::random_module(rng, opt);
}

void run_case(const char* variant, const verify::RandomModuleOptions& opt,
              unsigned index) {
  const std::uint64_t seed = verify::StimGen::derive(
      verify::env_seed(7919), std::string("fuzz_lowering/") + variant + "/" +
                                  std::to_string(index));
  const rtl::Module m = make_case(opt, seed);

  verify::CoSim cs;
  cs.add(std::make_unique<verify::RtlModel>(m));
  cs.add(std::make_unique<verify::GateModel>(gate::lower_to_gates(m),
                                             gate::SimMode::kEvent, "gate"));
  cs.declare_io(m);
  verify::StimGen gen(seed);
  cs.declare_stimulus(gen);

  const verify::RunResult r = cs.run(gen, 120);
  if (!r.ok) {
    verify::ShrinkResult shrunk = verify::shrink(cs, r.failing_trace);
    verify::ReplayRecord rec;
    rec.design = std::string("fuzz_lowering_") + variant;
    rec.seed = seed;
    rec.note = shrunk.final_run.mismatch.describe(cs.inputs(), false);
    rec.trace = shrunk.trace;
    std::string path = "(unsaved)";
    try {
      path = verify::save_replay(rec);
    } catch (const std::exception&) {
    }
    FAIL() << "variant " << variant << " index " << index << " seed " << seed
           << ": " << r.mismatch.describe(cs.inputs(), false)
           << "\nshrunk to " << shrunk.trace.length() << " cycles (from "
           << shrunk.original_cycles << "): " << rec.note << "\nreplay: "
           << path;
  }
}

class FuzzLowering : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzLowering, RtlAndGateAgree) {
  run_case("base", {40, false, false, false}, GetParam());
}

TEST_P(FuzzLowering, WithMemories) {
  run_case("mem", {32, true, false, false}, GetParam());
}

TEST_P(FuzzLowering, WithSharedMuxShapes) {
  run_case("shared", {32, false, true, false}, GetParam());
}

TEST_P(FuzzLowering, WithPolymorphicDispatch) {
  run_case("poly", {32, false, false, true}, GetParam());
}

TEST_P(FuzzLowering, WithEverything) {
  run_case("all", {48, true, true, true}, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLowering,
                         ::testing::Range(0u, verify::env_iters(12)));

}  // namespace
}  // namespace osss
