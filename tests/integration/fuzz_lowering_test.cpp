// Fuzz test: randomly generated RTL modules must survive lowering and be
// cycle-equivalent between the RTL simulator and the gate netlist — the
// broad-spectrum version of the per-operator lowering tests.

#include <gtest/gtest.h>

#include <random>

#include "gate/lower.hpp"
#include "gate/sim.hpp"
#include "rtl/builder.hpp"
#include "rtl/sim.hpp"

namespace osss {
namespace {

using rtl::Builder;
using rtl::Wire;

/// Generate a random module: a pool of wires grown by random operations,
/// a few registers with random feedback, random outputs.
rtl::Module random_module(std::mt19937_64& rng, unsigned ops) {
  Builder b("fuzz");
  std::vector<Wire> pool;
  const unsigned n_inputs = 2 + static_cast<unsigned>(rng() % 3);
  for (unsigned i = 0; i < n_inputs; ++i) {
    const unsigned w = 1 + static_cast<unsigned>(rng() % 12);
    pool.push_back(b.input("in" + std::to_string(i), w));
  }
  std::vector<Wire> regs;
  const unsigned n_regs = 1 + static_cast<unsigned>(rng() % 3);
  for (unsigned i = 0; i < n_regs; ++i) {
    const unsigned w = 1 + static_cast<unsigned>(rng() % 12);
    const Wire q = b.reg("r" + std::to_string(i), w,
                         rtl::Bits(w, rng()));
    regs.push_back(q);
    pool.push_back(q);
  }
  auto pick = [&]() -> Wire { return pool[rng() % pool.size()]; };
  auto pick_w = [&](unsigned w) -> Wire {
    // Find or adapt a wire of width w.
    for (unsigned tries = 0; tries < 8; ++tries) {
      const Wire c = pick();
      if (c.width == w) return c;
    }
    Wire c = pick();
    return c.width >= w ? b.trunc(c, w) : b.zext(c, w);
  };
  for (unsigned i = 0; i < ops; ++i) {
    const Wire a = pick();
    switch (rng() % 14) {
      case 0: pool.push_back(b.add(a, pick_w(a.width))); break;
      case 1: pool.push_back(b.sub(a, pick_w(a.width))); break;
      case 2:
        if (a.width <= 8) pool.push_back(b.mul(a, pick_w(a.width)));
        break;
      case 3: pool.push_back(b.and_(a, pick_w(a.width))); break;
      case 4: pool.push_back(b.or_(a, pick_w(a.width))); break;
      case 5: pool.push_back(b.xor_(a, pick_w(a.width))); break;
      case 6: pool.push_back(b.not_(a)); break;
      case 7:
        pool.push_back(b.shli(a, static_cast<unsigned>(rng() % (a.width + 1))));
        break;
      case 8:
        pool.push_back(
            b.ashri(a, static_cast<unsigned>(rng() % (a.width + 1))));
        break;
      case 9: pool.push_back(b.eq(a, pick_w(a.width))); break;
      case 10: pool.push_back(b.ult(a, pick_w(a.width))); break;
      case 11:
        pool.push_back(b.mux(pick_w(1), a, pick_w(a.width)));
        break;
      case 12:
        if (a.width > 1)
          pool.push_back(
              b.slice(a, a.width - 1,
                      static_cast<unsigned>(rng() % a.width)));
        break;
      case 13: pool.push_back(b.concat({a, pick()})); break;
    }
    if (pool.back().width > 40)
      pool.back() = b.trunc(pool.back(), 40);  // keep widths sane
  }
  for (unsigned i = 0; i < regs.size(); ++i)
    b.connect(regs[i], pick_w(regs[i].width));
  const unsigned n_outputs = 1 + static_cast<unsigned>(rng() % 4);
  for (unsigned i = 0; i < n_outputs; ++i)
    b.output("out" + std::to_string(i), pick());
  return b.take();
}

class FuzzLowering : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzLowering, RtlAndGateAgree) {
  std::mt19937_64 rng(GetParam() * 7919 + 3);
  const rtl::Module m = random_module(rng, 40);
  rtl::Simulator ref(m);
  gate::Simulator dut(gate::lower_to_gates(m));
  for (unsigned cycle = 0; cycle < 120; ++cycle) {
    for (const auto& in : m.inputs()) {
      const unsigned w = m.node(in.node).width;
      rtl::Bits v(w);
      for (unsigned i = 0; i < w; ++i) v.set_bit(i, (rng() & 1) != 0);
      ref.set_input(in.name, v);
      dut.set_input(in.name, v);
    }
    for (const auto& out : m.outputs()) {
      ASSERT_TRUE(ref.output(out.name) == dut.output(out.name))
          << "seed " << GetParam() << " cycle " << cycle << " output "
          << out.name;
    }
    ref.step();
    dut.step();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLowering, ::testing::Range(0u, 24u));

}  // namespace
}  // namespace osss
