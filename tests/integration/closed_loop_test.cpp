// Integration: the complete OO ExpoCU system in closed loop — synthetic
// camera, exposure control unit, bit-level I2C to the camera's register
// file.  The auto-exposure loop must drive the frame mean toward the
// target and track the day/night ambient sweep.

#include <gtest/gtest.h>

#include <cmath>

#include "expocu/expocu_sim.hpp"

namespace osss::expocu {
namespace {

TEST(ClosedLoop, ConvergesTowardTargetMean) {
  sysc::Context ctx;
  ExpoCuSystem sys(ctx);
  const std::uint16_t initial_exposure = sys.regs.exposure;
  sys.run_frames(ctx, 20);

  ASSERT_GE(sys.expocu.frames_processed(), 15u);
  ASSERT_GE(sys.expocu.frame_log().size(), 10u);
  // Early frames are far from target; late frames must be close.
  const auto& log = sys.expocu.frame_log();
  const double early = std::abs(static_cast<double>(log[1].mean) -
                                kTargetMean);
  double late = 0.0;
  for (std::size_t i = log.size() - 4; i < log.size(); ++i)
    late += std::abs(static_cast<double>(log[i].mean) - kTargetMean) / 4.0;
  EXPECT_LT(late, 40.0) << "loop did not settle near the target";
  EXPECT_LT(late, early + 5.0) << "loop did not improve";
  // The I2C path actually carried updates into the camera.
  EXPECT_GT(sys.slave.transaction_count(), 5u);
  EXPECT_NE(sys.regs.exposure, initial_exposure);
}

TEST(ClosedLoop, TracksAmbientSweep) {
  sysc::Context ctx;
  ExpoCuSystem sys(ctx);
  sys.run_frames(ctx, 110);  // more than one full ambient period
  const auto& log = sys.expocu.frame_log();
  ASSERT_GT(log.size(), 90u);
  // After initial convergence the mean must stay in a controlled band
  // even though ambient light swings by ~10x.
  unsigned in_band = 0;
  unsigned considered = 0;
  for (std::size_t i = 15; i < log.size(); ++i) {
    ++considered;
    if (std::abs(static_cast<double>(log[i].mean) - kTargetMean) < 48)
      ++in_band;
  }
  EXPECT_GT(static_cast<double>(in_band) / considered, 0.8);
}

TEST(ClosedLoop, I2cWritesMatchControllerState) {
  sysc::Context ctx;
  ExpoCuSystem sys(ctx);
  sys.run_frames(ctx, 10);
  // After the last completed transaction, the camera registers equal the
  // controller's latest settings (or at most one update behind).
  const bool current =
      sys.regs.exposure == sys.expocu.exposure() &&
      sys.regs.gain == sys.expocu.gain();
  EXPECT_TRUE(current || sys.expocu.master().busy());
}

TEST(ClosedLoop, StatsLogIsConsistent) {
  sysc::Context ctx;
  ExpoCuSystem sys(ctx);
  sys.run_frames(ctx, 8);
  for (const FrameStats& s : sys.expocu.frame_log()) {
    EXPECT_LE(s.dark, kPixelsPerFrame);
    EXPECT_LE(s.bright, kPixelsPerFrame);
    EXPECT_LE(static_cast<unsigned>(s.dark) + s.bright, kPixelsPerFrame);
  }
}

}  // namespace
}  // namespace osss::expocu
