// Integration at RTL level: the synthesized OSSS-flow modules wired as a
// pipeline (camera pixels -> histogram -> threshold -> param calc) and
// driven with the same synthetic camera frames as the OO model.  The
// exposure trajectory of the hardware pipeline must match the executable
// specification (ae_law on per-frame stats) frame for frame.

#include <gtest/gtest.h>

#include <array>

#include "expocu/ae_law.hpp"
#include "expocu/camera_model.hpp"
#include "expocu/hw.hpp"
#include "hls/synth.hpp"
#include "rtl/sim.hpp"

namespace osss::expocu {
namespace {

TEST(RtlPipeline, ExposureTrajectoryMatchesSpec) {
  rtl::Simulator hist(build_histogram_rtl());
  rtl::Simulator thresh(hls::synthesize(build_threshold_osss()));
  rtl::Simulator param(hls::synthesize(build_param_calc_osss()));

  CameraRegisters regs;  // fixed camera settings: open-loop stimulus
  AeState spec;
  unsigned frames_checked = 0;

  std::array<std::uint16_t, kHistBins> frame_hist{};
  std::array<std::uint16_t, kHistBins> prev_hist{};
  for (unsigned frame = 0; frame < 6; ++frame) {
    frame_hist.fill(0);
    // Stream one frame plus blanking through the pipeline, cycle by cycle.
    const unsigned cycles = kPixelsPerFrame + 30;
    for (unsigned i = 0; i < cycles; ++i) {
      const bool valid = i < kPixelsPerFrame;
      unsigned pixel = 0;
      if (valid) {
        const unsigned x = i % kFrameWidth;
        const unsigned y = i / kFrameWidth;
        pixel = CameraModel::sensor_value(x, y, frame, regs);
        ++frame_hist[pixel >> (kPixelBits - kHistBinBits)];
      }
      hist.set_input("pixel", pixel);
      hist.set_input("pixel_valid", valid ? 1 : 0);
      hist.set_input("vsync", (valid && i == 0) ? 1 : 0);
      hist.step();
      thresh.set_input("bin_valid", hist.output("bin_valid"));
      thresh.set_input("bin_index", hist.output("bin_index"));
      thresh.set_input("bin_count", hist.output("bin_count"));
      thresh.set_input("frame_done", hist.output("frame_done"));
      thresh.step();
      param.set_input("mean", thresh.output("mean"));
      param.set_input("ready", thresh.output("ready"));
      param.step();
    }
    // The histogram streamed during frame N belongs to frame N-1 (an
    // all-zero bootstrap histogram for frame 0 — the hardware's first
    // ready pulse carries mean 0, and the spec must take that step too).
    const FrameStats expect_prev = stats_from_histogram(prev_hist);
    spec = ae_step(spec, expect_prev.mean);
    if (frame > 0) {
      EXPECT_EQ(thresh.output("mean").to_u64(), expect_prev.mean)
          << "frame " << frame;
      EXPECT_EQ(param.output("exposure").to_u64(), spec.exposure)
          << "frame " << frame;
      EXPECT_EQ(param.output("gain").to_u64(), spec.gain)
          << "frame " << frame;
      ++frames_checked;
    }
    prev_hist = frame_hist;
  }
  EXPECT_GE(frames_checked, 4u);
}

TEST(RtlPipeline, HistogramCountsFullFrames) {
  rtl::Simulator hist(build_histogram_rtl());
  CameraRegisters regs;
  std::array<std::uint16_t, kHistBins> streamed{};
  std::array<std::uint16_t, kHistBins> expect{};
  for (unsigned frame = 0; frame < 2; ++frame) {
    for (unsigned i = 0; i < kPixelsPerFrame; ++i) {
      const unsigned x = i % kFrameWidth;
      const unsigned y = i / kFrameWidth;
      const unsigned pixel = CameraModel::sensor_value(x, y, frame, regs);
      if (frame == 0)
        ++expect[pixel >> (kPixelBits - kHistBinBits)];
      hist.set_input("pixel", pixel);
      hist.set_input("pixel_valid", 1);
      hist.set_input("vsync", i == 0 ? 1 : 0);
      hist.step();
      if (hist.output("bin_valid").to_u64() == 1u) {
        streamed[hist.output("bin_index").to_u64()] =
            static_cast<std::uint16_t>(hist.output("bin_count").to_u64());
      }
    }
  }
  // During frame 1 the histogram of frame 0 streamed out.
  for (unsigned bin = 0; bin < kHistBins; ++bin)
    EXPECT_EQ(streamed[bin], expect[bin]) << "bin " << bin;
}

}  // namespace
}  // namespace osss::expocu
