// Work-stealing pool: exactly-once execution, ordered results, ordered
// reduction that is bit-identical for every thread count, futures and
// exception propagation.

#include "par/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

namespace osss::par {
namespace {

TEST(Pool, SizeMatchesConstruction) {
  EXPECT_EQ(Pool(1).size(), 1u);
  EXPECT_EQ(Pool(4).size(), 4u);
}

TEST(Pool, ParallelForRunsEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    Pool pool(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                   << " threads";
  }
}

TEST(Pool, ParallelForHandlesEdgeSizes) {
  Pool pool(4);
  std::atomic<int> ran{0};
  pool.parallel_for(0, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
}

TEST(Pool, ParallelMapPreservesIndexOrder) {
  Pool pool(4);
  const std::vector<int> out = pool.parallel_map<int>(
      100, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(Pool, OrderedReduceIsIdenticalForEveryThreadCount) {
  // String concatenation is non-commutative: any reordering of the fold
  // would change the result, so equality across pool sizes proves the
  // determinism contract.
  const auto campaign = [](unsigned threads) {
    Pool pool(threads);
    return pool.parallel_reduce<std::string, std::string>(
        26, [](std::size_t i) { return std::string(1, char('a' + i)); },
        std::string(),
        [](std::string acc, std::string part) { return acc + part; });
  };
  const std::string serial = campaign(1);
  EXPECT_EQ(serial, "abcdefghijklmnopqrstuvwxyz");
  EXPECT_EQ(campaign(2), serial);
  EXPECT_EQ(campaign(8), serial);
}

TEST(Pool, SubmitReturnsWorkingFuture) {
  for (const unsigned threads : {1u, 4u}) {
    Pool pool(threads);
    std::atomic<int> done{0};
    std::future<void> f = pool.submit([&] { done.store(42); });
    f.wait();
    EXPECT_EQ(done.load(), 42) << threads << " threads";
  }
}

TEST(Pool, SubmitPropagatesExceptionThroughFuture) {
  Pool pool(2);
  std::future<void> f =
      pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(Pool, ParallelForRethrowsFirstBodyException) {
  for (const unsigned threads : {1u, 4u}) {
    Pool pool(threads);
    std::atomic<int> ran{0};
    try {
      pool.parallel_for(64, [&](std::size_t i) {
        ran.fetch_add(1);
        if (i == 13) throw std::runtime_error("boom");
      });
      FAIL() << "expected parallel_for to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom");
    }
    // Every chunk still retires (no hung workers) even when one throws.
    EXPECT_GT(ran.load(), 0);
  }
}

TEST(Pool, CountsExecutedTasks) {
  Pool pool(4);
  pool.parallel_for(256, [](std::size_t) {});
  const Pool::Stats s = pool.stats();
  EXPECT_GT(s.executed, 0u);
  EXPECT_GE(s.steals * 2, s.stolen_tasks == 0 ? 0 : s.steals);  // sane pair
}

TEST(Pool, GlobalPoolIsUsable) {
  std::atomic<int> n{0};
  Pool::global().parallel_for(10, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 10);
}

}  // namespace
}  // namespace osss::par
