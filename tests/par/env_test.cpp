// Hardened numeric environment parsing: garbage, negatives and overflow
// must be rejected or clamped with a warning, never silently truncated the
// way prefix-atoi parsing used to.

#include "par/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "par/pool.hpp"
#include "verify/stimgen.hpp"

namespace osss::par {
namespace {

class EnvGuard {
public:
  explicit EnvGuard(const char* var) : var_(var) {
    if (const char* old = std::getenv(var)) old_ = old;
    unsetenv(var);
  }
  ~EnvGuard() {
    if (old_.empty())
      unsetenv(var_);
    else
      setenv(var_, old_.c_str(), 1);
  }
  void set(const char* value) { setenv(var_, value, 1); }

private:
  const char* var_;
  std::string old_;
};

TEST(ParseU64, AcceptsPlainDecimal) {
  const EnvValue v = parse_u64("42", 0, 100);
  EXPECT_EQ(v.status, EnvParseStatus::kOk);
  EXPECT_EQ(v.value, 42u);
  EXPECT_FALSE(v.clamped);
}

TEST(ParseU64, AcceptsSurroundingWhitespace) {
  const EnvValue v = parse_u64("  42\t", 0, 100);
  EXPECT_EQ(v.status, EnvParseStatus::kOk);
  EXPECT_EQ(v.value, 42u);
}

TEST(ParseU64, AcceptsHexAndOctal) {
  EXPECT_EQ(parse_u64("0x10", 0, 100).value, 16u);
  EXPECT_EQ(parse_u64("010", 0, 100).value, 8u);
}

TEST(ParseU64, RejectsGarbage) {
  EXPECT_EQ(parse_u64("abc", 0, 100).status, EnvParseStatus::kMalformed);
  EXPECT_EQ(parse_u64("", 0, 100).status, EnvParseStatus::kMalformed);
  EXPECT_EQ(parse_u64("   ", 0, 100).status, EnvParseStatus::kMalformed);
}

TEST(ParseU64, RejectsTrailingJunk) {
  // strtoull would happily parse "12abc" as 12 — the strict parser must not.
  EXPECT_EQ(parse_u64("12abc", 0, 100).status, EnvParseStatus::kMalformed);
  EXPECT_EQ(parse_u64("3.5", 0, 100).status, EnvParseStatus::kMalformed);
}

TEST(ParseU64, RejectsNegative) {
  // strtoull wraps "-3" to 2^64-3; an unsigned knob must reject it instead.
  EXPECT_EQ(parse_u64("-3", 0, 100).status, EnvParseStatus::kNegative);
  EXPECT_EQ(parse_u64(" -1", 0, 100).status, EnvParseStatus::kNegative);
}

TEST(ParseU64, OverflowClampsToHi) {
  const EnvValue v = parse_u64("99999999999999999999999999", 1, 100);
  EXPECT_EQ(v.status, EnvParseStatus::kOverflow);
  EXPECT_EQ(v.value, 100u);
  EXPECT_TRUE(v.clamped);
}

TEST(ParseU64, ClampsIntoRange) {
  const EnvValue lo = parse_u64("1", 4, 16);
  EXPECT_EQ(lo.status, EnvParseStatus::kOk);
  EXPECT_EQ(lo.value, 4u);
  EXPECT_TRUE(lo.clamped);
  const EnvValue hi = parse_u64("500", 4, 16);
  EXPECT_EQ(hi.value, 16u);
  EXPECT_TRUE(hi.clamped);
}

TEST(EnvU64, UnsetUsesFallbackSilently) {
  EnvGuard guard("OSSS_TEST_KNOB");
  EXPECT_EQ(env_u64("OSSS_TEST_KNOB", 7, 0, 100), 7u);
}

TEST(EnvU64, MalformedFallsBack) {
  EnvGuard guard("OSSS_TEST_KNOB");
  guard.set("not-a-number");
  EXPECT_EQ(env_u64("OSSS_TEST_KNOB", 7, 0, 100), 7u);
  guard.set("-4");
  EXPECT_EQ(env_u64("OSSS_TEST_KNOB", 7, 0, 100), 7u);
}

TEST(EnvU64, ValidValueWins) {
  EnvGuard guard("OSSS_TEST_KNOB");
  guard.set("33");
  EXPECT_EQ(env_u64("OSSS_TEST_KNOB", 7, 0, 100), 33u);
}

TEST(EnvU64, OutOfRangeClamps) {
  EnvGuard guard("OSSS_TEST_KNOB");
  guard.set("5000");
  EXPECT_EQ(env_u64("OSSS_TEST_KNOB", 7, 0, 100), 100u);
  guard.set("18446744073709551616");  // 2^64
  EXPECT_EQ(env_u64("OSSS_TEST_KNOB", 7, 0, 100), 100u);
}

TEST(EnvThreads, ClampsAndFallsBack) {
  EnvGuard guard("OSSS_THREADS");
  guard.set("0");
  EXPECT_EQ(env_threads(4), 1u);  // clamped up to the [1, 256] floor
  guard.set("3");
  EXPECT_EQ(env_threads(4), 3u);
  guard.set("bogus");
  EXPECT_EQ(env_threads(4), 4u);
  guard.set("100000");
  EXPECT_EQ(env_threads(4), 256u);
}

TEST(EnvFuzzKnobs, SeedAndItersAreHardened) {
  EnvGuard seed_guard("OSSS_FUZZ_SEED");
  EnvGuard iters_guard("OSSS_FUZZ_ITERS");

  EXPECT_EQ(verify::env_seed(11), 11u);
  seed_guard.set("123");
  EXPECT_EQ(verify::env_seed(11), 123u);
  seed_guard.set("123junk");
  EXPECT_EQ(verify::env_seed(11), 11u);
  seed_guard.set("-9");
  EXPECT_EQ(verify::env_seed(11), 11u);

  EXPECT_EQ(verify::env_iters(10), 10u);
  iters_guard.set("3");
  EXPECT_EQ(verify::env_iters(10), 30u);
  iters_guard.set("oops");
  EXPECT_EQ(verify::env_iters(10), 10u);
  iters_guard.set("999999999");  // multiplier clamped, product capped at 1e6
  EXPECT_EQ(verify::env_iters(10), 1000000u);
}

}  // namespace
}  // namespace osss::par
