// Batch simulation across the pool: block results must match a hand-rolled
// serial simulator exactly, be bit-identical for every pool size, agree
// between lane and scalar modes, and reject malformed blocks.

#include "par/batch.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "gate/lower.hpp"
#include "gate/sim.hpp"
#include "par/pool.hpp"
#include "rtl/builder.hpp"
#include "rtl/sim.hpp"

namespace osss::par {
namespace {

// Gated accumulator: inputs en[1], d[8] (declaration order), output acc[8].
rtl::Module accumulator() {
  rtl::Builder b("acc");
  rtl::Wire en = b.input("en", 1);
  rtl::Wire d = b.input("d", 8);
  rtl::Wire q = b.reg("acc", 8);
  b.connect(q, b.mux(en, b.add(q, d), q));
  b.output("acc", q);
  return b.take();
}

std::vector<StimulusBlock> make_scalar_blocks(unsigned blocks, unsigned cycles,
                                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<StimulusBlock> out;
  for (unsigned i = 0; i < blocks; ++i) {
    StimulusBlock b = StimulusBlock::make(cycles, 2);
    for (unsigned c = 0; c < cycles; ++c) {
      b.in_at(c, 0) = rng() & 1;
      b.in_at(c, 1) = rng() & 0xff;
    }
    out.push_back(std::move(b));
  }
  return out;
}

TEST(Batch, GateScalarMatchesSerialReference) {
  const gate::Netlist nl = gate::lower_to_gates(accumulator());
  std::vector<StimulusBlock> blocks = make_scalar_blocks(6, 40, 7);
  const std::vector<StimulusBlock> stim = blocks;  // pristine inputs

  Pool pool(4);
  gate::run_batch(nl, gate::SimMode::kLevelized, blocks, &pool);

  gate::Simulator ref(nl);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    ref.reset();
    for (unsigned c = 0; c < stim[i].cycles; ++c) {
      ref.set_input("en", stim[i].in_at(c, 0));
      ref.set_input("d", stim[i].in_at(c, 1));
      ref.step();
      ASSERT_EQ(blocks[i].out_at(c, 0), ref.output("acc").to_u64())
          << "block " << i << " cycle " << c;
    }
  }
}

TEST(Batch, GateScalarIdenticalForEveryPoolSize) {
  const gate::Netlist nl = gate::lower_to_gates(accumulator());
  std::vector<StimulusBlock> serial = make_scalar_blocks(9, 64, 11);
  std::vector<StimulusBlock> wide = serial;
  Pool p1(1), p8(8);
  gate::run_batch(nl, gate::SimMode::kEvent, serial, &p1);
  gate::run_batch(nl, gate::SimMode::kEvent, wide, &p8);
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i].out, wide[i].out) << "block " << i;
}

TEST(Batch, GateScalarMasksOversizedValues) {
  // A scalar slot may carry a full random u64; the runner must mask it to
  // the bus width instead of tripping the simulator's width check.
  const gate::Netlist nl = gate::lower_to_gates(accumulator());
  std::vector<StimulusBlock> blocks(1, StimulusBlock::make(4, 2));
  for (unsigned c = 0; c < 4; ++c) {
    blocks[0].in_at(c, 0) = 0xffffffffffffffffull;  // en: masked to 1
    blocks[0].in_at(c, 1) = 0xa5a5a5a5a5a5a5a5ull;  // d: masked to 0xa5
  }
  Pool pool(1);
  ASSERT_NO_THROW(gate::run_batch(nl, gate::SimMode::kLevelized, blocks,
                                  &pool));
  EXPECT_EQ(blocks[0].out_at(3, 0), (4 * 0xa5) & 0xff);
}

TEST(Batch, GateLaneModeAgreesWithScalar) {
  const gate::Netlist nl = gate::lower_to_gates(accumulator());
  constexpr unsigned kCycles = 32;
  // 9 lane slots: en bit (slot 0) then d bits (slots 1..8), one 64-lane
  // word each.
  std::mt19937_64 rng(23);
  std::vector<StimulusBlock> lane_blocks(
      1, StimulusBlock::make(kCycles, 9, gate::Simulator::kLanes));
  for (unsigned c = 0; c < kCycles; ++c)
    for (unsigned s = 0; s < 9; ++s) lane_blocks[0].in_at(c, s) = rng();
  Pool pool(2);
  gate::run_batch(nl, gate::SimMode::kBitParallel, lane_blocks, &pool);
  ASSERT_EQ(lane_blocks[0].out_slots, 8u);

  for (const unsigned lane : {0u, 17u, 63u}) {
    std::vector<StimulusBlock> scalar(1, StimulusBlock::make(kCycles, 2));
    for (unsigned c = 0; c < kCycles; ++c) {
      scalar[0].in_at(c, 0) = (lane_blocks[0].in_at(c, 0) >> lane) & 1;
      std::uint64_t d = 0;
      for (unsigned bit = 0; bit < 8; ++bit)
        d |= ((lane_blocks[0].in_at(c, 1 + bit) >> lane) & 1) << bit;
      scalar[0].in_at(c, 1) = d;
    }
    gate::run_batch(nl, gate::SimMode::kLevelized, scalar, &pool);
    for (unsigned c = 0; c < kCycles; ++c) {
      std::uint64_t acc = 0;
      for (unsigned bit = 0; bit < 8; ++bit)
        acc |= ((lane_blocks[0].out_at(c, bit) >> lane) & 1) << bit;
      ASSERT_EQ(acc, scalar[0].out_at(c, 0))
          << "lane " << lane << " cycle " << c;
    }
  }
}

TEST(Batch, RtlTapeMatchesInterpAndSerialReference) {
  const rtl::Module m = accumulator();
  std::vector<StimulusBlock> tape = make_scalar_blocks(5, 48, 31);
  std::vector<StimulusBlock> interp = tape;
  const std::vector<StimulusBlock> stim = tape;
  Pool pool(4);
  rtl::run_batch(m, rtl::SimMode::kTape, tape, &pool);
  rtl::run_batch(m, rtl::SimMode::kInterp, interp, &pool);
  for (std::size_t i = 0; i < tape.size(); ++i)
    EXPECT_EQ(tape[i].out, interp[i].out) << "block " << i;

  rtl::Simulator ref(m, rtl::SimMode::kInterp);
  const rtl::InputHandle en = ref.input_handle("en");
  const rtl::InputHandle d = ref.input_handle("d");
  const rtl::OutputHandle acc = ref.output_handle("acc");
  for (std::size_t i = 0; i < tape.size(); ++i) {
    ref.reset();
    for (unsigned c = 0; c < stim[i].cycles; ++c) {
      ref.set_input(en, stim[i].in_at(c, 0));
      ref.set_input(d, stim[i].in_at(c, 1));
      ref.step();
      ASSERT_EQ(tape[i].out_at(c, 0), ref.output_u64(acc))
          << "block " << i << " cycle " << c;
    }
  }
}

TEST(Batch, RejectsMalformedBlocks) {
  const rtl::Module m = accumulator();
  const gate::Netlist nl = gate::lower_to_gates(accumulator());
  Pool pool(1);

  std::vector<StimulusBlock> bad_lanes(1, StimulusBlock::make(4, 2, 7));
  EXPECT_THROW(gate::run_batch(nl, gate::SimMode::kLevelized, bad_lanes,
                               &pool),
               std::invalid_argument);

  // 64-lane blocks need the wide engines.
  std::vector<StimulusBlock> lanes(
      1, StimulusBlock::make(4, 9, gate::Simulator::kLanes));
  EXPECT_THROW(gate::run_batch(nl, gate::SimMode::kLevelized, lanes, &pool),
               std::invalid_argument);
  std::vector<StimulusBlock> rlanes(1, StimulusBlock::make(4, 10, 64));
  EXPECT_THROW(rtl::run_batch(m, rtl::SimMode::kInterp, rlanes, &pool),
               std::invalid_argument);

  std::vector<StimulusBlock> bad_shape(1, StimulusBlock::make(4, 3));
  EXPECT_THROW(gate::run_batch(nl, gate::SimMode::kLevelized, bad_shape,
                               &pool),
               std::invalid_argument);

  std::vector<StimulusBlock> mixed;
  mixed.push_back(StimulusBlock::make(4, 2));
  mixed.push_back(StimulusBlock::make(4, 9, gate::Simulator::kLanes));
  EXPECT_THROW(gate::run_batch(nl, gate::SimMode::kBitParallel, mixed, &pool),
               std::invalid_argument);
}

}  // namespace
}  // namespace osss::par
