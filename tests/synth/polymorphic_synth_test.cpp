// Tests for polymorphic dispatch synthesis (§8 mux insertion) — the ALU
// example of §6, verified against the interpreter and against a manual
// mux-based design for the R5 "only the muxes" overhead property.

#include "synth/polymorphic_synth.hpp"

#include <gtest/gtest.h>

#include <random>

#include "gate/lower.hpp"
#include "gate/timing.hpp"
#include "rtl/sim.hpp"

namespace osss::synth {
namespace {

using meta::Bits;
using rtl::Builder;
using rtl::Wire;

constexpr unsigned W = 8;

/// Base AluOp: one member (the accumulated result), one virtual Execute.
meta::ClassPtr make_alu_base() {
  auto base = std::make_shared<meta::ClassDesc>("AluOp");
  base->add_member("result", W);
  meta::MethodDesc exec;
  exec.name = "Execute";
  exec.params = {{"a", W}, {"b", W}};
  exec.return_width = W;
  exec.is_virtual = true;
  exec.body = {meta::return_stmt(meta::constant(W, 0))};
  base->add_method(std::move(exec));
  return base;
}

meta::ClassPtr make_alu_variant(const meta::ClassPtr& base,
                                const std::string& name, meta::BinOp op) {
  auto cls = std::make_shared<meta::ClassDesc>(name, base);
  meta::MethodDesc exec;
  exec.name = "Execute";
  exec.params = {{"a", W}, {"b", W}};
  exec.return_width = W;
  exec.is_virtual = true;
  exec.body = {
      meta::assign_member("result", meta::binary(op, meta::param("a", W),
                                                 meta::param("b", W))),
      meta::return_stmt(meta::member("result", W))};
  cls->add_method(std::move(exec));
  return cls;
}

Hierarchy make_alu_hierarchy() {
  Hierarchy h;
  h.base = make_alu_base();
  h.variants = {make_alu_variant(h.base, "AluAdd", meta::BinOp::kAdd),
                make_alu_variant(h.base, "AluSub", meta::BinOp::kSub),
                make_alu_variant(h.base, "AluMul", meta::BinOp::kMul)};
  return h;
}

TEST(PolymorphicSynth, LayoutAndEncode) {
  const Hierarchy h = make_alu_hierarchy();
  EXPECT_EQ(h.tag_width(), 2u);
  EXPECT_EQ(h.payload_width(), W);
  EXPECT_EQ(h.total_width(), W + 2);
  const Bits obj = h.encode(2, Bits(W, 0x5a));
  EXPECT_EQ(h.tag_of(obj), 2u);
  EXPECT_EQ(h.state_of(obj).to_u64(), 0x5au);
  EXPECT_THROW(h.encode(3, Bits(W, 0)), std::logic_error);
  EXPECT_THROW(h.encode(0, Bits(W + 1, 0)), std::logic_error);
}

TEST(PolymorphicSynth, ValidateCatchesBadHierarchies) {
  Hierarchy h = make_alu_hierarchy();
  EXPECT_NO_THROW(h.validate());
  // A variant that does not implement the virtual method.
  auto lazy = std::make_shared<meta::ClassDesc>("Lazy", h.base);
  Hierarchy bad1 = h;
  bad1.variants.push_back(lazy);
  // Lazy inherits Execute from the base, so it actually validates; a truly
  // unrelated class must not.
  EXPECT_NO_THROW(bad1.validate());
  auto stranger = std::make_shared<meta::ClassDesc>("Stranger");
  stranger->add_member("x", 4);
  Hierarchy bad2 = h;
  bad2.variants.push_back(stranger);
  EXPECT_THROW(bad2.validate(), std::logic_error);
  Hierarchy bad3;
  EXPECT_THROW(bad3.validate(), std::logic_error);
}

/// Combinational wrapper exposing a virtual Execute call.
rtl::Module virtual_alu_module(const Hierarchy& h) {
  Builder b("poly_alu");
  meta::RtlEmitter em(b);
  const Wire obj = b.input("obj", h.total_width());
  const Wire a = b.input("a", W);
  const Wire bb = b.input("b", W);
  const VirtualCallLogic call =
      synthesize_virtual_call(em, h, "Execute", obj, {a, bb});
  b.output("obj_out", call.obj_out);
  b.output("r", call.ret);
  return b.take();
}

TEST(PolymorphicSynth, DispatchMatchesInterpreter) {
  const Hierarchy h = make_alu_hierarchy();
  rtl::Simulator sim(virtual_alu_module(h));
  std::mt19937_64 rng(21);
  for (int iter = 0; iter < 300; ++iter) {
    const unsigned tag = static_cast<unsigned>(rng() % h.variants.size());
    const Bits state(W, rng());
    const Bits a(W, rng());
    const Bits b(W, rng());
    sim.set_input("obj", h.encode(tag, state));
    sim.set_input("a", a);
    sim.set_input("b", b);
    const auto expect = h.variants[tag]->call("Execute", state, {a, b});
    EXPECT_TRUE(sim.output("r") == *expect.ret) << "tag " << tag;
    const Bits obj_out = sim.output("obj_out");
    EXPECT_EQ(h.tag_of(obj_out), tag);  // dispatch never changes the tag
    EXPECT_TRUE(h.state_of(obj_out) == expect.state);
  }
}

TEST(PolymorphicSynth, OverheadIsExactlyTheManualMuxes) {
  // A designer without polymorphism writes the same thing by hand: all
  // three operations plus result/select muxes.  Gate counts must match.
  const Hierarchy h = make_alu_hierarchy();
  const gate::Netlist poly_nl = gate::lower_to_gates(virtual_alu_module(h));

  Builder b("manual_alu");
  const Wire obj = b.input("obj", h.total_width());
  const Wire a = b.input("a", W);
  const Wire bb = b.input("b", W);
  const Wire tag = b.slice(obj, W + 1, W);
  const Wire payload = b.slice(obj, W - 1, 0);
  const Wire r_add = b.add(a, bb);
  const Wire r_sub = b.sub(a, bb);
  const Wire r_mul = b.mul(a, bb);
  Wire result = payload;  // unreachable default, as in the generated code
  result = b.mux(b.eq(tag, b.constant(2, 0)), r_add, result);
  result = b.mux(b.eq(tag, b.constant(2, 1)), r_sub, result);
  result = b.mux(b.eq(tag, b.constant(2, 2)), r_mul, result);
  b.output("obj_out", b.concat({tag, result}));
  b.output("r", result);
  const gate::Netlist manual_nl = gate::lower_to_gates(b.take());

  // The generated design returns 0 for the unreachable tag and keeps the
  // old payload; the manual one reuses the result wire — so allow the
  // default-handling muxes as the only difference.
  const auto lib = gate::Library::generic();
  const double poly_area = lib.area_of(poly_nl);
  const double manual_area = lib.area_of(manual_nl);
  EXPECT_NEAR(poly_area, manual_area, 0.15 * manual_area)
      << "poly=" << poly_area << " manual=" << manual_area;
}

TEST(PolymorphicSynth, SingleVariantDegeneratesToDirectCall) {
  Hierarchy h;
  h.base = make_alu_base();
  h.variants = {make_alu_variant(h.base, "AluAdd", meta::BinOp::kAdd)};
  EXPECT_EQ(h.tag_width(), 1u);
  rtl::Simulator sim(virtual_alu_module(h));
  sim.set_input("obj", h.encode(0, Bits(W, 0)));
  sim.set_input("a", 20);
  sim.set_input("b", 22);
  EXPECT_EQ(sim.output("r").to_u64(), 42u);
}

}  // namespace
}  // namespace osss::synth
