// Snapshot-style tests pinning the "readable standard SystemC" output of
// the synthesizer to the paper's Figure 7 conventions.

#include "synth/systemc_emit.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"

namespace osss::synth {
namespace {

TEST(SystemCEmit, ResetResolvesToThisAssignment) {
  const meta::ClassDesc cls = testutil::make_sync_register(4, 0);
  const std::string code = emit_resolved_method(cls, "Reset");
  EXPECT_NE(code.find("void _SyncRegister_4_0_Reset_1_"), std::string::npos)
      << code;
  EXPECT_NE(code.find("sc_biguint< 4 > & _this_"), std::string::npos);
  EXPECT_NE(code.find("_this_.range(3, 0) = 0x0;"), std::string::npos);
}

TEST(SystemCEmit, WriteUsesSliceShift) {
  const meta::ClassDesc cls = testutil::make_sync_register(4, 0);
  const std::string code = emit_resolved_method(cls, "Write");
  // The Figure 7 pattern: new value into bit 0, old value shifted up.
  EXPECT_NE(code.find("const sc_bit & NewValue"), std::string::npos) << code;
  EXPECT_NE(code.find("_this_.range(2, 0)"), std::string::npos);
  EXPECT_NE(code.find("NewValue"), std::string::npos);
}

TEST(SystemCEmit, ConstMethodTakesConstThis) {
  const meta::ClassDesc cls = testutil::make_sync_register(4, 0);
  const std::string code = emit_resolved_method(cls, "RisingEdge");
  EXPECT_NE(code.find("bool _SyncRegister_4_0_RisingEdge_1_"),
            std::string::npos)
      << code;
  EXPECT_NE(code.find("const sc_biguint< 4 > & _this_"), std::string::npos);
  EXPECT_NE(code.find("return"), std::string::npos);
}

TEST(SystemCEmit, WholeClassEmitsEveryMethodOnce) {
  const meta::ClassDesc cls = testutil::make_sync_register(4, 0);
  const std::string code = emit_resolved_class(cls);
  EXPECT_NE(code.find("Resolved by the OSSS synthesizer"), std::string::npos);
  EXPECT_NE(code.find("_Reset_1_"), std::string::npos);
  EXPECT_NE(code.find("_Write_1_"), std::string::npos);
  EXPECT_NE(code.find("_RisingEdge_1_"), std::string::npos);
  // Exactly one definition of each.
  const auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = code.find(needle); pos != std::string::npos;
         pos = code.find(needle, pos + 1))
      ++n;
    return n;
  };
  EXPECT_EQ(count("void _SyncRegister_4_0_Reset_1_"), 1u);
}

TEST(SystemCEmit, OverriddenMethodEmitsDerivedBody) {
  auto base = std::make_shared<meta::ClassDesc>("Base");
  base->add_member("x", 4);
  meta::MethodDesc f;
  f.name = "F";
  f.return_width = 4;
  f.is_const = true;
  f.body = {meta::return_stmt(meta::constant(4, 1))};
  base->add_method(f);
  meta::ClassDesc derived("Derived", base);
  meta::MethodDesc g = f;
  g.body = {meta::return_stmt(meta::constant(4, 2))};
  derived.add_method(std::move(g));
  const std::string code = emit_resolved_class(derived);
  EXPECT_NE(code.find("return 0x2;"), std::string::npos) << code;
  EXPECT_EQ(code.find("return 0x1;"), std::string::npos) << code;
}

TEST(SystemCEmit, LocalsDeclaredOnFirstAssignment) {
  meta::ClassDesc cls("Temp");
  cls.add_member("v", 8);
  meta::MethodDesc m;
  m.name = "Twice";
  m.body = {
      meta::assign_local("t", meta::add(meta::member("v", 8),
                                        meta::constant(8, 1))),
      meta::assign_local("t", meta::add(meta::local("t", 8),
                                        meta::local("t", 8))),
      meta::assign_member("v", meta::local("t", 8))};
  cls.add_method(std::move(m));
  const std::string code = emit_resolved_method(cls, "Twice");
  EXPECT_NE(code.find("sc_biguint< 8 > t ="), std::string::npos) << code;
  EXPECT_NE(code.find("  t = "), std::string::npos);
  EXPECT_THROW(emit_resolved_method(cls, "Nope"), std::logic_error);
}

}  // namespace
}  // namespace osss::synth
