// Snapshot tests for the Figure-8-style resolved SC_MODULE emitter.

#include <gtest/gtest.h>

#include "expocu/hw.hpp"
#include "synth/systemc_emit.hpp"

namespace osss::synth {
namespace {

TEST(ModuleEmit, CameraSyncLooksLikeFigureEight) {
  const std::string code =
      emit_resolved_module(osss::expocu::build_camera_sync_osss());
  EXPECT_NE(code.find("SC_MODULE( camera_sync )"), std::string::npos) << code;
  EXPECT_NE(code.find("SC_CTHREAD( behaviour, clk.pos() );"),
            std::string::npos);
  EXPECT_NE(code.find("watching( reset.delayed() == true );"),
            std::string::npos);
  // Objects resolved to their bit vectors (the §8 mapping, Fig. 8 style).
  EXPECT_NE(code.find("sc_biguint< 2 > hsync_sync_reg;"), std::string::npos);
  EXPECT_NE(code.find("// was: SyncRegister_2_0 object"), std::string::npos);
  // Method calls resolved to generated non-member functions.
  EXPECT_NE(code.find("_SyncRegister_2_0_Write_1_( hsync_sync_reg"),
            std::string::npos);
  EXPECT_NE(code.find("wait();"), std::string::npos);
}

TEST(ModuleEmit, PortsDeclared) {
  const std::string code =
      emit_resolved_module(osss::expocu::build_camera_sync_osss());
  EXPECT_NE(code.find("sc_in< sc_biguint<8> > data;"), std::string::npos);
  EXPECT_NE(code.find("sc_in< bool > vsync;"), std::string::npos);
  EXPECT_NE(code.find("sc_out< bool > sof;"), std::string::npos);
}

TEST(ModuleEmit, ControlFlowKeepsStructure) {
  const std::string code =
      emit_resolved_module(osss::expocu::build_i2c_master_osss());
  EXPECT_NE(code.find("goto L"), std::string::npos);  // loop back-edges
  EXPECT_NE(code.find("if ( !("), std::string::npos);
  // Several wait() levels — the protocol's phase structure survives.
  std::size_t waits = 0;
  for (std::size_t pos = code.find("wait();"); pos != std::string::npos;
       pos = code.find("wait();", pos + 1))
    ++waits;
  EXPECT_GE(waits, 10u);
}

}  // namespace
}  // namespace osss::synth
