// Tests for member-function resolution into hardware (§8) — including the
// zero-overhead property: class-resolved logic maps to exactly the gates a
// hand-written design maps to (experiment R4's core).

#include "synth/method_synth.hpp"

#include <gtest/gtest.h>

#include <random>

#include "../testutil.hpp"
#include "gate/lower.hpp"
#include "gate/timing.hpp"
#include "rtl/sim.hpp"

namespace osss::synth {
namespace {

using meta::Bits;
using rtl::Builder;
using rtl::Wire;

/// Clocked wrapper: object register updated by Write(data) each cycle,
/// RisingEdge(0) exported — the paper's `sync` module (Figs. 4/5/8).
rtl::Module sync_module_from_class(const meta::ClassDesc& cls) {
  Builder b("sync");
  meta::RtlEmitter em(b);
  const Wire data = b.input("data", 1);
  const Wire obj = b.reg("data_sync_reg", cls.data_width(),
                         cls.initial_value());
  const MethodLogic wr = synthesize_method(em, cls, "Write", obj, {data});
  b.connect(obj, wr.this_out);
  const MethodLogic edge =
      synthesize_method(em, cls, "RisingEdge", wr.this_out, {});
  b.output("edge", edge.ret);
  b.output("reg", obj);
  return b.take();
}

/// The same design hand-written in "VHDL style": explicit slices, no
/// classes anywhere.
rtl::Module sync_module_by_hand(unsigned regsize) {
  Builder b("sync_hand");
  const Wire data = b.input("data", 1);
  const Wire reg = b.reg("data_sync_reg", regsize, Bits(regsize, 0));
  const Wire shifted = b.concat({b.slice(reg, regsize - 2, 0), data});
  b.connect(reg, shifted);
  const Wire edge =
      b.and_(b.slice(shifted, 0, 0), b.not_(b.slice(shifted, 1, 1)));
  b.output("edge", edge);
  b.output("reg", reg);
  return b.take();
}

TEST(MethodSynth, MatchesInterpreterCycleByCycle) {
  const meta::ClassDesc cls = testutil::make_sync_register(4, 0);
  rtl::Simulator sim(sync_module_from_class(cls));
  Bits state = cls.initial_value();
  std::mt19937_64 rng(3);
  for (int cycle = 0; cycle < 200; ++cycle) {
    const Bits bit(1, rng() & 1);
    sim.set_input("data", bit);
    // Reference: interpreter applies Write then RisingEdge.
    const Bits next = cls.call("Write", state, {bit}).state;
    const Bits edge = *cls.call("RisingEdge", next, {}).ret;
    EXPECT_TRUE(sim.output("edge") == edge) << "cycle " << cycle;
    EXPECT_TRUE(sim.output("reg") == state) << "cycle " << cycle;
    sim.step();
    state = next;
  }
}

TEST(MethodSynth, ZeroOverheadVsHandWrittenRtl) {
  // §8: "The resolution of object-oriented design features like classes and
  // templates do not create an additional overhead."  After technology
  // mapping with structural hashing, class-resolved and hand-written
  // netlists must have identical gate counts, DFF counts and timing.
  const meta::ClassDesc cls = testutil::make_sync_register(4, 0);
  const gate::Netlist class_nl = gate::lower_to_gates(sync_module_from_class(cls));
  const gate::Netlist hand_nl = gate::lower_to_gates(sync_module_by_hand(4));
  EXPECT_EQ(class_nl.gate_count(), hand_nl.gate_count());
  EXPECT_EQ(class_nl.dff_count(), hand_nl.dff_count());
  const gate::Library lib = gate::Library::generic();
  EXPECT_DOUBLE_EQ(gate::analyze_timing(class_nl, lib).critical_path_ps,
                   gate::analyze_timing(hand_nl, lib).critical_path_ps);
}

TEST(MethodSynth, TemplateParameterForwarding) {
  // Template instantiations with different parameters give different
  // hardware; the same parameters give identical hardware.
  meta::ClassTemplate tmpl("SyncRegister",
                           [](const std::vector<std::uint64_t>& p) {
                             return testutil::make_sync_register(
                                 static_cast<unsigned>(p.at(0)), p.at(1));
                           });
  const auto a = tmpl.instantiate({4, 0});
  const auto b = tmpl.instantiate({8, 0});
  const auto nl_a = gate::lower_to_gates(sync_module_from_class(*a));
  const auto nl_b = gate::lower_to_gates(sync_module_from_class(*b));
  EXPECT_EQ(nl_a.dff_count(), 4u);
  EXPECT_EQ(nl_b.dff_count(), 8u);
  // Reset value becomes the DFF init pattern.
  const auto c = tmpl.instantiate({4, 0x5});
  const auto nl_c = gate::lower_to_gates(sync_module_from_class(*c));
  std::size_t set_bits = 0;
  for (const auto& cell : nl_c.cells())
    if (cell.kind == gate::CellKind::kDff && cell.init) ++set_bits;
  EXPECT_EQ(set_bits, 2u);  // 0b0101
}

TEST(MethodSynth, ConstMethodLeavesObjectUntouched) {
  const meta::ClassDesc cls = testutil::make_sync_register(4, 0);
  Builder b("m");
  meta::RtlEmitter em(b);
  const Wire obj = b.input("obj", 4);
  const MethodLogic logic = synthesize_method(em, cls, "RisingEdge", obj, {});
  b.output("same", b.eq(logic.this_out, obj));
  b.output("edge", logic.ret);
  rtl::Simulator sim(b.take());
  for (unsigned v = 0; v < 16; ++v) {
    sim.set_input("obj", v);
    EXPECT_EQ(sim.output("same").to_u64(), 1u);
  }
}

TEST(MethodSynth, ErrorsOnBadShapes) {
  const meta::ClassDesc cls = testutil::make_sync_register(4, 0);
  Builder b("m");
  meta::RtlEmitter em(b);
  const Wire obj = b.input("obj", 4);
  const Wire narrow = b.input("narrow", 3);
  const Wire data = b.input("data", 1);
  EXPECT_THROW(synthesize_method(em, cls, "Nope", obj, {}), std::logic_error);
  EXPECT_THROW(synthesize_method(em, cls, "Write", narrow, {data}),
               std::logic_error);
  EXPECT_THROW(synthesize_method(em, cls, "Write", obj, {}),
               std::logic_error);
  EXPECT_THROW(synthesize_method(em, cls, "Write", obj, {obj}),
               std::logic_error);
}

TEST(MethodSynth, InheritedMethodsResolveAgainstDerivedLayout) {
  auto base = std::make_shared<meta::ClassDesc>("Base");
  base->add_member("b", 8);
  meta::MethodDesc bump;
  bump.name = "Bump";
  bump.body = {meta::assign_member(
      "b", meta::add(meta::member("b", 8), meta::constant(8, 1)))};
  base->add_method(std::move(bump));

  meta::ClassDesc derived("Derived", base);
  derived.add_member("d", 4);

  Builder b("m");
  meta::RtlEmitter em(b);
  const Wire obj = b.input("obj", 12);
  const MethodLogic logic = synthesize_method(em, derived, "Bump", obj, {});
  b.output("out", logic.this_out);
  rtl::Simulator sim(b.take());
  sim.set_input("obj", Bits(12, 0x3ff));  // d=0x3, b=0xff
  const Bits out = sim.output("out");
  EXPECT_EQ(out.slice(7, 0).to_u64(), 0x00u);  // b wrapped
  EXPECT_EQ(out.slice(11, 8).to_u64(), 0x3u);  // d untouched
}

}  // namespace
}  // namespace osss::synth
