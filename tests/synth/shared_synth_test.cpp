// Tests for generated shared-object (global object) modules: scheduler
// behaviour, dispatch, registered grant protocol, custom schedulers, and
// the area-grows-with-clients property behind experiment R6.

#include "synth/shared_synth.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "gate/lower.hpp"
#include "gate/timing.hpp"
#include "rtl/sim.hpp"

namespace osss::synth {
namespace {

using meta::Bits;

SharedSpec counter_spec(unsigned clients, SharedSpec::Policy policy) {
  SharedSpec spec;
  spec.name = "shared_counter";
  spec.cls = testutil::make_counter_class(8);
  spec.methods = {"Add", "Get", "Clear"};
  spec.clients = clients;
  spec.policy = policy;
  return spec;
}

TEST(SharedSynth, LayoutComputation) {
  const SharedLayout lay =
      shared_layout(counter_spec(3, SharedSpec::Policy::kRoundRobin));
  EXPECT_EQ(lay.sel_width, 2u);   // 3 methods
  EXPECT_EQ(lay.arg_width, 8u);   // Add(d8)
  EXPECT_EQ(lay.ret_width, 8u);   // Get
  EXPECT_EQ(lay.index_width, 2u);
}

TEST(SharedSynth, RoundRobinRotatesAmongRequesters) {
  const SharedSpec spec = counter_spec(3, SharedSpec::Policy::kRoundRobin);
  rtl::Simulator sim(synthesize_shared(spec));
  // All three clients request Add(1) continuously.
  for (unsigned i = 0; i < 3; ++i) {
    sim.set_input("req" + std::to_string(i), 1);
    sim.set_input("sel" + std::to_string(i), 0);  // Add
    sim.set_input("args" + std::to_string(i), 1);
  }
  std::vector<unsigned> grant_sequence;
  for (int cycle = 0; cycle < 9; ++cycle) {
    sim.step();
    for (unsigned i = 0; i < 3; ++i) {
      if (sim.output("grant" + std::to_string(i)).to_u64() == 1u)
        grant_sequence.push_back(i);
    }
  }
  ASSERT_EQ(grant_sequence.size(), 9u);  // exactly one grant per cycle
  for (std::size_t k = 0; k < grant_sequence.size(); ++k)
    EXPECT_EQ(grant_sequence[k], k % 3) << "grant " << k;
  EXPECT_EQ(sim.output("state").to_u64(), 9u);  // 9 increments happened
}

TEST(SharedSynth, StaticPriorityStarvesWhenHeld) {
  const SharedSpec spec = counter_spec(2, SharedSpec::Policy::kStaticPriority);
  rtl::Simulator sim(synthesize_shared(spec));
  for (unsigned i = 0; i < 2; ++i) {
    sim.set_input("req" + std::to_string(i), 1);
    sim.set_input("sel" + std::to_string(i), 0);
    sim.set_input("args" + std::to_string(i), 1);
  }
  sim.step(5);
  EXPECT_EQ(sim.output("grant0").to_u64(), 1u);
  EXPECT_EQ(sim.output("grant1").to_u64(), 0u);
  // Release client 0: client 1 now wins.
  sim.set_input("req0", 0);
  sim.step(2);
  EXPECT_EQ(sim.output("grant1").to_u64(), 1u);
}

TEST(SharedSynth, MethodDispatchAndReturn) {
  const SharedSpec spec = counter_spec(2, SharedSpec::Policy::kStaticPriority);
  rtl::Simulator sim(synthesize_shared(spec));
  // Client 0: Add(42).
  sim.set_input("req0", 1);
  sim.set_input("sel0", 0);
  sim.set_input("args0", 42);
  sim.step();
  EXPECT_EQ(sim.output("state").to_u64(), 42u);
  // Client 0: Get() — registered return appears with the grant.
  sim.set_input("sel0", 1);
  sim.step();
  EXPECT_EQ(sim.output("grant0").to_u64(), 1u);
  EXPECT_EQ(sim.output("ret0").to_u64(), 42u);
  // Client 0: Clear().
  sim.set_input("sel0", 2);
  sim.step();
  EXPECT_EQ(sim.output("state").to_u64(), 0u);
  // No request: nothing changes, no grants.
  sim.set_input("req0", 0);
  sim.step(3);
  EXPECT_EQ(sim.output("grant0").to_u64(), 0u);
  EXPECT_EQ(sim.output("state").to_u64(), 0u);
}

TEST(SharedSynth, IdleCyclesHoldState) {
  const SharedSpec spec = counter_spec(2, SharedSpec::Policy::kRoundRobin);
  rtl::Simulator sim(synthesize_shared(spec));
  sim.set_input("req0", 1);
  sim.set_input("sel0", 0);
  sim.set_input("args0", 7);
  sim.step();
  sim.set_input("req0", 0);
  sim.step(10);
  EXPECT_EQ(sim.output("state").to_u64(), 7u);
}

TEST(SharedSynth, CustomSchedulerGenerator) {
  // "Implement an own according to the required needs": always pick the
  // highest-index requester.
  SharedSpec spec = counter_spec(3, SharedSpec::Policy::kCustom);
  spec.custom_picker = [](rtl::Builder& b,
                          const std::vector<rtl::Wire>& reqs, rtl::Wire,
                          unsigned iw) {
    rtl::Wire winner = b.constant(iw, 0);
    for (unsigned i = 0; i < reqs.size(); ++i)
      winner = b.mux(reqs[i], b.constant(iw, i), winner);
    return winner;
  };
  rtl::Simulator sim(synthesize_shared(spec));
  for (unsigned i = 0; i < 3; ++i) {
    sim.set_input("req" + std::to_string(i), 1);
    sim.set_input("sel" + std::to_string(i), 0);
    sim.set_input("args" + std::to_string(i), 1);
  }
  sim.step(4);
  EXPECT_EQ(sim.output("grant2").to_u64(), 1u);
  EXPECT_EQ(sim.output("grant0").to_u64(), 0u);
}

TEST(SharedSynth, SchedulerLogicGrowsWithClients) {
  // §8: global objects add scheduling logic — and it scales with the
  // number of contending clients (measured fully in R6).
  const auto lib = gate::Library::generic();
  const double area2 = lib.area_of(gate::lower_to_gates(
      synthesize_shared(counter_spec(2, SharedSpec::Policy::kRoundRobin))));
  const double area4 = lib.area_of(gate::lower_to_gates(
      synthesize_shared(counter_spec(4, SharedSpec::Policy::kRoundRobin))));
  const double area8 = lib.area_of(gate::lower_to_gates(
      synthesize_shared(counter_spec(8, SharedSpec::Policy::kRoundRobin))));
  EXPECT_LT(area2, area4);
  EXPECT_LT(area4, area8);
}

TEST(SharedSynth, SpecValidation) {
  SharedSpec spec;
  EXPECT_THROW(shared_layout(spec), std::logic_error);
  spec.cls = testutil::make_counter_class(8);
  EXPECT_THROW(shared_layout(spec), std::logic_error);  // no methods
  spec.methods = {"Nope"};
  spec.clients = 2;
  EXPECT_THROW(shared_layout(spec), std::logic_error);
  spec.methods = {"Add"};
  spec.policy = SharedSpec::Policy::kCustom;
  EXPECT_THROW(synthesize_shared(spec), std::logic_error);  // no picker
}

}  // namespace
}  // namespace osss::synth
