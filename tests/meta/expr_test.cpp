// Tests for the analyzer expression/statement model: width checking,
// constant folding, symbolic execution and if-merging.

#include "meta/expr.hpp"

#include <gtest/gtest.h>

namespace osss::meta {
namespace {

TEST(Expr, ConstantFoldingAtConstruction) {
  const ExprPtr e = add(constant(8, 3), constant(8, 4));
  ASSERT_TRUE(is_const(e));
  EXPECT_EQ(e->value.to_u64(), 7u);
  EXPECT_TRUE(is_const(mul(constant(8, 200), constant(8, 2))));
  EXPECT_EQ(mul(constant(8, 200), constant(8, 2))->value.to_u64(),
            (200u * 2u) & 0xffu);
}

TEST(Expr, WidthRulesEnforced) {
  EXPECT_THROW(add(constant(8, 1), constant(9, 1)), std::invalid_argument);
  EXPECT_THROW(eq(constant(8, 1), constant(4, 1)), std::invalid_argument);
  EXPECT_THROW(cond(constant(2, 1), constant(8, 0), constant(8, 0)),
               std::invalid_argument);
  EXPECT_THROW(slice(constant(8, 0), 8, 0), std::invalid_argument);
  EXPECT_THROW(zext(constant(8, 0), 4), std::invalid_argument);
  EXPECT_NO_THROW(binary(BinOp::kShl, constant(8, 1), constant(3, 2)));
}

TEST(Expr, ComparisonResultsAreOneBit) {
  EXPECT_EQ(eq(param("a", 8), param("b", 8))->width, 1u);
  EXPECT_EQ(unary(UnOp::kRedOr, param("a", 8))->width, 1u);
}

TEST(Expr, CondSimplifications) {
  const ExprPtr a = param("a", 4);
  const ExprPtr b = param("b", 4);
  EXPECT_EQ(cond(constant(1, 1), a, b), a);
  EXPECT_EQ(cond(constant(1, 0), a, b), b);
  EXPECT_EQ(cond(param("c", 1), a, a), a);
}

TEST(Expr, FullWidthSliceIsIdentity) {
  const ExprPtr a = param("a", 8);
  EXPECT_EQ(slice(a, 7, 0), a);
}

TEST(Expr, SubstituteBindsAndFolds) {
  Env env;
  env.params["a"] = constant(8, 10);
  env.params["b"] = constant(8, 20);
  const ExprPtr e = mul(add(param("a", 8), param("b", 8)), constant(8, 2));
  const ExprPtr r = substitute(e, env);
  ASSERT_TRUE(is_const(r));
  EXPECT_EQ(r->value.to_u64(), 60u);
}

TEST(Expr, SubstituteUnboundThrows) {
  Env env;
  EXPECT_THROW(substitute(param("missing", 4), env), std::logic_error);
  env.params["w"] = constant(8, 0);
  EXPECT_THROW(substitute(param("w", 4), env), std::logic_error);  // width
}

TEST(Expr, SubstituteKeepsSymbolicParts) {
  Env env;
  env.params["a"] = param("a", 8);  // identity binding
  env.params["b"] = constant(8, 0);
  const ExprPtr e = add(param("a", 8), param("b", 8));
  const ExprPtr r = substitute(e, env);
  EXPECT_FALSE(is_const(r));
  EXPECT_EQ(r->width, 8u);
}

TEST(Stmt, SequentialAssignSemantics) {
  // x = a; x = x + 1; y = x  =>  y == a + 1.
  Env env;
  env.params["a"] = constant(8, 5);
  env.locals["x"] = constant(8, 0);
  env.locals["y"] = constant(8, 0);
  exec_stmts({assign_local("x", param("a", 8)),
              assign_local("x", add(local("x", 8), constant(8, 1))),
              assign_local("y", local("x", 8))},
             env);
  EXPECT_EQ(eval_const(env.locals["y"]).to_u64(), 6u);
}

TEST(Stmt, ConstantIfTakesOneBranch) {
  Env env;
  env.locals["x"] = constant(4, 0);
  exec_stmts({if_stmt(constant(1, 1), {assign_local("x", constant(4, 7))},
                      {assign_local("x", constant(4, 3))})},
             env);
  EXPECT_EQ(eval_const(env.locals["x"]).to_u64(), 7u);
}

TEST(Stmt, SymbolicIfMergesWithCond) {
  Env env;
  env.params["c"] = param("c", 1);
  env.locals["x"] = constant(4, 0);
  exec_stmts({if_stmt(param("c", 1), {assign_local("x", constant(4, 7))},
                      {assign_local("x", constant(4, 3))})},
             env);
  const ExprPtr x = env.locals["x"];
  ASSERT_EQ(x->kind, ExprKind::kCond);
  // Evaluate both settings of c.
  Env c1;
  c1.params["c"] = constant(1, 1);
  EXPECT_EQ(eval_const(substitute(x, c1)).to_u64(), 7u);
  Env c0;
  c0.params["c"] = constant(1, 0);
  EXPECT_EQ(eval_const(substitute(x, c0)).to_u64(), 3u);
}

TEST(Stmt, IfWithoutElseHoldsValue) {
  Env env;
  env.params["c"] = param("c", 1);
  env.locals["x"] = constant(4, 9);
  exec_stmts({if_stmt(param("c", 1), {assign_local("x", constant(4, 1))})},
             env);
  Env c0;
  c0.params["c"] = constant(1, 0);
  EXPECT_EQ(eval_const(substitute(env.locals["x"], c0)).to_u64(), 9u);
}

TEST(Stmt, ReturnMergesAcrossBranches) {
  Env env;
  env.params["c"] = param("c", 1);
  const ExprPtr r = exec_stmts(
      {if_stmt(param("c", 1), {return_stmt(constant(8, 1))},
               {return_stmt(constant(8, 2))})},
      env);
  ASSERT_NE(r, nullptr);
  Env c1;
  c1.params["c"] = constant(1, 1);
  EXPECT_EQ(eval_const(substitute(r, c1)).to_u64(), 1u);
}

TEST(Stmt, ReturnOnOneBranchOnlyThrows) {
  Env env;
  env.params["c"] = param("c", 1);
  EXPECT_THROW(
      exec_stmts({if_stmt(param("c", 1), {return_stmt(constant(8, 1))}, {})},
                 env),
      std::logic_error);
}

TEST(Stmt, StatementAfterReturnThrows) {
  Env env;
  env.locals["x"] = constant(4, 0);
  EXPECT_THROW(exec_stmts({return_stmt(constant(8, 1)),
                           assign_local("x", constant(4, 1))},
                          env),
               std::logic_error);
}

TEST(Stmt, AssignWidthMismatchThrows) {
  Env env;
  env.locals["x"] = constant(4, 0);
  EXPECT_THROW(exec_stmts({assign_local("x", constant(8, 1))}, env),
               std::logic_error);
}

TEST(Expr, ToStringReadable) {
  const std::string s =
      to_string(add(member("RegValue", 4), constant(4, 1)));
  EXPECT_NE(s.find("this.RegValue"), std::string::npos);
  EXPECT_NE(s.find("+"), std::string::npos);
}

TEST(Expr, EvalConstRejectsOpenTerms) {
  EXPECT_THROW(eval_const(param("a", 4)), std::logic_error);
  EXPECT_EQ(eval_const(constant(4, 9)).to_u64(), 9u);
}

}  // namespace
}  // namespace osss::meta
