// Tests for ClassDesc: layout (the §8 single-bit-vector mapping),
// inheritance prefix layout, the reference interpreter, templates.

#include "meta/class_desc.hpp"

#include <gtest/gtest.h>

namespace osss::meta {
namespace {

/// The paper's running example, as the analyzer sees it:
///   template<unsigned REGSIZE, unsigned RESETVALUE> class SyncRegister {
///     sc_bv<REGSIZE> RegValue;
///     void Reset();
///     void Write(const sc_bit& NewValue);
///     bool RisingEdge(unsigned RegIndex) const;
///   };
ClassDesc make_sync_register(unsigned regsize, std::uint64_t resetvalue) {
  ClassDesc c("SyncRegister<" + std::to_string(regsize) + "," +
              std::to_string(resetvalue) + ">");
  c.add_member("RegValue", regsize);

  MethodDesc ctor;
  ctor.name = "__ctor__";
  ctor.body = {assign_member("RegValue", constant(regsize, resetvalue))};
  c.add_method(std::move(ctor));

  MethodDesc reset;
  reset.name = "Reset";
  reset.body = {assign_member("RegValue", constant(regsize, resetvalue))};
  c.add_method(std::move(reset));

  MethodDesc write;  // shift in a new LSB
  write.name = "Write";
  write.params = {{"NewValue", 1}};
  if (regsize > 1) {
    write.body = {assign_member(
        "RegValue", concat({slice(member("RegValue", regsize), regsize - 2, 0),
                            param("NewValue", 1)}))};
  } else {
    write.body = {assign_member("RegValue", param("NewValue", 1))};
  }
  c.add_method(std::move(write));

  MethodDesc rising;  // bit[i] && !bit[i+1]: newest sample high, previous low
  rising.name = "RisingEdge";
  rising.params = {{"RegIndex", 8}};
  rising.return_width = 1;
  rising.is_const = true;
  // For the test keep RegIndex fixed at 0: bit0 && !bit1.
  rising.body = {return_stmt(
      band(slice(member("RegValue", regsize), 0, 0),
           bnot(slice(member("RegValue", regsize), 1, 1))))};
  c.add_method(std::move(rising));
  return c;
}

TEST(ClassDesc, LayoutAndWidths) {
  const ClassDesc c = make_sync_register(4, 0);
  EXPECT_EQ(c.data_width(), 4u);
  EXPECT_EQ(c.member_offset("RegValue"), 0u);
  EXPECT_EQ(c.member_width("RegValue"), 4u);
  EXPECT_THROW(c.member_offset("nope"), std::logic_error);
}

TEST(ClassDesc, DuplicatesRejected) {
  ClassDesc c("C");
  c.add_member("a", 4);
  EXPECT_THROW(c.add_member("a", 4), std::logic_error);
  MethodDesc m;
  m.name = "f";
  c.add_method(m);
  EXPECT_THROW(c.add_method(std::move(m)), std::logic_error);
}

TEST(ClassDesc, ConstructorGivesInitialValue) {
  const ClassDesc c = make_sync_register(4, 0x9);
  EXPECT_EQ(c.initial_value().to_u64(), 0x9u);
  ClassDesc no_ctor("C");
  no_ctor.add_member("x", 8);
  EXPECT_EQ(no_ctor.initial_value().to_u64(), 0u);
}

TEST(ClassDesc, InterpreterMatchesPaperSemantics) {
  const ClassDesc c = make_sync_register(4, 0);
  Bits state = c.initial_value();
  // Shift in 1: RegValue = 0001.
  auto r = c.call("Write", state, {Bits(1, 1)});
  state = r.state;
  EXPECT_EQ(state.to_u64(), 0b0001u);
  // Rising edge detected: bit0=1, bit1=0.
  r = c.call("RisingEdge", state, {Bits(8, 0)});
  EXPECT_EQ(r.ret->to_u64(), 1u);
  // Shift in another 1: 0011 — no longer a rising edge at index 0.
  state = c.call("Write", state, {Bits(1, 1)}).state;
  EXPECT_EQ(state.to_u64(), 0b0011u);
  EXPECT_EQ(c.call("RisingEdge", state, {Bits(8, 0)}).ret->to_u64(), 0u);
  // Reset clears.
  EXPECT_EQ(c.call("Reset", state, {}).state.to_u64(), 0u);
}

TEST(ClassDesc, CallChecksArguments) {
  const ClassDesc c = make_sync_register(4, 0);
  EXPECT_THROW(c.call("Write", Bits(4), {}), std::logic_error);
  EXPECT_THROW(c.call("Write", Bits(4), {Bits(2, 0)}), std::logic_error);
  EXPECT_THROW(c.call("Write", Bits(5), {Bits(1, 0)}), std::logic_error);
  EXPECT_THROW(c.call("nope", Bits(4), {}), std::logic_error);
}

TEST(ClassDesc, InheritancePrefixLayout) {
  auto base = std::make_shared<ClassDesc>("Base");
  base->add_member("b0", 8);
  MethodDesc get;
  get.name = "GetB0";
  get.return_width = 8;
  get.is_const = true;
  get.body = {return_stmt(member("b0", 8))};
  base->add_method(std::move(get));

  ClassDesc derived("Derived", base);
  derived.add_member("d0", 4);
  EXPECT_EQ(derived.data_width(), 12u);
  EXPECT_EQ(derived.member_offset("b0"), 0u);   // base members first
  EXPECT_EQ(derived.member_offset("d0"), 8u);
  // Inherited method runs against the derived layout.
  Bits state(12, 0);
  state = (Bits(12, 0xab)) | state;  // b0 = 0xab
  EXPECT_EQ(derived.call("GetB0", state, {}).ret->to_u64(), 0xabu);
  EXPECT_TRUE(derived.derives_from(*base));
  EXPECT_FALSE(base->derives_from(derived));
}

TEST(ClassDesc, OverrideShadowsBase) {
  auto base = std::make_shared<ClassDesc>("Base");
  base->add_member("x", 4);
  MethodDesc f;
  f.name = "F";
  f.return_width = 4;
  f.is_const = true;
  f.body = {return_stmt(constant(4, 1))};
  base->add_method(f);

  ClassDesc derived("Derived", base);
  MethodDesc g;
  g.name = "F";
  g.return_width = 4;
  g.is_const = true;
  g.body = {return_stmt(constant(4, 2))};
  derived.add_method(std::move(g));

  EXPECT_EQ(base->call("F", Bits(4), {}).ret->to_u64(), 1u);
  EXPECT_EQ(derived.call("F", Bits(4), {}).ret->to_u64(), 2u);
}

TEST(ClassTemplate, InstantiationMemoized) {
  ClassTemplate tmpl("SyncRegister",
                     [](const std::vector<std::uint64_t>& p) {
                       return make_sync_register(
                           static_cast<unsigned>(p.at(0)), p.at(1));
                     });
  const ClassPtr a = tmpl.instantiate({4, 0});
  const ClassPtr b = tmpl.instantiate({4, 0});
  const ClassPtr c = tmpl.instantiate({8, 0});
  EXPECT_EQ(a, b);  // cached: same descriptor object
  EXPECT_NE(a, c);
  EXPECT_EQ(a->data_width(), 4u);
  EXPECT_EQ(c->data_width(), 8u);
  EXPECT_EQ(tmpl.instantiation_count(), 2u);
}

TEST(ClassDesc, PackUnpackRoundTrip) {
  ClassDesc c("C");
  c.add_member("lo", 4);
  c.add_member("hi", 8);
  const Bits state = Bits(12, 0xab7);
  Env env = c.member_env(constant(state));
  EXPECT_EQ(eval_const(env.members["lo"]).to_u64(), 0x7u);
  EXPECT_EQ(eval_const(env.members["hi"]).to_u64(), 0xabu);
  EXPECT_TRUE(eval_const(c.pack_members(env)) == state);
}

}  // namespace
}  // namespace osss::meta
