// Tests for expression-tree -> RTL emission: random equivalence between the
// meta interpreter and the RTL simulator (the two ends of the resolution).

#include "meta/emit.hpp"

#include <gtest/gtest.h>

#include <random>

#include "rtl/sim.hpp"

namespace osss::meta {
namespace {

TEST(Emit, SimpleExpression) {
  rtl::Builder b("m");
  RtlEmitter em(b);
  em.bind_param("a", b.input("a", 8));
  em.bind_param("b", b.input("b", 8));
  const ExprPtr e = mul(add(param("a", 8), param("b", 8)), constant(8, 3));
  b.output("r", em.emit(e));
  rtl::Simulator sim(b.take());
  sim.set_input("a", 10);
  sim.set_input("b", 5);
  EXPECT_EQ(sim.output("r").to_u64(), 45u);
}

TEST(Emit, MemoizationSharesSubtrees) {
  rtl::Builder b("m");
  RtlEmitter em(b);
  em.bind_param("a", b.input("a", 8));
  const ExprPtr shared = add(param("a", 8), constant(8, 1));
  const ExprPtr e = mul(shared, shared);
  const rtl::Wire w = em.emit(e);
  b.output("r", w);
  const rtl::Module m = b.take();
  // Exactly one add node despite two uses.
  EXPECT_EQ(m.stats().op_histogram.at("add"), 1u);
}

TEST(Emit, UnboundReferenceThrows) {
  rtl::Builder b("m");
  RtlEmitter em(b);
  EXPECT_THROW(em.emit(param("zz", 4)), std::logic_error);
}

TEST(Emit, ConstantShiftsBecomeWiring) {
  rtl::Builder b("m");
  RtlEmitter em(b);
  em.bind_param("a", b.input("a", 8));
  b.output("r", em.emit(binary(BinOp::kShl, param("a", 8), constant(4, 2))));
  const rtl::Module m = b.take();
  EXPECT_EQ(m.stats().op_histogram.count("shlv"), 0u);
  EXPECT_EQ(m.stats().op_histogram.at("shli"), 1u);
}

// Property: emitted RTL computes exactly what the interpreter computes,
// across a grab-bag expression using every operator.
TEST(EmitProperty, MatchesInterpreterOnRandomInputs) {
  const unsigned W = 10;
  const ExprPtr a = param("a", W);
  const ExprPtr b_ = param("b", W);
  const ExprPtr c = param("c", 1);
  std::vector<ExprPtr> exprs = {
      add(a, b_),
      sub(a, b_),
      mul(a, b_),
      band(a, b_),
      bor(a, b_),
      bxor(a, b_),
      bnot(a),
      unary(UnOp::kNeg, a),
      unary(UnOp::kRedOr, a),
      unary(UnOp::kRedAnd, a),
      unary(UnOp::kRedXor, a),
      binary(BinOp::kShl, a, slice(b_, 3, 0)),
      binary(BinOp::kLshr, a, slice(b_, 3, 0)),
      eq(a, b_),
      ne(a, b_),
      ult(a, b_),
      ule(a, b_),
      binary(BinOp::kSlt, a, b_),
      binary(BinOp::kSle, a, b_),
      cond(c, a, b_),
      concat({slice(a, 7, 3), slice(b_, 4, 0)}),
      zext(slice(a, 3, 0), W),
      sext(slice(a, 3, 0), W),
  };

  rtl::Builder bld("prop");
  RtlEmitter em(bld);
  em.bind_param("a", bld.input("a", W));
  em.bind_param("b", bld.input("b", W));
  em.bind_param("c", bld.input("c", 1));
  for (std::size_t i = 0; i < exprs.size(); ++i)
    bld.output("o" + std::to_string(i), em.emit(exprs[i]));
  rtl::Simulator sim(bld.take());

  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    const Bits va(W, rng());
    const Bits vb(W, rng());
    const Bits vc(1, rng());
    sim.set_input("a", va);
    sim.set_input("b", vb);
    sim.set_input("c", vc);
    Env env;
    env.params["a"] = constant(va);
    env.params["b"] = constant(vb);
    env.params["c"] = constant(vc);
    for (std::size_t i = 0; i < exprs.size(); ++i) {
      const Bits expect = eval_const(substitute(exprs[i], env));
      EXPECT_TRUE(sim.output("o" + std::to_string(i)) == expect)
          << "expr " << i << ": " << to_string(exprs[i]);
    }
  }
}

}  // namespace
}  // namespace osss::meta
