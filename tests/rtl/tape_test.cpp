// Tests for the compiled word-level tape engine (rtl/tape.hpp): differential
// property tests against the interpreter (the oracle) over random modules
// and the ExpoCU components, unit tests for the compiler's optimization
// passes and the executor's level-granular activity gating, and a mutation
// check proving that a corrupted tape is caught by the differential harness.

#include "rtl/tape.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "expocu/flows.hpp"
#include "gate/lower.hpp"
#include "rtl/builder.hpp"
#include "rtl/sim.hpp"
#include "verify/cosim.hpp"
#include "verify/random_module.hpp"
#include "verify/stimgen.hpp"

namespace osss::rtl {
namespace {

Module xor_pipe() {
  Builder b("pipe");
  Wire a = b.input("a", 8);
  Wire x = b.input("b", 8);
  Wire q = b.reg("q", 8);
  b.connect(q, b.xor_(a, x));
  b.output("o", q);
  return b.take();
}

/// Differentially run interpreter vs tape on `m` and fail with the CoSim
/// counterexample if they ever diverge.
void expect_tape_matches_interp(const Module& m, std::uint64_t seed,
                                unsigned cycles, unsigned lanes = 1) {
  verify::CoSim cs;
  cs.add(std::make_unique<verify::RtlModel>(m));  // reference: interpreter
  cs.add(std::make_unique<verify::RtlModel>(m, SimMode::kTape, lanes));
  cs.declare_io(m);
  verify::StimGen gen(seed);
  cs.declare_stimulus(gen);
  const verify::RunResult r = cs.run(gen, cycles, 2);
  EXPECT_TRUE(r.ok) << r.mismatch.describe(cs.inputs(), lanes > 1) << " seed "
                    << seed;
}

// --- differential property tests over random_module shapes -----------------

class TapeFuzz : public ::testing::TestWithParam<unsigned> {};

void run_fuzz_case(const char* variant,
                   const verify::RandomModuleOptions& opt, unsigned index) {
  const std::uint64_t seed = verify::StimGen::derive(
      verify::env_seed(6271),
      std::string("tape/") + variant + "/" + std::to_string(index));
  std::mt19937_64 rng(seed);
  const Module m = verify::random_module(rng, opt);
  expect_tape_matches_interp(m, seed, 120);
}

TEST_P(TapeFuzz, MatchesInterpreter) {
  run_fuzz_case("base", {40, false, false, false}, GetParam());
}

TEST_P(TapeFuzz, WithMemories) {
  run_fuzz_case("mem", {32, true, false, false}, GetParam());
}

TEST_P(TapeFuzz, WithSharedMuxShapes) {
  run_fuzz_case("shared", {32, false, true, false}, GetParam());
}

TEST_P(TapeFuzz, WithPolymorphicDispatch) {
  run_fuzz_case("poly", {32, false, false, true}, GetParam());
}

TEST_P(TapeFuzz, WithEverything) {
  run_fuzz_case("all", {48, true, true, true}, GetParam());
}

/// Multi-lane tape vs the interpreter: the run degrades to scalar (the
/// interpreter has one lane) but lane 0 of the tape must still agree.
TEST_P(TapeFuzz, MultiLaneLaneZeroMatchesInterpreter) {
  const std::uint64_t seed = verify::StimGen::derive(
      verify::env_seed(6271), "tape/lanes/" + std::to_string(GetParam()));
  std::mt19937_64 rng(seed);
  const Module m =
      verify::random_module(rng, verify::RandomModuleOptions{32, true, false,
                                                             false});
  expect_tape_matches_interp(m, seed, 80, 64);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TapeFuzz,
                         ::testing::Range(0u, verify::env_iters(8)));

/// 64-lane tape vs the 64-lane bit-parallel gate engine: every cycle scores
/// 64 independent stimulus vectors through both levels.
TEST(Tape, SixtyFourLanesAgainstBitParallelGates) {
  const std::uint64_t seed =
      verify::StimGen::derive(verify::env_seed(6271), "tape/wide");
  std::mt19937_64 rng(seed);
  const Module m = verify::random_module(rng, 36);
  verify::CoSim cs;
  cs.add(std::make_unique<verify::RtlModel>(m, SimMode::kTape, 64));
  cs.add(std::make_unique<verify::GateModel>(gate::lower_to_gates(m),
                                             gate::SimMode::kBitParallel));
  cs.declare_io(m);
  verify::StimGen gen(seed);
  cs.declare_stimulus(gen);
  const verify::RunResult r = cs.run(gen, 60);
  EXPECT_TRUE(r.ok) << r.mismatch.describe(cs.inputs(), true) << " seed "
                    << seed;
  EXPECT_EQ(r.vectors, 60u * 64u);
}

// --- ExpoCU components -----------------------------------------------------

void run_flow_differential(const std::vector<expocu::FlowComponent>& flow) {
  for (const expocu::FlowComponent& c : flow) {
    SCOPED_TRACE(c.name);
    const std::uint64_t seed =
        verify::StimGen::derive(verify::env_seed(6271), "tape/" + c.name);
    expect_tape_matches_interp(c.module, seed, 200);
  }
}

TEST(Tape, MatchesInterpreterOnOsssFlow) {
  run_flow_differential(expocu::build_osss_flow());
}

TEST(Tape, MatchesInterpreterOnVhdlFlow) {
  run_flow_differential(expocu::build_vhdl_flow());
}

// --- compiler pass unit tests ----------------------------------------------

TEST(TapeCompile, FoldsConstantExpressions) {
  Builder b("fold");
  Wire a = b.input("a", 8);
  // (3 + 5) * 2 = 16 is fully constant; a + 16 is not.
  Wire k = b.mul(b.add(b.constant(8, 3), b.constant(8, 5)), b.constant(8, 2));
  b.output("o", b.add(a, k));
  // A shift by >= width is constant zero regardless of its operand.
  b.output("z", b.shli(a, 8));
  const Module m = b.take();

  Simulator sim(m, SimMode::kTape);
  EXPECT_GE(sim.stats().const_folded, 3u);  // the adds/muls over constants
  sim.set_input("a", std::uint64_t{10});
  EXPECT_EQ(sim.output("o").to_u64(), 26u);
  EXPECT_EQ(sim.output("z").to_u64(), 0u);
}

TEST(TapeCompile, PrunesDeadNodes) {
  Builder b("dead");
  Wire a = b.input("a", 8);
  Wire x = b.input("x", 8);
  // Dead subtree: computed from live inputs but feeding no output/register.
  (void)b.mul(b.add(a, x), b.xor_(a, x));
  b.output("o", b.and_(a, x));
  const Module m = b.take();

  Simulator sim(m, SimMode::kTape);
  EXPECT_GE(sim.stats().pruned, 3u);
  sim.set_input("a", std::uint64_t{0x0f});
  sim.set_input("x", std::uint64_t{0x3c});
  EXPECT_EQ(sim.output("o").to_u64(), 0x0cu);
}

TEST(TapeCompile, FusesNoOpCasts) {
  Builder b("fuse");
  Wire a = b.input("a", 8);
  // zext 8 -> 20 keeps the word count: fused.  slice [7:0] of an 8-bit
  // value is the identity: fused.  slice-of-slice composes into one read.
  Wire z = b.zext(a, 20);
  Wire id = b.slice(a, 7, 0);
  Wire s2 = b.slice(b.slice(z, 15, 4), 7, 2);
  b.output("o", b.add(z, b.zext(b.xor_(id, b.zext(s2, 8)), 20)));
  const Module m = b.take();

  Simulator sim(m, SimMode::kTape);
  EXPECT_GE(sim.stats().fused, 2u);
  // Cross-check values against the interpreter for a few stimuli.
  Simulator oracle(m);
  for (std::uint64_t v : {0x00ull, 0xffull, 0xa5ull, 0x3eull}) {
    sim.set_input("a", v);
    oracle.set_input("a", v);
    EXPECT_EQ(sim.output("o").to_u64(), oracle.output("o").to_u64()) << v;
  }
}

TEST(TapeCompile, ExportsProgramGeometry) {
  Simulator sim(xor_pipe(), SimMode::kTape);
  const Simulator::Stats s = sim.stats();
  EXPECT_GT(s.tape_len, 0u);
  EXPECT_GT(s.arena_words, 0u);
  EXPECT_GT(s.levels, 0u);
  EXPECT_EQ(sim.tape().instrs.size(), s.tape_len);
}

TEST(TapeCompile, RejectsBadLaneCounts) {
  EXPECT_THROW(Simulator(xor_pipe(), SimMode::kTape, 0), std::logic_error);
  EXPECT_THROW(Simulator(xor_pipe(), SimMode::kTape, 65), std::logic_error);
  EXPECT_THROW(Simulator(xor_pipe(), SimMode::kInterp, 2), std::logic_error);
}

// --- activity gating -------------------------------------------------------

TEST(TapeRun, SkipsSettledLevelsWhileShallowLogicToggles) {
  // A deep combinational chain hangs off a register that holds its value,
  // while a shallow level-0 chain hangs off an input that changes every
  // cycle: after the first full sweep, only level 0 is ever dirty and the
  // deep chain's levels are skipped.
  Builder b("gate");
  Wire a = b.input("a", 8);
  Wire q = b.reg("q", 8, std::uint64_t{3});
  b.connect(q, q);  // register holds its init value forever
  Wire v = q;
  for (int i = 0; i < 6; ++i) v = b.add(b.mul(v, v), q);
  b.output("deep", v);
  b.output("shallow", b.xor_(a, b.not_(a)));
  Simulator sim(b.take(), SimMode::kTape);

  for (std::uint64_t c = 0; c < 8; ++c) {
    sim.set_input("a", c);
    sim.step();
  }
  (void)sim.output("deep");
  const Simulator::Stats s = sim.stats();
  EXPECT_GT(s.levels_skipped, 0u);
  // The deep chain ran far fewer times than a gate-less engine would run it.
  EXPECT_LT(s.nodes_evaluated, s.tape_len * std::uint64_t{8});
}

TEST(TapeRun, InputChangeWakesDependentLevels) {
  Simulator sim(xor_pipe(), SimMode::kTape);
  sim.set_input("a", std::uint64_t{0x11});
  sim.set_input("b", std::uint64_t{0x22});
  sim.step();
  EXPECT_EQ(sim.output("o").to_u64(), 0x33u);
  sim.set_input("a", std::uint64_t{0xf0});
  sim.step();
  EXPECT_EQ(sim.output("o").to_u64(), 0xd2u);
}

// --- facade parity ---------------------------------------------------------

TEST(TapeRun, PokeAndInspectMatchInterpreter) {
  Builder b("mem");
  Wire addr = b.input("addr", 4);
  Wire data = b.input("data", 8);
  Wire we = b.input("we", 1);
  auto mh = b.memory("m", 16, 8);
  b.mem_write(mh, addr, data, we);
  b.output("o", b.mem_read(mh, addr));
  const Module m = b.take();

  Simulator interp(m);
  Simulator tape(m, SimMode::kTape);
  for (Simulator* s : {&interp, &tape}) {
    s->poke_mem(0, 3, Bits(8, 0xab));
    s->set_input("addr", std::uint64_t{3});
    s->set_input("we", std::uint64_t{0});
    s->set_input("data", std::uint64_t{0});
  }
  EXPECT_EQ(interp.output("o").to_u64(), 0xabu);
  EXPECT_EQ(tape.output("o").to_u64(), 0xabu);
  EXPECT_EQ(tape.mem_word(0, 3).to_u64(), 0xabu);

  for (Simulator* s : {&interp, &tape}) {
    s->set_input("we", std::uint64_t{1});
    s->set_input("data", std::uint64_t{0x5c});
    s->step();
  }
  EXPECT_EQ(interp.mem_word(0, 3).to_u64(), 0x5cu);
  EXPECT_EQ(tape.mem_word(0, 3).to_u64(), 0x5cu);

  for (Simulator* s : {&interp, &tape}) s->reset();
  EXPECT_EQ(interp.mem_word(0, 3).to_u64(), 0u);
  EXPECT_EQ(tape.mem_word(0, 3).to_u64(), 0u);
}

TEST(TapeRun, PokeRegOverridesState) {
  Simulator sim(xor_pipe(), SimMode::kTape);
  sim.set_input("a", std::uint64_t{0});
  sim.set_input("b", std::uint64_t{0});
  sim.poke_reg("q", Bits(8, 0x7e));
  EXPECT_EQ(sim.output("o").to_u64(), 0x7eu);
}

// --- mutation: a corrupted tape must be caught -----------------------------

TEST(Tape, CorruptedTapeCaughtByDifferentialHarness) {
  const Module m = xor_pipe();
  verify::CoSim cs;
  cs.add(std::make_unique<verify::RtlModel>(m));  // oracle
  auto& dut = cs.add(
      std::make_unique<verify::RtlModel>(m, SimMode::kTape, 1, "bad-tape"));
  // Flip the xor instruction to an or: a one-opcode tape corruption.
  bool mutated = false;
  for (tape::Instr& ins : dut.sim().tape().instrs) {
    if (ins.op == tape::TOp::kXor1) {
      ins.op = tape::TOp::kOr1;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  cs.declare_io(m);
  verify::StimGen gen(11);
  cs.declare_stimulus(gen);
  const verify::RunResult r = cs.run(gen, 64);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.mismatch.dut_model, "bad-tape");
  EXPECT_EQ(r.mismatch.output, "o");
}

}  // namespace
}  // namespace osss::rtl
