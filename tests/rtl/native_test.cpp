// native_test.cpp — differential tests for the tape native-code backend.
//
// Three-way checks (interpreter oracle vs interpreted tape vs NativeEngine)
// over the random_module fuzz corpus and both design flows' ExpoCU
// components.  The fuzz sweep runs the threaded-code fallback (no compile
// cost per case); a subset plus the ExpoCU components exercise the real
// compile + dlopen path.  A bogus-compiler test proves the silent fallback
// keeps results bit-identical, and a temp-dir fixture proves the backend
// leaves nothing behind on disk.

#include "rtl/codegen.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <random>

#include "expocu/flows.hpp"
#include "rtl/builder.hpp"
#include "rtl/sim.hpp"
#include "verify/cosim.hpp"
#include "verify/random_module.hpp"
#include "verify/stimgen.hpp"

namespace osss::rtl {
namespace {

namespace tp = tape;

/// True when the environment disables the JIT (e.g. the TSan CI job, which
/// cannot instrument dlopen'd code) — real-compile assertions are skipped.
bool jit_disabled() {
  const char* nj = std::getenv("OSSS_NO_JIT");
  return nj != nullptr && *nj != '\0' && *nj != '0';
}

/// Interpreter (reference) vs interpreted tape vs native backend.
void expect_three_way_match(const Module& m, std::uint64_t seed,
                            unsigned cycles, unsigned lanes,
                            tp::CodegenOptions opt) {
  verify::CoSim cs;
  cs.add(std::make_unique<verify::RtlModel>(m));  // reference: interpreter
  cs.add(std::make_unique<verify::RtlModel>(
      m, SimMode::kTape, std::min(lanes, 64u)));
  cs.add(std::make_unique<verify::RtlModel>(m, SimMode::kNative, lanes,
                                            std::move(opt), "rtl:native"));
  cs.declare_io(m);
  verify::StimGen gen(seed);
  cs.declare_stimulus(gen);
  const verify::RunResult r = cs.run(gen, cycles, 2);
  EXPECT_TRUE(r.ok) << r.mismatch.describe(cs.inputs(), lanes > 1) << " seed "
                    << seed;
}

// --- differential fuzz over random_module shapes (fallback dispatch) -------

class NativeFuzz : public ::testing::TestWithParam<unsigned> {};

void run_fuzz_case(const char* variant,
                   const verify::RandomModuleOptions& opt, unsigned index,
                   unsigned lanes) {
  const std::uint64_t seed = verify::StimGen::derive(
      verify::env_seed(7301),
      std::string("native/") + variant + "/" + std::to_string(index));
  std::mt19937_64 rng(seed);
  const Module m = verify::random_module(rng, opt);
  tp::CodegenOptions copt;
  copt.force_fallback = true;  // corpus sweep: no per-case compile cost
  expect_three_way_match(m, seed, 100, lanes, std::move(copt));
}

TEST_P(NativeFuzz, MatchesInterpreter) {
  run_fuzz_case("base", {40, false, false, false}, GetParam(), 1);
}

TEST_P(NativeFuzz, WithMemories) {
  run_fuzz_case("mem", {32, true, false, false}, GetParam(), 1);
}

TEST_P(NativeFuzz, WithSharedMuxShapes) {
  run_fuzz_case("shared", {32, false, true, false}, GetParam(), 1);
}

TEST_P(NativeFuzz, WithPolymorphicDispatch) {
  run_fuzz_case("poly", {32, false, false, true}, GetParam(), 1);
}

TEST_P(NativeFuzz, WithEverything) {
  run_fuzz_case("all", {48, true, true, true}, GetParam(), 1);
}

/// 64-lane fallback: the CoSim scores all 64 lanes against the interpreted
/// tape and the scalar interpreter.
TEST_P(NativeFuzz, SixtyFourLanes) {
  run_fuzz_case("lanes64", {32, true, false, false}, GetParam(), 64);
}

/// Wider than the interpreted engine's cap: 256 lanes join the co-sim as a
/// broadcast scalar model, so lane 0 of the wide arena is checked and the
/// multi-word enable masks in step() get exercised.
TEST_P(NativeFuzz, WideLanes) {
  run_fuzz_case("lanes256", {32, true, false, false}, GetParam(), 256);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NativeFuzz,
                         ::testing::Range(0u, verify::env_iters(8)));

// --- real compile + dlopen -------------------------------------------------

/// One random shape through the actual JIT: emit, compile, dlopen, and
/// compare against both interpreters.  Asserts the native path really
/// loaded (this is what the -mavx2 CI leg runs).
TEST(NativeJit, CompilesAndMatchesInterpreter) {
  const std::uint64_t seed =
      verify::StimGen::derive(verify::env_seed(7301), "native/jit");
  std::mt19937_64 rng(seed);
  const Module m = verify::random_module(
      rng, verify::RandomModuleOptions{48, true, true, true});
  Simulator probe(m, SimMode::kNative, 8);
  if (!jit_disabled()) {
    ASSERT_TRUE(probe.native().native()) << probe.native().compile_log();
  }
  expect_three_way_match(m, seed, 120, 8, {});
}

/// Wide SIMD lanes through the real JIT (AVX2/AVX-512 vector drivers when
/// the CPU has them; the scalar tail otherwise).
TEST(NativeJit, WideLanesCompileAndMatch) {
  const std::uint64_t seed =
      verify::StimGen::derive(verify::env_seed(7301), "native/jit-wide");
  std::mt19937_64 rng(seed);
  const Module m = verify::random_module(
      rng, verify::RandomModuleOptions{40, true, false, false});
  expect_three_way_match(m, seed, 80, 192, {});
}

/// Both flows' ExpoCU components through the real JIT, three-way checked.
/// One compile per component; the OSSS flow and the hand-written VHDL flow
/// cover the same six components from different RTL.
TEST(NativeJit, ExpoCuComponentsBothFlows) {
  for (const bool osss : {true, false}) {
    const std::vector<expocu::FlowComponent> flow =
        osss ? expocu::build_osss_flow() : expocu::build_vhdl_flow();
    for (const expocu::FlowComponent& c : flow) {
      const std::uint64_t seed = verify::StimGen::derive(
          verify::env_seed(7301),
          std::string("native/expocu/") + (osss ? "osss/" : "vhdl/") + c.name);
      SCOPED_TRACE((osss ? "osss flow: " : "vhdl flow: ") + c.name);
      expect_three_way_match(c.module, seed, 150, 4, {});
    }
  }
}

// --- fallback robustness ---------------------------------------------------

/// A compiler that cannot exist: the backend must fall back silently (no
/// throw), report why, and stay bit-identical to the interpreter.
TEST(NativeFallback, BogusCompilerFallsBackSilently) {
  const std::uint64_t seed =
      verify::StimGen::derive(verify::env_seed(7301), "native/bogus-cc");
  std::mt19937_64 rng(seed);
  const Module m = verify::random_module(
      rng, verify::RandomModuleOptions{36, true, false, false});
  tp::CodegenOptions opt;
  opt.compiler = "/nonexistent/osss-cc";
  Simulator probe(m, SimMode::kNative, 4, opt);
  EXPECT_FALSE(probe.native().native());
  EXPECT_FALSE(probe.native().compile_log().empty());
  expect_three_way_match(m, seed, 100, 4, opt);
}

/// force_fallback (the OSSS_NO_JIT path) never touches the filesystem.
TEST(NativeFallback, ForcedFallbackMatchesJitResults) {
  Builder b("acc");
  Wire a = b.input("a", 32);
  Wire q = b.reg("q", 32);
  b.connect(q, b.add(q, a));
  b.output("o", q);
  const Module m = b.take();

  tp::CodegenOptions forced;
  forced.force_fallback = true;
  Simulator jit(m, SimMode::kNative, 2);
  Simulator fb(m, SimMode::kNative, 2, forced);
  EXPECT_FALSE(fb.native().native());
  const InputHandle ia = jit.input_handle("a");
  const OutputHandle oo = jit.output_handle("o");
  std::mt19937_64 rng(99);
  for (unsigned c = 0; c < 200; ++c) {
    const std::uint64_t v = rng();
    jit.set_input(ia, v);
    fb.set_input(fb.input_handle("a"), v);
    jit.step();
    fb.step();
    ASSERT_EQ(jit.output_u64(oo), fb.output_u64(fb.output_handle("o")))
        << "cycle " << c;
  }
}

/// The backend owns a private temp directory for source/so/log and must
/// remove it when the engine dies — keeps ASan/LSan runs artifact-clean.
TEST(NativeFallback, TempDirIsCleanedUp) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("osss-native-test-" + std::to_string(::getpid()));
  fs::create_directories(dir);
  char* old_tmp = std::getenv("TMPDIR");
  const std::string saved = old_tmp != nullptr ? old_tmp : "";
  ::setenv("TMPDIR", dir.c_str(), 1);
  {
    Builder b("t");
    b.output("o", b.add(b.input("a", 16), b.input("b", 16)));
    Simulator sim(b.take(), SimMode::kNative, 1);
    sim.set_input("a", std::uint64_t{1});
    sim.set_input("b", std::uint64_t{2});
    sim.step();
    EXPECT_EQ(sim.output("o").to_u64(), 3u);
  }
  if (old_tmp != nullptr)
    ::setenv("TMPDIR", saved.c_str(), 1);
  else
    ::unsetenv("TMPDIR");
  EXPECT_TRUE(fs::is_empty(dir)) << "native backend left artifacts in "
                                 << dir;
  fs::remove_all(dir);
}

// --- generated source sanity ----------------------------------------------

TEST(NativeEmit, GeneratedSourceExportsTheTapeAbi) {
  Builder b("emit");
  Wire a = b.input("a", 8);
  Wire c = b.input("b", 8);
  b.output("o", b.xor_(a, c));
  const tp::Program p = tp::Program::compile(b.take(), 4);
  const std::string src = tp::emit_cpp(p);
  EXPECT_NE(src.find("osss_tape_eval"), std::string::npos);
  EXPECT_NE(src.find("osss_tape_abi"), std::string::npos);
  EXPECT_NE(src.find("osss_tape_lanes"), std::string::npos);
  EXPECT_NE(src.find("osss_tape_arena"), std::string::npos);
}

// --- run_batch over wide native lanes --------------------------------------

/// The same stimulus through scalar interpreter blocks and one 128-lane
/// native block must produce identical per-lane outputs.
TEST(NativeBatch, WideLaneBlocksMatchScalarBlocks) {
  const std::uint64_t seed =
      verify::StimGen::derive(verify::env_seed(7301), "native/batch");
  std::mt19937_64 rng(seed);
  const Module m = verify::random_module(
      rng, verify::RandomModuleOptions{30, false, false, false});
  constexpr unsigned kLanes = 128, kCycles = 40;
  const unsigned lw = kLanes / 64;

  std::vector<unsigned> in_widths, out_widths;
  for (const PortRef& p : m.inputs()) in_widths.push_back(m.node(p.node).width);
  for (const PortRef& p : m.outputs())
    out_widths.push_back(m.node(p.node).width);
  unsigned in_bits = 0, out_bits = 0;
  for (unsigned w : in_widths) in_bits += w;
  for (unsigned w : out_widths) out_bits += w;

  // Scalar reference: one block per lane.
  std::vector<par::StimulusBlock> scalar(kLanes);
  for (auto& b : scalar)
    b = par::StimulusBlock::make(kCycles,
                                 static_cast<unsigned>(in_widths.size()));
  for (unsigned l = 0; l < kLanes; ++l)
    for (unsigned c = 0; c < kCycles; ++c)
      for (unsigned s = 0; s < in_widths.size(); ++s)
        scalar[l].in_at(c, s) = rng();
  run_batch(m, SimMode::kInterp, scalar);

  // One wide-lane native block carrying the same stimulus.
  par::StimulusBlock wide =
      par::StimulusBlock::make(kCycles, in_bits * lw, kLanes);
  for (unsigned c = 0; c < kCycles; ++c) {
    unsigned slot = 0;
    for (unsigned s = 0; s < in_widths.size(); ++s) {
      for (unsigned bit = 0; bit < in_widths[s]; ++bit) {
        for (unsigned l = 0; l < kLanes; ++l) {
          const std::uint64_t masked =
              scalar[l].in_at(c, s) &
              (in_widths[s] >= 64 ? ~0ull
                                  : ((std::uint64_t{1} << in_widths[s]) - 1));
          wide.in_at(c, slot + bit * lw + l / 64) |=
              ((masked >> bit) & 1u) << (l % 64);
        }
      }
      slot += in_widths[s] * lw;
    }
  }
  std::vector<par::StimulusBlock> wide_batch;
  wide_batch.push_back(std::move(wide));
  run_batch(m, SimMode::kNative, wide_batch);

  const par::StimulusBlock& w = wide_batch.front();
  for (unsigned c = 0; c < kCycles; ++c) {
    unsigned slot = 0;
    for (unsigned s = 0; s < out_widths.size(); ++s) {
      for (unsigned bit = 0; bit < out_widths[s]; ++bit)
        for (unsigned l = 0; l < kLanes; ++l)
          ASSERT_EQ((w.out_at(c, slot + bit * lw + l / 64) >> (l % 64)) & 1u,
                    (scalar[l].out_at(c, s) >> bit) & 1u)
              << "cycle " << c << " output " << s << " bit " << bit
              << " lane " << l;
      slot += out_widths[s] * lw;
    }
  }
}

// --- value-per-lane I/O ----------------------------------------------------

/// set_input_values/output_values (one value per lane, no bit transpose)
/// must agree with the bit-sliced set_input_lanes/output_words path on
/// both engines, at 64 lanes (tape + native) and 256 lanes (native only).
TEST(NativeLaneValues, ValueApiMatchesBitSlicedApi) {
  Builder b("vals");
  Wire a = b.input("a", 16);
  Wire q = b.reg("q", 16);
  b.connect(q, b.add(q, a));
  b.output("o", b.xor_(q, a));
  const Module m = b.take();

  tp::CodegenOptions fb;
  fb.force_fallback = true;
  for (const unsigned lanes : {64u, 256u}) {
    SCOPED_TRACE(lanes);
    const unsigned lw = lanes / 64;
    std::vector<std::unique_ptr<Simulator>> sims;
    sims.push_back(std::make_unique<Simulator>(m, SimMode::kNative, lanes, fb));
    if (lanes <= 64)
      sims.push_back(std::make_unique<Simulator>(m, SimMode::kTape, lanes));
    Simulator bitsliced(m, SimMode::kNative, lanes, fb);

    std::mt19937_64 rng(1234 + lanes);
    std::vector<std::uint64_t> values(lanes);
    std::vector<std::uint64_t> bit_lanes(16 * lw);
    for (unsigned c = 0; c < 50; ++c) {
      for (unsigned l = 0; l < lanes; ++l) values[l] = rng() & 0xffff;
      std::fill(bit_lanes.begin(), bit_lanes.end(), 0);
      for (unsigned l = 0; l < lanes; ++l)
        for (unsigned bit = 0; bit < 16; ++bit)
          bit_lanes[std::size_t{bit} * lw + l / 64] |=
              ((values[l] >> bit) & 1u) << (l % 64);
      bitsliced.set_input_lanes(bitsliced.input_handle("a"), bit_lanes);
      bitsliced.step();
      const std::vector<std::uint64_t> ref_words =
          bitsliced.output_words(bitsliced.output_handle("o"));
      for (auto& sim : sims) {
        sim->set_input_values(sim->input_handle("a"), values);
        sim->step();
        ASSERT_EQ(sim->output_words(sim->output_handle("o")), ref_words)
            << "cycle " << c;
        const std::vector<std::uint64_t> vals =
            sim->output_values(sim->output_handle("o"));
        ASSERT_EQ(vals.size(), lanes);
        for (unsigned l = 0; l < lanes; ++l) {
          std::uint64_t expected = 0;
          for (unsigned bit = 0; bit < 16; ++bit)
            expected |=
                ((ref_words[std::size_t{bit} * lw + l / 64] >> (l % 64)) & 1u)
                << bit;
          ASSERT_EQ(vals[l], expected) << "cycle " << c << " lane " << l;
        }
      }
    }
  }
}

/// Ports wider than one word reject the value API.
TEST(NativeLaneValues, WidePortsThrow) {
  Builder b("wide");
  b.output("o", b.not_(b.input("a", 80)));
  const Module m = b.take();
  tp::CodegenOptions fb;
  fb.force_fallback = true;
  Simulator sim(m, SimMode::kNative, 2, fb);
  std::vector<std::uint64_t> values(2, 0);
  EXPECT_THROW(sim.set_input_values(sim.input_handle("a"), values),
               std::logic_error);
  EXPECT_THROW(sim.output_values(sim.output_handle("o")), std::logic_error);
  // Lane-count mismatches are rejected too.
  Builder b2("ok16");
  b2.output("o", b2.not_(b2.input("a", 16)));
  Simulator s16(b2.take(), SimMode::kNative, 2, fb);
  EXPECT_THROW(
      s16.set_input_values(s16.input_handle("a"), {1, 2, 3}),
      std::logic_error);
}

/// Lane-count validation: 65 is not a lane-word multiple, wide blocks need
/// the native backend, and the interpreted engine stays capped at 64.
TEST(NativeBatch, LaneValidation) {
  Builder b("v");
  b.output("o", b.not_(b.input("a", 4)));
  const Module m = b.take();
  EXPECT_THROW(Simulator(m, SimMode::kNative, tp::kMaxLanes + 1),
               std::logic_error);
  std::vector<par::StimulusBlock> blocks;
  blocks.push_back(par::StimulusBlock::make(1, 4 * 2, 128));
  EXPECT_THROW(run_batch(m, SimMode::kTape, blocks), std::invalid_argument);
  blocks.front().lanes = 65;
  EXPECT_THROW(run_batch(m, SimMode::kNative, blocks),
               std::invalid_argument);
}

}  // namespace
}  // namespace osss::rtl
