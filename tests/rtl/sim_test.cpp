// Tests for the cycle-accurate RTL simulator: combinational evaluation,
// register semantics, enables, memories, reset and fault injection.

#include "rtl/sim.hpp"

#include <gtest/gtest.h>

#include <random>

#include "rtl/builder.hpp"

namespace osss::rtl {
namespace {

Module make_alu() {
  Builder b("alu");
  Wire a = b.input("a", 8);
  Wire x = b.input("b", 8);
  Wire op = b.input("op", 2);
  Wire add = b.add(a, x);
  Wire sub = b.sub(a, x);
  Wire band = b.and_(a, x);
  Wire bxor = b.xor_(a, x);
  Wire sel0 = b.eq(op, b.constant(2, 0));
  Wire sel1 = b.eq(op, b.constant(2, 1));
  Wire sel2 = b.eq(op, b.constant(2, 2));
  Wire r = b.mux(sel0, add, b.mux(sel1, sub, b.mux(sel2, band, bxor)));
  b.output("r", r);
  return b.take();
}

TEST(RtlSim, CombinationalAlu) {
  Module m = make_alu();
  Simulator sim(m);
  sim.set_input("a", 100);
  sim.set_input("b", 30);
  sim.set_input("op", 0);
  EXPECT_EQ(sim.output("r").to_u64(), 130u);
  sim.set_input("op", 1);
  EXPECT_EQ(sim.output("r").to_u64(), 70u);
  sim.set_input("op", 2);
  EXPECT_EQ(sim.output("r").to_u64(), 100u & 30u);
  sim.set_input("op", 3);
  EXPECT_EQ(sim.output("r").to_u64(), 100u ^ 30u);
}

TEST(RtlSim, CounterWithEnable) {
  Builder b("counter");
  Wire en = b.input("en", 1);
  Wire q = b.reg("count", 8);
  b.connect(q, b.add(q, b.constant(8, 1)));
  b.enable(q, en);
  b.output("count", q);
  Module m = b.take();
  Simulator sim(m);
  sim.set_input("en", 1);
  sim.step(5);
  EXPECT_EQ(sim.output("count").to_u64(), 5u);
  sim.set_input("en", 0);
  sim.step(10);
  EXPECT_EQ(sim.output("count").to_u64(), 5u);
  sim.set_input("en", 1);
  sim.step(1);
  EXPECT_EQ(sim.output("count").to_u64(), 6u);
}

TEST(RtlSim, RegisterInitAndReset) {
  Builder b("m");
  Wire q = b.reg("r", 8, 0xa5);
  b.connect(q, b.constant(8, 0x11));
  b.output("q", q);
  Module m = b.take();
  Simulator sim(m);
  EXPECT_EQ(sim.output("q").to_u64(), 0xa5u);
  sim.step();
  EXPECT_EQ(sim.output("q").to_u64(), 0x11u);
  sim.reset();
  EXPECT_EQ(sim.output("q").to_u64(), 0xa5u);
  EXPECT_EQ(sim.cycle_count(), 1u);
}

TEST(RtlSim, RegistersCaptureSimultaneously) {
  // Classic swap: a <= b, b <= a must exchange values every cycle.
  Builder b("swap");
  Wire ra = b.reg("ra", 4, 0x3);
  Wire rb = b.reg("rb", 4, 0xc);
  b.connect(ra, rb);
  b.connect(rb, ra);
  b.output("a", ra);
  b.output("b", rb);
  Module m = b.take();
  Simulator sim(m);
  sim.step();
  EXPECT_EQ(sim.output("a").to_u64(), 0xcu);
  EXPECT_EQ(sim.output("b").to_u64(), 0x3u);
  sim.step();
  EXPECT_EQ(sim.output("a").to_u64(), 0x3u);
  EXPECT_EQ(sim.output("b").to_u64(), 0xcu);
}

TEST(RtlSim, MemoryReadModifyWrite) {
  // One-port histogram-style accumulator: mem[addr] += 1 when en.
  Builder b("hist");
  Wire addr = b.input("addr", 4);
  Wire en = b.input("en", 1);
  MemHandle mem = b.memory("bins", 16, 8);
  Wire cur = b.mem_read(mem, addr);
  b.mem_write(mem, addr, b.add(cur, b.constant(8, 1)), en);
  b.output("cur", cur);
  Module m = b.take();
  Simulator sim(m);
  sim.set_input("en", 1);
  sim.set_input("addr", 5);
  sim.step(3);
  sim.set_input("addr", 2);
  sim.step(1);
  EXPECT_EQ(sim.mem_word(0, 5).to_u64(), 3u);
  EXPECT_EQ(sim.mem_word(0, 2).to_u64(), 1u);
  EXPECT_EQ(sim.mem_word(0, 0).to_u64(), 0u);
  sim.reset();
  EXPECT_EQ(sim.mem_word(0, 5).to_u64(), 0u);
}

TEST(RtlSim, MemReadOutOfDepthReadsZero) {
  Builder b("m");
  Wire addr = b.input("addr", 4);
  MemHandle mem = b.memory("ram", 10, 8);  // depth 10 < 2^4
  b.output("q", b.mem_read(mem, addr));
  Module m = b.take();
  Simulator sim(m);
  sim.poke_mem(0, 9, Bits(8, 0x7f));
  sim.set_input("addr", 9);
  EXPECT_EQ(sim.output("q").to_u64(), 0x7fu);
  sim.set_input("addr", 12);
  EXPECT_EQ(sim.output("q").to_u64(), 0u);
}

TEST(RtlSim, VariableShift) {
  Builder b("m");
  Wire a = b.input("a", 16);
  Wire s = b.input("s", 4);
  b.output("l", b.shlv(a, s));
  b.output("r", b.lshrv(a, s));
  Module m = b.take();
  Simulator sim(m);
  sim.set_input("a", 0x00f0);
  sim.set_input("s", 4);
  EXPECT_EQ(sim.output("l").to_u64(), 0x0f00u);
  EXPECT_EQ(sim.output("r").to_u64(), 0x000fu);
}

TEST(RtlSim, ReductionsAndExtensions) {
  Builder b("m");
  Wire a = b.input("a", 4);
  b.output("ro", b.red_or(a));
  b.output("ra", b.red_and(a));
  b.output("rx", b.red_xor(a));
  b.output("z", b.zext(a, 8));
  b.output("s", b.sext(a, 8));
  Module m = b.take();
  Simulator sim(m);
  sim.set_input("a", 0b1010);
  EXPECT_EQ(sim.output("ro").to_u64(), 1u);
  EXPECT_EQ(sim.output("ra").to_u64(), 0u);
  EXPECT_EQ(sim.output("rx").to_u64(), 0u);
  EXPECT_EQ(sim.output("z").to_u64(), 0x0au);
  EXPECT_EQ(sim.output("s").to_u64(), 0xfau);
  sim.set_input("a", 0b1111);
  EXPECT_EQ(sim.output("ra").to_u64(), 1u);
  sim.set_input("a", 0b0111);
  EXPECT_EQ(sim.output("rx").to_u64(), 1u);
  sim.set_input("a", 0);
  EXPECT_EQ(sim.output("ro").to_u64(), 0u);
}

TEST(RtlSim, PokeRegFaultInjection) {
  Builder b("m");
  Wire q = b.reg("state", 8, 0);
  b.connect(q, q);  // holds value
  b.output("q", q);
  Module m = b.take();
  Simulator sim(m);
  sim.poke_reg("state", Bits(8, 0xee));
  EXPECT_EQ(sim.output("q").to_u64(), 0xeeu);
  sim.step(3);
  EXPECT_EQ(sim.output("q").to_u64(), 0xeeu);
  EXPECT_THROW(sim.poke_reg("nope", Bits(8, 0)), std::logic_error);
  EXPECT_THROW(sim.poke_reg("state", Bits(4, 0)), std::logic_error);
}

TEST(RtlSim, UnknownPortsThrow) {
  Module m = make_alu();
  Simulator sim(m);
  EXPECT_THROW(sim.set_input("zz", 1), std::logic_error);
  EXPECT_THROW(sim.output("zz"), std::logic_error);
  EXPECT_THROW(sim.set_input("a", Bits(9, 0)), std::logic_error);
}

// Property: a pipelined multiplier datapath (two stages) matches the
// native product delayed by two cycles, for random stimuli.
TEST(RtlSimProperty, PipelinedMultiplierMatchesReference) {
  Builder b("pipe_mul");
  Wire a = b.input("a", 16);
  Wire x = b.input("b", 16);
  Wire s1a = b.reg("s1a", 16);
  Wire s1b = b.reg("s1b", 16);
  b.connect(s1a, a);
  b.connect(s1b, x);
  Wire prod = b.mul(s1a, s1b);
  Wire s2 = b.reg("s2", 16);
  b.connect(s2, prod);
  b.output("p", s2);
  Module m = b.take();
  Simulator sim(m);

  std::mt19937_64 rng(77);
  std::vector<std::uint64_t> expect;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t va = rng() & 0xffff;
    const std::uint64_t vb = rng() & 0xffff;
    expect.push_back((va * vb) & 0xffff);
    sim.set_input("a", va);
    sim.set_input("b", vb);
    sim.step();
    if (i >= 2) {
      EXPECT_EQ(sim.output("p").to_u64(), expect[i - 1]);
    }
    sim.step(0);
  }
}

TEST(RtlSim, HandlesDriveAndReadPortsWithoutNameLookups) {
  Builder b("h");
  Wire a = b.input("a", 8);
  Wire x = b.input("b", 8);
  b.output("sum", b.add(a, x));
  b.output("prod", b.mul(a, x));
  Simulator sim(b.take());

  const InputHandle ha = sim.input_handle("a");
  const InputHandle hb = sim.input_handle("b");
  const OutputHandle hs = sim.output_handle("sum");
  const OutputHandle hp = sim.output_handle("prod");
  sim.set_input(ha, Bits(8, 7));
  sim.set_input(hb, std::uint64_t{0x105});  // u64 overload truncates: 0x05
  EXPECT_EQ(sim.output(hs).to_u64(), 12u);
  EXPECT_EQ(sim.output(hp).to_u64(), 35u);

  EXPECT_THROW(sim.input_handle("nope"), std::logic_error);
  EXPECT_THROW(sim.output_handle("nope"), std::logic_error);
  EXPECT_THROW(sim.set_input(ha, Bits(9, 0)), std::logic_error);
}

TEST(RtlSim, WideConcatEvaluatesLinearly) {
  // Many-operand concat: each operand deposited once (regression for the
  // quadratic accumulator rebuild); values must match bit-by-bit.
  Builder b("cat");
  std::vector<Wire> parts;
  for (int i = 0; i < 16; ++i)
    parts.push_back(b.input("i" + std::to_string(i), 5));
  b.output("o", b.concat(parts));
  Simulator sim(b.take());
  std::mt19937_64 rng(9);
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 16; ++i) {
    vals.push_back(rng() & 0x1f);
    sim.set_input("i" + std::to_string(i), vals.back());
  }
  const Bits o = sim.output("o");
  ASSERT_EQ(o.width(), 80u);
  // parts[0] is the MOST significant chunk.
  for (int i = 0; i < 16; ++i)
    for (unsigned bit = 0; bit < 5; ++bit)
      EXPECT_EQ(o.bit((15 - i) * 5 + bit), ((vals[i] >> bit) & 1) != 0)
          << i << "." << bit;
}

}  // namespace
}  // namespace osss::rtl
