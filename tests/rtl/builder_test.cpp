// Tests for RTL module construction and validation: the width discipline
// the "VHDL flow" relies on.

#include "rtl/builder.hpp"

#include <gtest/gtest.h>

namespace osss::rtl {
namespace {

TEST(Builder, AddrWidthFor) {
  EXPECT_EQ(addr_width_for(1), 1u);
  EXPECT_EQ(addr_width_for(2), 1u);
  EXPECT_EQ(addr_width_for(3), 2u);
  EXPECT_EQ(addr_width_for(4), 2u);
  EXPECT_EQ(addr_width_for(5), 3u);
  EXPECT_EQ(addr_width_for(64), 6u);
  EXPECT_EQ(addr_width_for(65), 7u);
  EXPECT_EQ(addr_width_for(256), 8u);
}

TEST(Builder, SimpleCombModule) {
  Builder b("adder");
  Wire a = b.input("a", 8);
  Wire c = b.input("b", 8);
  b.output("sum", b.add(a, c));
  Module m = b.take();
  EXPECT_EQ(m.name(), "adder");
  EXPECT_EQ(m.inputs().size(), 2u);
  EXPECT_EQ(m.outputs().size(), 1u);
  EXPECT_NE(m.find_input("a"), kInvalidNode);
  EXPECT_EQ(m.find_input("nope"), kInvalidNode);
}

TEST(Builder, WidthMismatchThrowsAtConstruction) {
  Builder b("bad");
  Wire a = b.input("a", 8);
  Wire c = b.input("b", 9);
  EXPECT_THROW(b.add(a, c), std::logic_error);
  EXPECT_THROW(b.mux(a, a, a), std::logic_error);  // sel not 1 bit
  EXPECT_THROW(b.slice(a, 8, 0), std::logic_error);
  EXPECT_THROW(b.zext(a, 4), std::logic_error);
}

TEST(Builder, UnconnectedRegisterFailsValidation) {
  Builder b("bad");
  b.output("q", b.reg("r", 4));
  EXPECT_THROW(b.take(), std::logic_error);
}

TEST(Builder, DoubleConnectThrows) {
  Builder b("bad");
  Wire q = b.reg("r", 4);
  Wire d = b.constant(4, 1);
  b.connect(q, d);
  EXPECT_THROW(b.connect(q, d), std::logic_error);
}

TEST(Builder, CombinationalCycleDetected) {
  // A register's D may depend on its own Q (that is sequential feedback),
  // but we cannot build a purely combinational cycle through the public
  // API; verify sequential feedback passes validation.
  Builder b("feedback");
  Wire q = b.reg("count", 8);
  b.connect(q, b.add(q, b.constant(8, 1)));
  b.output("count", q);
  EXPECT_NO_THROW(b.take());
}

TEST(Builder, TakeTwiceThrows) {
  Builder b("m");
  b.output("k", b.constant(1, 0));
  (void)b.take();
  EXPECT_THROW(b.take(), std::logic_error);
}

TEST(Builder, MemoryPortWidthChecked) {
  Builder b("m");
  MemHandle mem = b.memory("ram", 64, 16);
  EXPECT_EQ(b.mem_addr_width(mem), 6u);
  Wire bad_addr = b.input("a", 5);
  EXPECT_THROW(b.mem_read(mem, bad_addr), std::logic_error);
}

TEST(Builder, StatsCountLogicNotWiring) {
  Builder b("m");
  Wire a = b.input("a", 8);
  Wire c = b.input("b", 8);
  Wire s = b.add(a, c);
  Wire m1 = b.mux(b.bit(s, 0), a, c);
  b.output("o", b.concat({s, m1}));
  Module m = b.take();
  const ModuleStats st = m.stats();
  EXPECT_EQ(st.arith_nodes, 1u);
  EXPECT_EQ(st.mux_nodes, 1u);
  EXPECT_EQ(st.register_bits, 0u);
}

TEST(Builder, DumpContainsNodes) {
  Builder b("m");
  Wire a = b.input("a", 4);
  b.output("o", b.not_(a));
  Module m = b.take();
  const std::string d = m.dump();
  EXPECT_NE(d.find("module m"), std::string::npos);
  EXPECT_NE(d.find("not"), std::string::npos);
  EXPECT_NE(d.find("out o"), std::string::npos);
}

}  // namespace
}  // namespace osss::rtl
