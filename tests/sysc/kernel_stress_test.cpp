// Randomized stress test for the simulation kernel: many clocked threads
// and methods across two clock domains, random wait patterns, synchronous
// resets asserted mid-run — and, the property under test, bit-identical
// determinism: two runs built from the same seed must produce the same
// event log, the same final state and the same delta-cycle count.  Seeds
// come from verify::StimGen::derive and are printed on failure.

#include "sysc/module.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <random>
#include <string>
#include <vector>

#include "verify/stimgen.hpp"

namespace osss::sysc {
namespace {

constexpr unsigned kThreads = 10;

struct RunLog {
  std::vector<std::string> events;  ///< "time:counter=value" per change
  std::vector<int> mid_reset_probe;
  std::vector<int> finals;
  std::uint64_t deltas = 0;
};

/// One full simulation: kThreads clocked threads split over two unrelated
/// clock domains, each waiting a random 1..4 cycles between increments,
/// one observer method per counter, and two mid-run reset pulses.
RunLog run_scenario(std::uint64_t seed) {
  Context ctx;
  Clock clk_a(ctx, "clk_a", 1000);
  Clock clk_b(ctx, "clk_b", 1700);
  Signal<bool> reset(ctx, "reset", false);
  RunLog log;

  std::deque<Signal<int>> counters;  // deque: stable addresses
  for (unsigned i = 0; i < kThreads; ++i)
    counters.emplace_back(ctx, "c" + std::to_string(i), 0);

  for (unsigned i = 0; i < kThreads; ++i) {
    Signal<bool>& clk = (i % 2 == 0) ? clk_a.signal() : clk_b.signal();
    const std::string name = "t" + std::to_string(i);
    auto& proc = ctx.create_cthread(
        name, clk, [&ctx, &counters, i, name, seed]() -> Behavior {
          // Re-seeded per restart, so a reset replays the same schedule.
          std::mt19937_64 rng(verify::StimGen::derive(seed, name));
          counters[i].write(0);
          co_await wait();
          for (;;) {
            co_await wait(1 + static_cast<unsigned>(rng() % 4));
            counters[i].write(counters[i].read() + 1 +
                              static_cast<int>(rng() % 3));
          }
        });
    proc.set_reset(reset);
  }

  for (unsigned i = 0; i < kThreads; ++i) {
    ctx.create_method(
        "w" + std::to_string(i),
        [&ctx, &counters, &log, i] {
          log.events.push_back(std::to_string(ctx.now()) + ":c" +
                               std::to_string(i) + "=" +
                               std::to_string(counters[i].read()));
        },
        {&counters[i]});
  }

  // Two synchronous reset pulses while everything is running.  Each window
  // spans at least one posedge of both clocks, so every thread restarts.
  ctx.kernel().schedule(40'000, [&reset] { reset.write(true); });
  ctx.kernel().schedule(43'000, [&reset] { reset.write(false); });
  ctx.kernel().schedule(43'100, [&counters, &log] {
    for (unsigned i = 0; i < kThreads; ++i)
      log.mid_reset_probe.push_back(counters[i].read());
  });
  ctx.kernel().schedule(90'000, [&reset] { reset.write(true); });
  ctx.kernel().schedule(93'500, [&reset] { reset.write(false); });

  ctx.run_for(150'000);
  log.deltas = ctx.kernel().delta_count();
  for (unsigned i = 0; i < kThreads; ++i)
    log.finals.push_back(counters[i].read());
  return log;
}

TEST(KernelStress, IdenticallySeededRunsAreBitIdentical) {
  const std::uint64_t seed =
      verify::StimGen::derive(verify::env_seed(55), "kernel_stress");
  const RunLog a = run_scenario(seed);
  const RunLog b = run_scenario(seed);
  EXPECT_EQ(a.events, b.events) << "seed " << seed;
  EXPECT_EQ(a.finals, b.finals) << "seed " << seed;
  EXPECT_EQ(a.deltas, b.deltas) << "seed " << seed;
  EXPECT_EQ(a.mid_reset_probe, b.mid_reset_probe) << "seed " << seed;

  // Sanity: the scenario actually exercised the kernel.
  EXPECT_GT(a.events.size(), 200u) << "seed " << seed;
  EXPECT_GT(a.deltas, 100u) << "seed " << seed;
  for (unsigned i = 0; i < kThreads; ++i)
    EXPECT_GT(a.finals[i], 0) << "thread " << i << " stuck, seed " << seed;
}

TEST(KernelStress, MidRunResetZerosEveryCounter) {
  const std::uint64_t seed =
      verify::StimGen::derive(verify::env_seed(55), "kernel_stress/reset");
  const RunLog log = run_scenario(seed);
  ASSERT_EQ(log.mid_reset_probe.size(), kThreads) << "seed " << seed;
  for (unsigned i = 0; i < kThreads; ++i)
    EXPECT_EQ(log.mid_reset_probe[i], 0)
        << "counter " << i << " survived reset, seed " << seed;
  // After the last reset release the threads resume counting.
  for (unsigned i = 0; i < kThreads; ++i)
    EXPECT_GT(log.finals[i], 0) << "seed " << seed;
}

TEST(KernelStress, DifferentSeedsProduceDifferentSchedules) {
  const std::uint64_t base = verify::env_seed(55);
  const RunLog a = run_scenario(verify::StimGen::derive(base, "s/1"));
  const RunLog b = run_scenario(verify::StimGen::derive(base, "s/2"));
  EXPECT_NE(a.events, b.events);
}

}  // namespace
}  // namespace osss::sysc
