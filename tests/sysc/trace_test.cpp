// Tests for VCD tracing, including tracing of whole objects through
// to_bits() — the paper's sc_trace-for-objects pattern (Figs. 9/10).

#include "sysc/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace osss::sysc {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class TraceTest : public ::testing::Test {
protected:
  std::string path_ = ::testing::TempDir() + "osss_trace_test.vcd";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TraceTest, WritesHeaderAndChanges) {
  {
    Context ctx;
    Clock clk(ctx, "clk", 1000);
    Signal<bool> s(ctx, "s", false);
    TraceFile tf(ctx, path_);
    tf.trace(clk.signal(), "clk");
    tf.trace(s, "s");
    ctx.create_cthread("t", clk.signal(), [&]() -> Behavior {
      s.write(true);
      co_await wait();
    });
    ctx.run_for(2000);
    EXPECT_GT(tf.change_count(), 0u);
  }
  const std::string vcd = slurp(path_);
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! clk $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("#500"), std::string::npos);  // first posedge
  EXPECT_NE(vcd.find("1!"), std::string::npos);    // clk rising
}

TEST_F(TraceTest, MultiBitUsesBinaryFormat) {
  {
    Context ctx;
    Clock clk(ctx, "clk", 1000);
    Signal<BitVector<4>> v(ctx, "v");
    TraceFile tf(ctx, path_);
    tf.trace(v, "v");
    ctx.create_cthread("t", clk.signal(), [&]() -> Behavior {
      v.write(BitVector<4>(0b1010));
      co_await wait();
    });
    ctx.run_for(1500);
  }
  const std::string vcd = slurp(path_);
  EXPECT_NE(vcd.find("$var wire 4"), std::string::npos);
  EXPECT_NE(vcd.find("b1010 "), std::string::npos);
}

// An OSSS-style object traced through to_bits(), like sc_trace on
// SyncRegister in the paper.
struct TraceableObject {
  BitVector<8> value;
  bool operator==(const TraceableObject&) const = default;
  Bits to_bits() const { return value.to_bits(); }
};

TEST_F(TraceTest, ObjectsTraceViaToBits) {
  {
    Context ctx;
    Clock clk(ctx, "clk", 1000);
    Signal<TraceableObject> obj(ctx, "obj");
    TraceFile tf(ctx, path_);
    tf.trace(obj, "obj");
    ctx.create_cthread("t", clk.signal(), [&]() -> Behavior {
      obj.write(TraceableObject{BitVector<8>(0x5a)});
      co_await wait();
    });
    ctx.run_for(1500);
  }
  const std::string vcd = slurp(path_);
  EXPECT_NE(vcd.find("$var wire 8"), std::string::npos);
  EXPECT_NE(vcd.find("b01011010 "), std::string::npos);
}

TEST_F(TraceTest, TraceFnSamplesArbitraryState) {
  unsigned counter = 0;
  {
    Context ctx;
    Clock clk(ctx, "clk", 1000);
    TraceFile tf(ctx, path_);
    tf.trace_fn("counter", 16, [&] { return Bits(16, counter); });
    ctx.create_cthread("t", clk.signal(), [&]() -> Behavior {
      for (;;) {
        ++counter;
        co_await wait();
      }
    });
    ctx.run_for(3000);
  }
  const std::string vcd = slurp(path_);
  EXPECT_NE(vcd.find("b0000000000000001 "), std::string::npos);
  EXPECT_NE(vcd.find("b0000000000000011 "), std::string::npos);
}

TEST_F(TraceTest, RegistrationAfterRunThrows) {
  Context ctx;
  Clock clk(ctx, "clk", 1000);
  Signal<bool> s(ctx, "s", false);
  TraceFile tf(ctx, path_);
  tf.trace(s, "s");
  ctx.run_for(1000);
  Signal<bool> late(ctx, "late", false);
  EXPECT_THROW(tf.trace(late, "late"), std::logic_error);
}

TEST_F(TraceTest, GetterWidthMismatchIsNormalizedToVarWidth) {
  // A getter returning a Bits sized differently from the declared $var
  // width must be zero-extended/truncated, not dumped verbatim.
  {
    Context ctx;
    Clock clk(ctx, "clk", 1000);
    TraceFile tf(ctx, path_);
    tf.trace_fn("narrow", 4, [] { return Bits(8, 0xab); });   // truncate
    tf.trace_fn("wide", 8, [] { return Bits(4, 0x5); });      // zero-extend
    tf.trace_fn("flag", 1, [] { return Bits(8, 0xfe); });     // 1-bit var
    ctx.run_for(1500);
  }
  const std::string vcd = slurp(path_);
  EXPECT_NE(vcd.find("$var wire 4 ! narrow $end"), std::string::npos);
  EXPECT_NE(vcd.find("b1011 !"), std::string::npos);       // 0xab -> 0xb
  EXPECT_NE(vcd.find("b00000101 \""), std::string::npos);  // 0x5 zext to 8
  EXPECT_NE(vcd.find("0#"), std::string::npos);  // lsb of 0xfe is 0
  EXPECT_EQ(vcd.find("b10101011"), std::string::npos);  // raw 8-bit leak
}

TEST_F(TraceTest, UnchangedSignalsProduceNoChurn) {
  std::uint64_t changes = 0;
  {
    Context ctx;
    Clock clk(ctx, "clk", 1000);
    Signal<bool> steady(ctx, "steady", false);
    TraceFile tf(ctx, path_);
    tf.trace(steady, "steady");
    ctx.run_for(10'000);
    changes = tf.change_count();
  }
  EXPECT_EQ(changes, 1u);  // only the initial dump
}

}  // namespace
}  // namespace osss::sysc
