// Tests for the kernel's dynamic race detector: same-delta write-write
// conflicts (RACE-001), multi-driver signals (RACE-002) and reads of
// signals with a pending update (RACE-003), plus the opt-in semantics
// (off by default, strict only when enabled through OSSS_RACE_CHECK).

#include "sysc/module.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "lint/diag.hpp"

namespace osss::sysc {
namespace {

// Two methods, both sensitive to the same trigger, writing *different*
// values to one signal in the same delta: the classic nondeterministic
// last-writer-wins race.
TEST(RaceCheck, SameDeltaConflictingWritesAreRace001Errors) {
  Context ctx;
  kernel_of(ctx).set_race_check(true);
  Signal<bool> go(ctx, "go", false);
  Signal<int> s(ctx, "s", 0);
  ctx.create_method("w1", [&] { s.write(1); }, {&go});
  ctx.create_method("w2", [&] { s.write(2); }, {&go});
  go.write(true);  // testbench write: kicks both methods, itself race-free
  ctx.run_for(10);

  const lint::Report& r = kernel_of(ctx).race_report();
  ASSERT_TRUE(r.has("RACE-001")) << r.text();
  bool saw_error = false;
  for (const auto& d : r.by_rule("RACE-001"))
    if (d.severity == lint::Severity::kError) saw_error = true;
  EXPECT_TRUE(saw_error) << r.text();
  EXPECT_FALSE(r.clean()) << r.text();
}

// Same shape, but both writers agree on the value: outcome-deterministic,
// so only a warning.
TEST(RaceCheck, SameDeltaAgreeingWritesAreRace001Warnings) {
  Context ctx;
  kernel_of(ctx).set_race_check(true);
  Signal<bool> go(ctx, "go", false);
  Signal<int> s(ctx, "s", 0);
  ctx.create_method("w1", [&] { s.write(7); }, {&go});
  ctx.create_method("w2", [&] { s.write(7); }, {&go});
  go.write(true);
  ctx.run_for(10);

  const lint::Report& r = kernel_of(ctx).race_report();
  ASSERT_TRUE(r.has("RACE-001")) << r.text();
  for (const auto& d : r.by_rule("RACE-001"))
    EXPECT_EQ(d.severity, lint::Severity::kWarning) << r.text();
  EXPECT_TRUE(r.clean()) << r.text();
}

// Two processes drive the same signal in *different* deltas: no RACE-001,
// but the signal has two drivers over its lifetime -> RACE-002 warning.
TEST(RaceCheck, MultipleDriversAcrossDeltasAreRace002) {
  Context ctx;
  kernel_of(ctx).set_race_check(true);
  Clock clk(ctx, "clk", 1000);
  Signal<int> s(ctx, "s", 0);
  int phase = 0;
  ctx.create_cthread("t1", clk.signal(), [&]() -> Behavior {
    for (;;) {
      if (phase == 0) s.write(1);
      co_await wait();
    }
  });
  ctx.create_cthread("t2", clk.signal(), [&]() -> Behavior {
    for (;;) {
      if (phase == 1) s.write(2);
      co_await wait();
    }
  });
  ctx.run_for(1000);
  phase = 1;
  ctx.run_for(2000);

  const lint::Report& r = kernel_of(ctx).race_report();
  ASSERT_TRUE(r.has("RACE-002")) << r.text();
  EXPECT_EQ(r.by_rule("RACE-002")[0].severity, lint::Severity::kWarning);
  EXPECT_FALSE(r.has("RACE-001")) << r.text();
}

// One process writes, another reads the same signal in the same delta:
// the reader observes the stale value (two-phase semantics make this
// well-defined but order-sensitive across kernels) -> RACE-003 info.
TEST(RaceCheck, ReadOfPendingWriteIsRace003Info) {
  Context ctx;
  kernel_of(ctx).set_race_check(true);
  Signal<bool> go(ctx, "go", false);
  Signal<int> s(ctx, "s", 0);
  int seen = -1;
  ctx.create_method("w", [&] { s.write(5); }, {&go});
  ctx.create_method("r", [&] { seen = s.read(); }, {&go});
  go.write(true);
  ctx.run_for(10);

  const lint::Report& r = kernel_of(ctx).race_report();
  ASSERT_TRUE(r.has("RACE-003")) << r.text();
  EXPECT_EQ(r.by_rule("RACE-003")[0].severity, lint::Severity::kInfo);
  EXPECT_TRUE(r.clean()) << r.text();
  EXPECT_EQ(s.read(), 5);
}

// Detection is opt-in: the racy design from the first test produces an
// empty report when the check is off.
TEST(RaceCheck, DisabledDetectorReportsNothing) {
  Context ctx;
  kernel_of(ctx).set_race_check(false);
  Signal<bool> go(ctx, "go", false);
  Signal<int> s(ctx, "s", 0);
  ctx.create_method("w1", [&] { s.write(1); }, {&go});
  ctx.create_method("w2", [&] { s.write(2); }, {&go});
  go.write(true);
  ctx.run_for(10);
  EXPECT_TRUE(kernel_of(ctx).race_report().empty());
}

// Enabling via the environment arms *strict* mode: run_until throws on a
// write-write race, sanitizer-style, so CI pipelines fail loudly.
TEST(RaceCheck, EnvironmentEnabledStrictModeThrows) {
  const char* old = std::getenv("OSSS_RACE_CHECK");
  const std::string saved = old ? old : "";
  setenv("OSSS_RACE_CHECK", "1", 1);
  {
    Context ctx;  // kernel constructed while the env var is set
    Signal<bool> go(ctx, "go", false);
    Signal<int> s(ctx, "s", 0);
    ctx.create_method("w1", [&] { s.write(1); }, {&go});
    ctx.create_method("w2", [&] { s.write(2); }, {&go});
    go.write(true);
    EXPECT_THROW(ctx.run_for(10), std::logic_error);
  }
  {
    // Clean designs run to completion under the same environment.
    Context ctx;
    Clock clk(ctx, "clk", 1000);
    Signal<int> s(ctx, "s", 0);
    ctx.create_cthread("t", clk.signal(), [&]() -> Behavior {
      for (;;) {
        s.write(s.read() + 1);
        co_await wait();
      }
    });
    EXPECT_NO_THROW(ctx.run_for(5000));
  }
  if (old)
    setenv("OSSS_RACE_CHECK", saved.c_str(), 1);
  else
    unsetenv("OSSS_RACE_CHECK");
}

// Explicit set_race_check() never throws, even on an error race: tests
// with deliberate races inspect the report instead.
TEST(RaceCheck, ExplicitEnableIsNonStrict) {
  Context ctx;
  kernel_of(ctx).set_race_check(true);
  Signal<bool> go(ctx, "go", false);
  Signal<int> s(ctx, "s", 0);
  ctx.create_method("w1", [&] { s.write(1); }, {&go});
  ctx.create_method("w2", [&] { s.write(2); }, {&go});
  go.write(true);
  EXPECT_NO_THROW(ctx.run_for(10));
  EXPECT_FALSE(kernel_of(ctx).race_report().clean());
}

}  // namespace
}  // namespace osss::sysc
