// Tests for the fixed-width BitVector<W> simulation datatype, including the
// cross-checks against the dynamic Bits representation that the synthesis
// stack relies on for bit-accuracy (experiment R8's foundation).

#include "sysc/bitvector.hpp"

#include <gtest/gtest.h>

#include <random>

namespace osss::sysc {
namespace {

TEST(BitVector, DefaultZero) {
  BitVector<12> v;
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.to_u64(), 0u);
}

TEST(BitVector, ConstructorTruncates) {
  BitVector<4> v(0x1f);
  EXPECT_EQ(v.to_u64(), 0xfu);
}

TEST(BitVector, BitSetGet) {
  BitVector<70> v;
  v.set_bit(69, true);
  v.set_bit(1, true);
  EXPECT_TRUE(v.bit(69));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(68));
  EXPECT_TRUE(v.msb());
}

TEST(BitVector, ArithmeticWraps) {
  BitVector<4> a(0xf);
  BitVector<4> b(1);
  EXPECT_EQ((a + b).to_u64(), 0u);
  EXPECT_EQ((b - a).to_u64(), 2u);
  EXPECT_EQ((a * a).to_u64(), (15u * 15u) & 0xfu);
}

TEST(BitVector, Bitwise) {
  BitVector<8> a(0b1100'1010);
  BitVector<8> b(0b1010'0110);
  EXPECT_EQ((a & b).to_u64(), 0b1000'0010u);
  EXPECT_EQ((a | b).to_u64(), 0b1110'1110u);
  EXPECT_EQ((a ^ b).to_u64(), 0b0110'1100u);
  EXPECT_EQ((~a).to_u64(), 0b0011'0101u);
}

TEST(BitVector, Shifts) {
  BitVector<8> a(0b1001'0110);
  EXPECT_EQ(a.shl(2).to_u64(), 0b0101'1000u);
  EXPECT_EQ(a.lshr(3).to_u64(), 0b0001'0010u);
  EXPECT_EQ(a.shl(8).to_u64(), 0u);
}

TEST(BitVector, Comparisons) {
  BitVector<8> a(3);
  BitVector<8> b(200);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(b >= b);
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(a == BitVector<8>(3));
}

TEST(BitVector, SliceCompileTimeChecked) {
  BitVector<16> a(0xabcd);
  EXPECT_EQ((a.slice<7, 0>().to_u64()), 0xcdu);
  EXPECT_EQ((a.slice<15, 12>().to_u64()), 0xau);
  EXPECT_EQ((a.slice<11, 4>().to_u64()), 0xbcu);
}

TEST(BitVector, ConcatOrdersHighLow) {
  BitVector<4> hi(0xa);
  BitVector<8> lo(0xcd);
  const BitVector<12> c = concat(hi, lo);
  EXPECT_EQ(c.to_u64(), 0xacdu);
}

TEST(BitVector, Resize) {
  BitVector<4> a(0b1010);
  EXPECT_EQ(a.resize<8>().to_u64(), 0x0au);
  EXPECT_EQ(a.resize<2>().to_u64(), 0b10u);
}

TEST(BitVector, BitsRoundTrip) {
  BitVector<100> v;
  v.set_bit(99, true);
  v.set_bit(42, true);
  v.set_bit(0, true);
  const Bits b = v.to_bits();
  EXPECT_EQ(b.width(), 100u);
  EXPECT_TRUE(BitVector<100>::from_bits(b) == v);
}

TEST(BitVector, FromBitsWidthChecked) {
  EXPECT_THROW(BitVector<8>::from_bits(Bits(9, 0)), std::invalid_argument);
}

// Property: BitVector<W> ops agree with Bits ops for random values — the
// fast simulation datapath and the synthesis-value datapath are one model.
template <unsigned W>
void check_agreement(std::mt19937_64& rng) {
  for (int i = 0; i < 200; ++i) {
    BitVector<W> a;
    BitVector<W> b;
    for (unsigned j = 0; j < W; ++j) {
      a.set_bit(j, (rng() & 1) != 0);
      b.set_bit(j, (rng() & 1) != 0);
    }
    const Bits ba = a.to_bits();
    const Bits bb = b.to_bits();
    EXPECT_TRUE((a + b).to_bits() == ba + bb);
    EXPECT_TRUE((a - b).to_bits() == ba - bb);
    EXPECT_TRUE((a * b).to_bits() == ba * bb);
    EXPECT_TRUE((a & b).to_bits() == (ba & bb));
    EXPECT_TRUE((a | b).to_bits() == (ba | bb));
    EXPECT_TRUE((a ^ b).to_bits() == (ba ^ bb));
    EXPECT_TRUE((~a).to_bits() == ~ba);
    EXPECT_EQ(a < b, Bits::ult(ba, bb));
    const unsigned s = static_cast<unsigned>(rng() % (W + 1));
    EXPECT_TRUE(a.shl(s).to_bits() == ba.shl(s));
    EXPECT_TRUE(a.lshr(s).to_bits() == ba.lshr(s));
  }
}

TEST(BitVectorProperty, AgreesWithBits) {
  std::mt19937_64 rng(1234);
  check_agreement<1>(rng);
  check_agreement<4>(rng);
  check_agreement<8>(rng);
  check_agreement<17>(rng);
  check_agreement<32>(rng);
  check_agreement<64>(rng);
  check_agreement<65>(rng);
  check_agreement<128>(rng);
}

}  // namespace
}  // namespace osss::sysc
