// Tests for the simulation kernel: delta-cycle semantics, clocked threads,
// synchronous reset restart (watching semantics), multi-cycle waits, method
// sensitivity and clock generation.

#include "sysc/module.hpp"

#include <gtest/gtest.h>

#include "sysc/bitvector.hpp"

#include <vector>

namespace osss::sysc {
namespace {

constexpr Time kPeriod = 15151;  // ~66 MHz in ps, like the ExpoCU clock

TEST(Kernel, ClockTogglesAtExpectedTimes) {
  Context ctx;
  Clock clk(ctx, "clk", 1000);
  std::vector<Time> posedges;
  Signal<bool>& c = clk.signal();
  ctx.create_method(
      "watch",
      [&] {
        if (c.read()) posedges.push_back(ctx.now());
      },
      {&c});
  ctx.run_for(3499);
  ASSERT_EQ(posedges.size(), 3u);
  EXPECT_EQ(posedges[0], 500u);
  EXPECT_EQ(posedges[1], 1500u);
  EXPECT_EQ(posedges[2], 2500u);
}

TEST(Kernel, SignalWriteVisibleNextDelta) {
  Context ctx;
  Signal<int> s(ctx, "s", 0);
  int observed_during_write = -1;
  Clock clk(ctx, "clk", 1000);
  ctx.create_cthread("t", clk.signal(), [&]() -> Behavior {
    s.write(42);
    observed_during_write = s.read();  // old value: update is deferred
    co_await wait();
  });
  ctx.run_for(1000);
  EXPECT_EQ(observed_during_write, 0);
  EXPECT_EQ(s.read(), 42);
}

TEST(Kernel, CThreadRunsOncePerPosedge) {
  Context ctx;
  Clock clk(ctx, "clk", 1000);
  int count = 0;
  ctx.create_cthread("t", clk.signal(), [&]() -> Behavior {
    for (;;) {
      ++count;
      co_await wait();
    }
  });
  ctx.run_for(10'000);  // posedges at 500, 1500, ..., 9500 -> 10 edges
  // Initialization runs the body once (count=1 before the first edge).
  EXPECT_EQ(count, 11);
}

TEST(Kernel, WaitMultipleCyclesSkipsEdges) {
  Context ctx;
  Clock clk(ctx, "clk", 1000);
  std::vector<Time> wake_times;
  ctx.create_cthread("t", clk.signal(), [&]() -> Behavior {
    for (;;) {
      co_await wait(3);
      wake_times.push_back(ctx.now());
    }
  });
  ctx.run_for(10'000);
  ASSERT_GE(wake_times.size(), 3u);
  EXPECT_EQ(wake_times[0], 2500u);  // 3rd posedge
  EXPECT_EQ(wake_times[1], 5500u);
  EXPECT_EQ(wake_times[2], 8500u);
}

TEST(Kernel, SynchronousResetRestartsThread) {
  Context ctx;
  Clock clk(ctx, "clk", kPeriod);
  Signal<bool> reset(ctx, "reset", true);
  Signal<int> counter(ctx, "counter", 0);
  int reset_entries = 0;
  auto& proc = ctx.create_cthread("t", clk.signal(), [&]() -> Behavior {
    ++reset_entries;        // reset preamble
    counter.write(0);
    co_await wait();
    for (;;) {
      counter.write(counter.read() + 1);
      co_await wait();
    }
  });
  proc.set_reset(reset);

  ctx.run_for(3 * kPeriod);  // held in reset: preamble re-runs per edge
  EXPECT_EQ(counter.read(), 0);
  EXPECT_GE(reset_entries, 3);

  reset.write(false);
  const int entries_after_release = reset_entries;
  ctx.run_for(5 * kPeriod);
  EXPECT_EQ(reset_entries, entries_after_release);  // no restarts
  EXPECT_GT(counter.read(), 2);

  // Assert reset again: counter returns to zero and stays there.
  reset.write(true);
  ctx.run_for(2 * kPeriod);
  EXPECT_EQ(counter.read(), 0);
}

TEST(Kernel, MethodSensitivityTriggersOnChangeOnly) {
  Context ctx;
  Signal<int> a(ctx, "a", 0);
  Signal<int> sum(ctx, "sum", 0);
  int evaluations = 0;
  ctx.create_method(
      "comb",
      [&] {
        ++evaluations;
        sum.write(a.read() + 1);
      },
      {&a});
  ctx.run_for(10);
  const int after_init = evaluations;
  EXPECT_GE(after_init, 1);  // ran at initialization

  a.write(5);
  ctx.run_for(10);
  EXPECT_EQ(sum.read(), 6);
  EXPECT_EQ(evaluations, after_init + 1);

  a.write(5);  // same value: no event, no re-evaluation
  ctx.run_for(10);
  EXPECT_EQ(evaluations, after_init + 1);
}

TEST(Kernel, MethodChainsSettleInDeltas) {
  // a -> b -> c combinational chain settles within one timestep.
  Context ctx;
  Signal<int> a(ctx, "a", 0);
  Signal<int> b(ctx, "b", 0);
  Signal<int> c(ctx, "c", 0);
  ctx.create_method("m1", [&] { b.write(a.read() * 2); }, {&a});
  ctx.create_method("m2", [&] { c.write(b.read() + 1); }, {&b});
  a.write(10);
  ctx.run_for(1);
  EXPECT_EQ(b.read(), 20);
  EXPECT_EQ(c.read(), 21);
}

TEST(Kernel, TwoClockDomains) {
  Context ctx;
  Clock fast(ctx, "fast", 1000);
  Clock slow(ctx, "slow", 3000);
  int fast_count = 0;
  int slow_count = 0;
  ctx.create_cthread("f", fast.signal(), [&]() -> Behavior {
    for (;;) {
      ++fast_count;
      co_await wait();
    }
  });
  ctx.create_cthread("s", slow.signal(), [&]() -> Behavior {
    for (;;) {
      ++slow_count;
      co_await wait();
    }
  });
  ctx.run_for(9000);
  // fast posedges: 500..8500 -> 9 (+1 init); slow: 1500,4500,7500 -> 3 (+1)
  EXPECT_EQ(fast_count, 10);
  EXPECT_EQ(slow_count, 4);
}

TEST(Kernel, ThreadTerminationIsQuiet) {
  Context ctx;
  Clock clk(ctx, "clk", 1000);
  int runs = 0;
  ctx.create_cthread("t", clk.signal(), [&]() -> Behavior {
    ++runs;
    co_await wait();
    ++runs;
    co_return;  // thread finishes; further edges must not crash
  });
  ctx.run_for(10'000);
  EXPECT_EQ(runs, 2);
}

TEST(Kernel, SignalsCarryBitVectors) {
  Context ctx;
  Clock clk(ctx, "clk", 1000);
  Signal<BitVector<12>> bus(ctx, "bus");
  ctx.create_cthread("t", clk.signal(), [&]() -> Behavior {
    bus.write(BitVector<12>(0x5a5));
    co_await wait();
  });
  ctx.run_for(1000);
  EXPECT_EQ(bus.read().to_u64(), 0x5a5u);
}

TEST(Kernel, PortsBindAndForward) {
  Context ctx;
  Signal<int> s(ctx, "s", 7);
  In<int> in(s);
  Out<int> out;
  out.bind(s);
  EXPECT_TRUE(in.bound());
  EXPECT_EQ(in.read(), 7);
  out.write(9);
  ctx.run_for(1);
  EXPECT_EQ(in.read(), 9);
}

TEST(Kernel, ModuleHierarchyNames) {
  Context ctx;
  struct Top : Module {
    explicit Top(Context& c) : Module(c, "top") {}
  };
  struct Child : Module {
    explicit Child(Module& p) : Module(p, "child") {}
  };
  Top top(ctx);
  Child child(top);
  EXPECT_EQ(child.full_name(), "top.child");
}

TEST(Kernel, DeltaCountAdvances) {
  Context ctx;
  Clock clk(ctx, "clk", 1000);
  ctx.create_cthread("t", clk.signal(), [&]() -> Behavior {
    for (;;) co_await wait();
  });
  ctx.run_for(5000);
  EXPECT_GT(ctx.kernel().delta_count(), 4u);
}

TEST(Kernel, RunForZeroSettlesPendingWrites) {
  Context ctx;
  Signal<int> s(ctx, "s", 0);
  s.write(3);
  ctx.run_for(0);
  EXPECT_EQ(s.read(), 3);
}

TEST(Kernel, RunUntilPastTimeDoesNotRewind) {
  Context ctx;
  Clock clk(ctx, "clk", 1000);
  int count = 0;
  ctx.create_cthread("t", clk.signal(), [&]() -> Behavior {
    for (;;) {
      ++count;
      co_await wait();
    }
  });
  ctx.run_for(5000);  // posedges at 500..4500 -> count = 5 (+1 init)
  EXPECT_EQ(ctx.now(), 5000u);
  const int at_5000 = count;

  ctx.kernel().run_until(1000);  // in the past: must be a no-op on time
  EXPECT_EQ(ctx.now(), 5000u);
  EXPECT_EQ(count, at_5000);

  // The schedule is intact: the next edge at 5500 still fires on time.
  ctx.run_for(1000);
  EXPECT_EQ(ctx.now(), 6000u);
  EXPECT_EQ(count, at_5000 + 1);
}

TEST(Kernel, EventsExactlyAtEndAreRun) {
  Context ctx;
  Clock clk(ctx, "clk", 1000);
  std::vector<Time> posedges;
  Signal<bool>& c = clk.signal();
  ctx.create_method(
      "watch",
      [&] {
        if (c.read()) posedges.push_back(ctx.now());
      },
      {&c});
  ctx.kernel().run_until(500);  // first posedge is exactly at end
  ASSERT_EQ(posedges.size(), 1u);
  EXPECT_EQ(posedges[0], 500u);
  EXPECT_EQ(ctx.now(), 500u);
}

TEST(Kernel, BackToBackRunUntilSameTimeIsIdempotent) {
  Context ctx;
  Clock clk(ctx, "clk", 1000);
  int count = 0;
  ctx.create_cthread("t", clk.signal(), [&]() -> Behavior {
    for (;;) {
      ++count;
      co_await wait();
    }
  });
  ctx.kernel().run_until(2000);
  const int first = count;
  EXPECT_EQ(ctx.now(), 2000u);
  ctx.kernel().run_until(2000);  // same instant again: nothing re-fires
  EXPECT_EQ(ctx.now(), 2000u);
  EXPECT_EQ(count, first);
}

TEST(Kernel, ZeroDurationRunForMidSimDoesNotFire) {
  Context ctx;
  Clock clk(ctx, "clk", 1000);
  int count = 0;
  ctx.create_cthread("t", clk.signal(), [&]() -> Behavior {
    for (;;) {
      ++count;
      co_await wait();
    }
  });
  ctx.run_for(2000);
  const int before = count;
  ctx.run_for(0);
  EXPECT_EQ(ctx.now(), 2000u);
  EXPECT_EQ(count, before);
}

}  // namespace
}  // namespace osss::sysc
