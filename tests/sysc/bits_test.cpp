// Unit and property tests for the dynamic bit-vector type.

#include "sysc/bits.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

namespace osss::sysc {
namespace {

TEST(Bits, DefaultIsZeroWidth) {
  Bits b;
  EXPECT_EQ(b.width(), 0u);
  EXPECT_TRUE(b.empty());
}

TEST(Bits, ConstructTruncates) {
  Bits b(4, 0x1fu);
  EXPECT_EQ(b.to_u64(), 0xfu);
  EXPECT_EQ(b.width(), 4u);
}

TEST(Bits, BitAccess) {
  Bits b(8);
  b.set_bit(3, true);
  b.set_bit(7, true);
  EXPECT_TRUE(b.bit(3));
  EXPECT_TRUE(b.bit(7));
  EXPECT_FALSE(b.bit(0));
  EXPECT_EQ(b.to_u64(), 0x88u);
  b.set_bit(3, false);
  EXPECT_EQ(b.to_u64(), 0x80u);
}

TEST(Bits, BitAccessOutOfRangeThrows) {
  Bits b(8);
  EXPECT_THROW(b.bit(8), std::invalid_argument);
  EXPECT_THROW(b.set_bit(9, true), std::invalid_argument);
}

TEST(Bits, ParseBinary) {
  EXPECT_EQ(Bits::parse(8, "0b1010").to_u64(), 0xau);
  EXPECT_EQ(Bits::parse(8, "0b1111_0000").to_u64(), 0xf0u);
}

TEST(Bits, ParseHex) {
  EXPECT_EQ(Bits::parse(16, "0xBEEF").to_u64(), 0xbeefu);
  EXPECT_EQ(Bits::parse(8, "0xff").to_u64(), 0xffu);
}

TEST(Bits, ParseDecimal) {
  EXPECT_EQ(Bits::parse(16, "12345").to_u64(), 12345u);
  // 2^79 needs multi-word decimal accumulation.
  EXPECT_EQ(Bits::parse(80, "604462909807314587353088").to_hex_string(),
            "0x80000000000000000000");
}

TEST(Bits, ParseRejectsGarbage) {
  EXPECT_THROW(Bits::parse(8, "0b102"), std::invalid_argument);
  EXPECT_THROW(Bits::parse(8, "0xfg"), std::invalid_argument);
  EXPECT_THROW(Bits::parse(8, "12a"), std::invalid_argument);
  EXPECT_THROW(Bits::parse(8, ""), std::invalid_argument);
}

TEST(Bits, OnesAndIsOnes) {
  EXPECT_EQ(Bits::ones(5).to_u64(), 0x1fu);
  EXPECT_TRUE(Bits::ones(5).is_ones());
  EXPECT_FALSE(Bits(5, 0x1e).is_ones());
  EXPECT_TRUE(Bits::ones(130).is_ones());
}

TEST(Bits, AdditionWraps) {
  Bits a(4, 0xf);
  Bits b(4, 1);
  EXPECT_EQ((a + b).to_u64(), 0u);
}

TEST(Bits, WidthMismatchThrows) {
  Bits a(4, 1);
  Bits b(5, 1);
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(a & b, std::invalid_argument);
  EXPECT_THROW(Bits::ult(a, b), std::invalid_argument);
}

TEST(Bits, SubtractionWraps) {
  Bits a(8, 0);
  Bits b(8, 1);
  EXPECT_EQ((a - b).to_u64(), 0xffu);
}

TEST(Bits, MultiplyTruncates) {
  Bits a(8, 200);
  Bits b(8, 3);
  EXPECT_EQ((a * b).to_u64(), (200u * 3u) & 0xffu);
}

TEST(Bits, WideArithmeticCrossesWordBoundary) {
  Bits a = Bits::ones(64).zext(128);
  Bits one(128, 1);
  Bits sum = a + one;
  EXPECT_FALSE(sum.bit(63));
  EXPECT_TRUE(sum.bit(64));
  EXPECT_EQ(sum.popcount(), 1u);
}

TEST(Bits, NegateIsTwosComplement) {
  Bits a(8, 5);
  EXPECT_EQ(a.negate().to_u64(), 0xfbu);
  EXPECT_EQ(Bits(8, 0).negate().to_u64(), 0u);
}

TEST(Bits, UnsignedDivision) {
  Bits a(8, 100);
  Bits b(8, 7);
  EXPECT_EQ(udiv(a, b).to_u64(), 14u);
  EXPECT_EQ(urem(a, b).to_u64(), 2u);
}

TEST(Bits, DivisionByZeroFollowsHdlConvention) {
  Bits a(8, 100);
  Bits z(8, 0);
  EXPECT_EQ(udiv(a, z).to_u64(), 0xffu);
  EXPECT_EQ(urem(a, z).to_u64(), 100u);
}

TEST(Bits, Shifts) {
  Bits a(8, 0b1001'0110);
  EXPECT_EQ(a.shl(2).to_u64(), 0b0101'1000u);
  EXPECT_EQ(a.lshr(2).to_u64(), 0b0010'0101u);
  EXPECT_EQ(a.ashr(2).to_u64(), 0b1110'0101u);
  EXPECT_EQ(a.shl(8).to_u64(), 0u);
  EXPECT_EQ(a.lshr(100).to_u64(), 0u);
  EXPECT_EQ(a.ashr(100).to_u64(), 0xffu);
}

TEST(Bits, ShiftsAcrossWords) {
  Bits a(128, 1);
  EXPECT_TRUE(a.shl(100).bit(100));
  EXPECT_EQ(a.shl(100).popcount(), 1u);
  EXPECT_TRUE(a.shl(100).lshr(100) == a);
}

TEST(Bits, UnsignedCompare) {
  EXPECT_TRUE(Bits::ult(Bits(8, 3), Bits(8, 200)));
  EXPECT_FALSE(Bits::ult(Bits(8, 200), Bits(8, 3)));
  EXPECT_TRUE(Bits::ule(Bits(8, 3), Bits(8, 3)));
}

TEST(Bits, SignedCompare) {
  EXPECT_TRUE(Bits::slt(Bits(8, 0xff), Bits(8, 0)));   // -1 < 0
  EXPECT_TRUE(Bits::slt(Bits(8, 0x80), Bits(8, 0x7f))); // -128 < 127
  EXPECT_FALSE(Bits::slt(Bits(8, 5), Bits(8, 5)));
  EXPECT_TRUE(Bits::sle(Bits(8, 5), Bits(8, 5)));
}

TEST(Bits, ToI64SignExtends) {
  EXPECT_EQ(Bits(8, 0xff).to_i64(), -1);
  EXPECT_EQ(Bits(8, 0x7f).to_i64(), 127);
  EXPECT_THROW(Bits(65).to_i64(), std::invalid_argument);
}

TEST(Bits, SliceAndConcatRoundTrip) {
  Bits a(16, 0xabcd);
  EXPECT_EQ(a.slice(7, 0).to_u64(), 0xcdu);
  EXPECT_EQ(a.slice(15, 8).to_u64(), 0xabu);
  EXPECT_TRUE(Bits::concat(a.slice(15, 8), a.slice(7, 0)) == a);
}

TEST(Bits, SliceBoundsChecked) {
  Bits a(16, 0xabcd);
  EXPECT_THROW(a.slice(16, 0), std::invalid_argument);
  EXPECT_THROW(a.slice(3, 5), std::invalid_argument);
}

TEST(Bits, Extensions) {
  Bits a(4, 0b1010);
  EXPECT_EQ(a.zext(8).to_u64(), 0x0au);
  EXPECT_EQ(a.sext(8).to_u64(), 0xfau);
  EXPECT_EQ(Bits(4, 0b0110).sext(8).to_u64(), 0x06u);
  EXPECT_EQ(a.zext(8).trunc(4) == a, true);
  EXPECT_THROW(a.trunc(5), std::invalid_argument);
  EXPECT_THROW(a.zext(3), std::invalid_argument);
}

TEST(Bits, Strings) {
  Bits a(6, 0b101101);
  EXPECT_EQ(a.to_bin_string(), "0b101101");
  EXPECT_EQ(a.to_hex_string(), "0x2d");
}

TEST(Bits, HashDiffersForDifferentValues) {
  EXPECT_NE(Bits(8, 1).hash(), Bits(8, 2).hash());
  EXPECT_NE(Bits(8, 1).hash(), Bits(9, 1).hash());
  EXPECT_EQ(Bits(8, 1).hash(), Bits(8, 1).hash());
}

// ---------------------------------------------------------------------------
// Property-style sweeps: Bits arithmetic must agree with native uint64_t
// arithmetic at every width up to 64 (the reference model).
// ---------------------------------------------------------------------------

class BitsPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitsPropertyTest, ArithmeticMatchesNativeModulo2W) {
  const unsigned w = GetParam();
  const std::uint64_t mask =
      (w == 64) ? ~0ull : ((1ull << w) - 1);
  std::mt19937_64 rng(42 + w);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t x = rng() & mask;
    const std::uint64_t y = rng() & mask;
    const Bits a(w, x);
    const Bits b(w, y);
    EXPECT_EQ((a + b).to_u64(), (x + y) & mask);
    EXPECT_EQ((a - b).to_u64(), (x - y) & mask);
    EXPECT_EQ((a * b).to_u64(), (x * y) & mask);
    EXPECT_EQ((a & b).to_u64(), x & y);
    EXPECT_EQ((a | b).to_u64(), x | y);
    EXPECT_EQ((a ^ b).to_u64(), x ^ y);
    EXPECT_EQ((~a).to_u64(), ~x & mask);
    EXPECT_EQ(Bits::ult(a, b), x < y);
    if (y != 0) {
      EXPECT_EQ(udiv(a, b).to_u64(), x / y);
      EXPECT_EQ(urem(a, b).to_u64(), x % y);
    }
  }
}

TEST_P(BitsPropertyTest, ShiftMatchesNative) {
  const unsigned w = GetParam();
  const std::uint64_t mask = (w == 64) ? ~0ull : ((1ull << w) - 1);
  std::mt19937_64 rng(97 + w);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t x = rng() & mask;
    const unsigned s = static_cast<unsigned>(rng() % (w + 2));
    const Bits a(w, x);
    const std::uint64_t shl_ref = (s >= w) ? 0 : ((x << s) & mask);
    const std::uint64_t shr_ref = (s >= w) ? 0 : (x >> s);
    EXPECT_EQ(a.shl(s).to_u64(), shl_ref);
    EXPECT_EQ(a.lshr(s).to_u64(), shr_ref);
  }
}

TEST_P(BitsPropertyTest, SliceConcatIdentity) {
  const unsigned w = GetParam();
  if (w < 2) return;
  std::mt19937_64 rng(7 + w);
  for (int i = 0; i < 100; ++i) {
    Bits a(w, rng());
    const unsigned cut = 1 + static_cast<unsigned>(rng() % (w - 1));
    EXPECT_TRUE(Bits::concat(a.slice(w - 1, cut), a.slice(cut - 1, 0)) == a);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitsPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 8u, 12u, 16u, 24u,
                                           31u, 32u, 33u, 48u, 63u, 64u));

// Wide-width properties checked structurally (no native reference).
TEST(BitsWide, AddSubRoundTrip) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 100; ++i) {
    Bits a(200);
    Bits b(200);
    for (unsigned j = 0; j < 200; ++j) {
      a.set_bit(j, (rng() & 1) != 0);
      b.set_bit(j, (rng() & 1) != 0);
    }
    EXPECT_TRUE((a + b) - b == a);
    EXPECT_TRUE((a - b) + b == a);
  }
}

TEST(BitsWide, MulByPowerOfTwoIsShift) {
  Bits a(100, 0xdeadbeefcafe);
  for (unsigned s : {0u, 1u, 5u, 31u, 64u, 99u}) {
    Bits p(100, 0);
    p.set_bit(s, true);
    EXPECT_TRUE(a * p == a.shl(s)) << "shift " << s;
  }
}

TEST(Bits, WordAccessorCoversAndExceedsStorage) {
  Bits a(100);
  a.set_bit(0, true);
  a.set_bit(64, true);
  a.set_bit(99, true);
  EXPECT_EQ(a.word(0), 1u);
  EXPECT_EQ(a.word(1), (1ull << 0) | (1ull << 35));
  EXPECT_EQ(a.word(2), 0u);  // beyond storage: zero, not UB
}

TEST(Bits, SetRangeMatchesConcat) {
  // Building {hi, mid, lo} via set_range must equal nested concat.
  std::mt19937_64 rng(123);
  for (int iter = 0; iter < 50; ++iter) {
    const unsigned wl = 1 + static_cast<unsigned>(rng() % 70);
    const unsigned wm = 1 + static_cast<unsigned>(rng() % 70);
    const unsigned wh = 1 + static_cast<unsigned>(rng() % 70);
    auto rand_bits = [&](unsigned w) {
      Bits v(w);
      for (unsigned i = 0; i < w; ++i) v.set_bit(i, (rng() & 1) != 0);
      return v;
    };
    const Bits lo = rand_bits(wl), mid = rand_bits(wm), hi = rand_bits(wh);
    Bits built(wl + wm + wh);
    built.set_range(0, lo);
    built.set_range(wl, mid);
    built.set_range(wl + wm, hi);
    EXPECT_TRUE(built == Bits::concat(hi, Bits::concat(mid, lo)))
        << wl << "+" << wm << "+" << wh;
  }
}

TEST(Bits, SetRangeOverwritesExistingBits) {
  Bits v = Bits::ones(96);
  v.set_range(30, Bits(40));  // clear a straddling window
  for (unsigned i = 0; i < 96; ++i)
    EXPECT_EQ(v.bit(i), i < 30 || i >= 70) << i;
  EXPECT_THROW(v.set_range(60, Bits(40)), std::invalid_argument);
}

}  // namespace
}  // namespace osss::sysc
