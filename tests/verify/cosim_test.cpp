// Tests for the lockstep co-simulation driver: multi-level agreement,
// lane accounting, scoreboard mismatch reporting and trace replay.

#include "verify/cosim.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "gate/lower.hpp"
#include "hls/behavior.hpp"
#include "hls/synth.hpp"
#include "meta/expr.hpp"
#include "rtl/builder.hpp"
#include "verify/stimgen.hpp"

namespace osss::verify {
namespace {

using meta::constant;

/// start -> 3 busy cycles accumulating the input, then idle.
hls::Behavior pulse_behavior() {
  hls::BehaviorBuilder bb("pulse");
  auto start = bb.input("start", 1);
  auto data = bb.input("data", 4);
  auto busy = bb.var("busy", 1, 0, true);
  auto acc = bb.var("acc", 8, 0, true);
  bb.assign(busy, constant(1, 0));
  bb.assign(acc, constant(8, 0));
  bb.wait();
  bb.loop([&] {
    bb.if_(start, [&] {
      bb.assign(busy, constant(1, 1));
      bb.assign(acc, meta::add(acc, meta::zext(data, 8)));
      bb.wait();
      bb.assign(acc, meta::add(acc, meta::zext(data, 8)));
      bb.wait();
      bb.assign(busy, constant(1, 0));
    });
    bb.wait();
  });
  return bb.take();
}

rtl::Module xor_pipe(const char* reg_name = "q") {
  rtl::Builder b("pipe");
  rtl::Wire a = b.input("a", 8);
  rtl::Wire x = b.input("b", 8);
  rtl::Wire q = b.reg(reg_name, 8);
  b.connect(q, b.xor_(a, x));
  b.output("o", q);
  return b.take();
}

TEST(CoSim, ThreeLevelsAgreeOnBehaviour) {
  const hls::Behavior beh = pulse_behavior();
  CoSim cs;
  cs.add(std::make_unique<InterpModel>(beh));
  cs.add(std::make_unique<RtlModel>(hls::synthesize(beh)));
  cs.add(std::make_unique<GateModel>(
      gate::lower_to_gates(hls::synthesize(beh)), gate::SimMode::kEvent));
  cs.declare_io(beh);
  StimGen gen(StimGen::derive(1, "CoSim.ThreeLevels"));
  cs.declare_stimulus(gen);
  const RunResult r = cs.run(gen, 200, 2);
  EXPECT_TRUE(r.ok) << r.mismatch.describe(cs.inputs(), false) << " seed "
                    << gen.seed();
  EXPECT_EQ(r.cycles, 400u);
  EXPECT_EQ(r.vectors, 400u);
  // 2 non-reference models × 2 outputs × 400 cycles.
  EXPECT_EQ(r.checks, 1600u);
}

TEST(CoSim, BitParallelPairScores64LanesPerCycle) {
  const rtl::Module m = xor_pipe();
  CoSim cs;
  cs.add(std::make_unique<GateModel>(gate::lower_to_gates(m),
                                     gate::SimMode::kBitParallel, "a"));
  cs.add(std::make_unique<GateModel>(gate::lower_to_gates(m),
                                     gate::SimMode::kBitParallel, "b"));
  cs.declare_io(m);
  StimGen gen(3);
  cs.declare_stimulus(gen);
  const RunResult r = cs.run(gen, 50);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.cycles, 50u);
  EXPECT_EQ(r.vectors, 50u * gate::Simulator::kLanes);
}

TEST(CoSim, MixedLaneModelsFallBackToScalar) {
  const rtl::Module m = xor_pipe();
  CoSim cs;
  cs.add(std::make_unique<RtlModel>(m));
  cs.add(std::make_unique<GateModel>(gate::lower_to_gates(m),
                                     gate::SimMode::kBitParallel, "gate"));
  cs.declare_io(m);
  StimGen gen(4);
  cs.declare_stimulus(gen);
  const RunResult r = cs.run(gen, 40);
  EXPECT_TRUE(r.ok) << r.mismatch.describe(cs.inputs(), false);
  EXPECT_EQ(r.vectors, 40u);
}

TEST(CoSim, ScoreboardCatchesInjectedFault) {
  const rtl::Module m = xor_pipe();
  gate::Netlist good = gate::lower_to_gates(m);
  gate::Netlist bad = gate::lower_to_gates(m);
  // Flip the first 2-input logic gate found: a single-gate mutation.
  bool mutated = false;
  for (gate::NetId id = 0; id < bad.cells().size() && !mutated; ++id) {
    const gate::CellKind k = bad.cells()[id].kind;
    if (k == gate::CellKind::kXor2) {
      bad.mutate_cell(id, gate::CellKind::kXnor2);
      mutated = true;
    }
  }
  ASSERT_TRUE(mutated);

  CoSim cs;
  cs.add(std::make_unique<GateModel>(std::move(good), gate::SimMode::kEvent,
                                     "good"));
  cs.add(std::make_unique<GateModel>(std::move(bad), gate::SimMode::kEvent,
                                     "bad"));
  cs.declare_io(m);
  StimGen gen(5);
  cs.declare_stimulus(gen);
  const RunResult r = cs.run(gen, 64);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.mismatch.output, "o");
  EXPECT_EQ(r.mismatch.ref_model, "good");
  EXPECT_EQ(r.mismatch.dut_model, "bad");
  EXPECT_FALSE(r.failing_trace.cycles.empty());
  EXPECT_EQ(r.failing_trace.cycles.size(), r.mismatch.cycle + 1);
  // The recorded trace must reproduce the mismatch exactly.
  const RunResult again = cs.run_trace(r.failing_trace);
  ASSERT_FALSE(again.ok);
  EXPECT_EQ(again.mismatch.cycle, r.mismatch.cycle);
  EXPECT_EQ(again.mismatch.output, r.mismatch.output);
}

TEST(CoSim, FailingLaneExtractedFromWideRun) {
  const rtl::Module m = xor_pipe();
  gate::Netlist bad = gate::lower_to_gates(m);
  bool mutated = false;
  for (gate::NetId id = 0; id < bad.cells().size() && !mutated; ++id) {
    if (bad.cells()[id].kind == gate::CellKind::kXor2) {
      bad.mutate_cell(id, gate::CellKind::kXnor2);
      mutated = true;
    }
  }
  ASSERT_TRUE(mutated);
  CoSim cs;
  cs.add(std::make_unique<GateModel>(gate::lower_to_gates(m),
                                     gate::SimMode::kBitParallel, "good"));
  cs.add(std::make_unique<GateModel>(std::move(bad),
                                     gate::SimMode::kBitParallel, "bad"));
  cs.declare_io(m);
  StimGen gen(6);
  cs.declare_stimulus(gen);
  const RunResult r = cs.run(gen, 32);
  ASSERT_FALSE(r.ok);
  // Whatever lane failed, its scalar extraction must fail standalone too.
  const RunResult scalar = cs.run_trace(r.failing_trace);
  EXPECT_FALSE(scalar.ok);
}

TEST(CoSim, DescribeMentionsOutputAndInputs) {
  Mismatch mm;
  mm.sequence = 1;
  mm.cycle = 7;
  mm.output = "o";
  mm.ref_model = "rtl";
  mm.dut_model = "gate";
  mm.ref_value = Bits(8, 0x12);
  mm.dut_value = Bits(8, 0x13);
  mm.inputs = {Bits(8, 0xab)};
  const std::string text = mm.describe({{"a", 8}}, false);
  EXPECT_NE(text.find("output o"), std::string::npos);
  EXPECT_NE(text.find("a=0xab"), std::string::npos);
  EXPECT_NE(text.find("cycle 7"), std::string::npos);
}

}  // namespace
}  // namespace osss::verify
