// Tests for the constrained-random stimulus engine: seed discipline
// (determinism, per-input stream independence) and the shape of each
// constraint kind.

#include "verify/stimgen.hpp"

#include <gtest/gtest.h>

#include <set>

namespace osss::verify {
namespace {

TEST(StimGen, SameSeedSameStream) {
  StimGen a(42), b(42);
  a.declare("x", 16);
  b.declare("x", 16);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(a.next("x") == b.next("x"));
}

TEST(StimGen, DifferentSeedsDiffer) {
  StimGen a(42), b(43);
  a.declare("x", 32);
  b.declare("x", 32);
  unsigned same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.next("x") == b.next("x")) ++same;
  EXPECT_LT(same, 3u);
}

TEST(StimGen, StreamsIndependentOfDeclarationOrder) {
  // The vectors an input receives must not depend on which other inputs
  // exist or when they were declared — that is what makes a printed seed
  // reproducible after a test adds an input.
  StimGen a(7), b(7);
  a.declare("x", 8);
  a.declare("y", 8);
  b.declare("y", 8);
  b.declare("x", 8);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(a.next("x") == b.next("x"));
    EXPECT_TRUE(a.next("y") == b.next("y"));
  }
}

TEST(StimGen, DeriveSeparatesTags) {
  const std::uint64_t base = 99;
  EXPECT_NE(StimGen::derive(base, "a"), StimGen::derive(base, "b"));
  EXPECT_NE(StimGen::derive(base, "a"), StimGen::derive(base + 1, "a"));
  EXPECT_EQ(StimGen::derive(base, "a"), StimGen::derive(base, "a"));
}

TEST(StimGen, RestartReplaysFromTheTop) {
  StimGen g(5);
  g.declare("x", 12, {StimKind::kSticky, 2, 5, 0.0});
  std::vector<Bits> first;
  for (int i = 0; i < 30; ++i) first.push_back(g.next("x"));
  g.restart();
  for (int i = 0; i < 30; ++i) EXPECT_TRUE(g.next("x") == first[i]);
}

TEST(StimGen, BitToggleFlipsExactlyOneBit) {
  StimGen g(11);
  g.declare("x", 10, {StimKind::kBitToggle});
  Bits prev = g.next("x");
  for (int i = 0; i < 50; ++i) {
    const Bits cur = g.next("x");
    EXPECT_EQ((cur ^ prev).popcount(), 1u);
    prev = cur;
  }
}

TEST(StimGen, StickyHoldsWithinBurstBounds) {
  StimGen g(13);
  StimConstraint c;
  c.kind = StimKind::kSticky;
  c.burst_min = 3;
  c.burst_max = 6;
  g.declare("x", 8, c);
  Bits cur = g.next("x");
  unsigned run = 1;
  std::set<unsigned> runs;
  for (int i = 0; i < 400; ++i) {
    const Bits v = g.next("x");
    if (v == cur) {
      ++run;
    } else {
      runs.insert(run);
      cur = v;
      run = 1;
    }
  }
  for (const unsigned r : runs) {
    EXPECT_GE(r, 3u);
    EXPECT_LE(r, 6u);
  }
  EXPECT_FALSE(runs.empty());
}

TEST(StimGen, CornerBiasHitsCorners) {
  StimGen g(17);
  StimConstraint c;
  c.kind = StimKind::kCorner;
  c.corner_prob = 0.5;
  g.declare("x", 16, c);
  unsigned zeros = 0, ones = 0;
  for (int i = 0; i < 400; ++i) {
    const Bits v = g.next("x");
    if (v.is_zero()) ++zeros;
    if (v.is_ones()) ++ones;
  }
  // A uniform 16-bit stream would essentially never hit either corner.
  EXPECT_GT(zeros, 5u);
  EXPECT_GT(ones, 5u);
}

TEST(StimGen, LanesCarryScalarStreamInLaneZero) {
  StimGen scalar(23), wide(23);
  scalar.declare("x", 9);
  wide.declare("x", 9);
  for (int i = 0; i < 20; ++i) {
    const Bits v = scalar.next("x");
    const std::vector<std::uint64_t> words = wide.next_lanes("x");
    ASSERT_EQ(words.size(), 9u);
    for (unsigned bi = 0; bi < 9; ++bi)
      EXPECT_EQ((words[bi] & 1u) != 0, v.bit(bi)) << "cycle " << i;
  }
}

TEST(StimGen, RejectsDuplicatesAndUnknowns) {
  StimGen g(1);
  g.declare("x", 4);
  EXPECT_THROW(g.declare("x", 4), std::invalid_argument);
  EXPECT_THROW(g.declare("z", 0), std::invalid_argument);
  EXPECT_THROW(g.next("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace osss::verify
