// Tests for the coverage counters: net toggle coverage on gate netlists,
// FSM state/transition coverage on behaviour controllers, and the
// CoverageReport surface the random suites assert on.

#include "verify/coverage.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "gate/lower.hpp"
#include "hls/behavior.hpp"
#include "hls/synth.hpp"
#include "meta/expr.hpp"
#include "rtl/builder.hpp"
#include "verify/cosim.hpp"
#include "verify/stimgen.hpp"

namespace osss::verify {
namespace {

using meta::constant;

rtl::Module xor_pipe() {
  rtl::Builder b("pipe");
  rtl::Wire a = b.input("a", 8);
  rtl::Wire x = b.input("b", 8);
  rtl::Wire q = b.reg("q", 8);
  b.connect(q, b.xor_(a, x));
  b.output("o", q);
  return b.take();
}

TEST(ToggleCoverage, DirectSamplingCountsBothEdges) {
  const gate::Netlist nl = gate::lower_to_gates(xor_pipe());
  ToggleCoverage cov(nl);
  ASSERT_GT(cov.total(), 0u);
  EXPECT_EQ(cov.covered(), 0u);

  gate::Simulator sim(nl, gate::SimMode::kEvent);
  // Two complementary vectors toggle every data net.
  sim.set_input("a", Bits(8, 0x00));
  sim.set_input("b", Bits(8, 0x00));
  sim.step();
  cov.sample(sim);
  sim.set_input("a", Bits(8, 0xff));
  sim.set_input("b", Bits(8, 0x00));
  sim.step();
  cov.sample(sim);
  EXPECT_GT(cov.covered(), 0u);
  EXPECT_LE(cov.covered(), cov.total());

  const CoverageItem it = cov.item("gate");
  EXPECT_EQ(it.model, "gate");
  EXPECT_EQ(it.kind, "net-toggle");
  EXPECT_GT(it.percent(), 0.0);
  EXPECT_LE(it.percent(), 100.0);
}

TEST(ToggleCoverage, ConstantInputsToggleNothing) {
  const gate::Netlist nl = gate::lower_to_gates(xor_pipe());
  ToggleCoverage cov(nl);
  gate::Simulator sim(nl, gate::SimMode::kEvent);
  sim.set_input("a", Bits(8, 0x00));
  sim.set_input("b", Bits(8, 0x00));
  for (int i = 0; i < 8; ++i) {
    sim.step();
    cov.sample(sim);
  }
  // Nets sit at one value forever: nothing reaches "seen both".
  EXPECT_EQ(cov.covered(), 0u);
}

TEST(FsmCoverage, TracksStatesAndTransitions) {
  FsmCoverage cov(4, 5);
  cov.sample(0);
  cov.sample(0);  // self-loop: transition (0,0)
  cov.sample(1);
  cov.sample(2);
  cov.sample(0);
  EXPECT_EQ(cov.states_covered(), 3u);
  EXPECT_EQ(cov.transitions_covered(), 4u);  // 0->0, 0->1, 1->2, 2->0

  const CoverageItem st = cov.state_item("interp");
  EXPECT_EQ(st.kind, "fsm-state");
  EXPECT_EQ(st.covered, 3u);
  EXPECT_EQ(st.total, 4u);
  EXPECT_DOUBLE_EQ(st.percent(), 75.0);

  const CoverageItem tr = cov.transition_item("interp");
  EXPECT_EQ(tr.kind, "fsm-transition");
  EXPECT_EQ(tr.covered, 4u);
  EXPECT_EQ(tr.total, 5u);
}

TEST(FsmCoverage, UnknownTransitionTotalReportsZeroTotal) {
  FsmCoverage cov(3);
  cov.sample(0);
  cov.sample(1);
  const CoverageItem tr = cov.transition_item("m");
  EXPECT_EQ(tr.covered, 1u);
  EXPECT_EQ(tr.total, 0u);
  EXPECT_DOUBLE_EQ(tr.percent(), 0.0);
}

TEST(CoverageReport, FindAndTextSurfaceItems) {
  CoverageReport rep;
  rep.items.push_back({"interp", "fsm-state", 6, 8, {}});
  rep.items.push_back({"gate", "net-toggle", 40, 50, {}});
  ASSERT_NE(rep.find("gate", "net-toggle"), nullptr);
  EXPECT_EQ(rep.find("gate", "net-toggle")->covered, 40u);
  EXPECT_EQ(rep.find("gate", "fsm-state"), nullptr);
  const std::string text = rep.text();
  EXPECT_NE(text.find("net-toggle"), std::string::npos);
  EXPECT_NE(text.find("fsm-state"), std::string::npos);
}

TEST(Coverage, CoSimRunCollectsBothModels) {
  // End-to-end: a behaviour with a small FSM, coverage enabled on both the
  // interpreter and the gate model.
  hls::BehaviorBuilder bb("cov");
  auto go = bb.input("go", 1);
  auto out = bb.var("out", 4, 0, true);
  bb.assign(out, constant(4, 0));
  bb.wait();
  bb.loop([&] {
    bb.if_(go, [&] {
      bb.assign(out, constant(4, 1));
      bb.wait();
      bb.assign(out, constant(4, 2));
      bb.wait();
      bb.assign(out, constant(4, 0));
    });
    bb.wait();
  });
  const hls::Behavior beh = bb.take();

  hls::Report report;
  const rtl::Module m = hls::synthesize(beh, {}, &report);

  CoSim cs;
  auto& interp = cs.add(std::make_unique<InterpModel>(beh));
  interp.enable_fsm_coverage(report.transitions);
  auto& gm = cs.add(std::make_unique<GateModel>(
      gate::lower_to_gates(m), gate::SimMode::kLevelized, "gate"));
  gm.enable_toggle_coverage();
  cs.declare_io(beh);
  cs.enable_coverage();

  StimGen gen(StimGen::derive(77, "coverage/cosim"));
  StimConstraint c;
  c.kind = StimKind::kSticky;
  cs.declare_stimulus(gen, c);
  const RunResult r = cs.run(gen, 400);
  ASSERT_TRUE(r.ok) << r.mismatch.describe(cs.inputs(), false);

  const CoverageItem* st = r.coverage.find("interp", "fsm-state");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->total, beh.state_count);
  EXPECT_EQ(st->covered, st->total) << "sticky go should reach every state";

  const CoverageItem* tg = r.coverage.find("gate", "net-toggle");
  ASSERT_NE(tg, nullptr);
  EXPECT_GT(tg->covered, 0u);
  EXPECT_LE(tg->covered, tg->total);
}

}  // namespace
}  // namespace osss::verify
