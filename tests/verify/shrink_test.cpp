// Tests for failing-trace shrinking and replay records.  Includes the
// acceptance scenario of the verification subsystem: a deliberately
// injected single-gate mutation in an ExpoCU component netlist must be
// caught by the random suite and minimized to a replay record of at most
// 10 cycles that reproduces standalone.

#include "verify/shrink.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "expocu/hw.hpp"
#include "gate/lower.hpp"
#include "hls/synth.hpp"
#include "rtl/builder.hpp"
#include "verify/cosim.hpp"
#include "verify/stimgen.hpp"

namespace osss::verify {
namespace {

/// Mutate the idx-th eligible logic gate (And<->Or, Xor<->Xnor, Inv->Buf).
/// Returns false when fewer than idx+1 eligible gates exist.
bool inject_fault(gate::Netlist& nl, unsigned idx) {
  unsigned seen = 0;
  for (gate::NetId id = 0; id < nl.cells().size(); ++id) {
    gate::CellKind to;
    switch (nl.cells()[id].kind) {
      case gate::CellKind::kAnd2: to = gate::CellKind::kOr2; break;
      case gate::CellKind::kOr2: to = gate::CellKind::kAnd2; break;
      case gate::CellKind::kXor2: to = gate::CellKind::kXnor2; break;
      case gate::CellKind::kXnor2: to = gate::CellKind::kXor2; break;
      case gate::CellKind::kInv: to = gate::CellKind::kBuf; break;
      default: continue;
    }
    if (seen++ == idx) {
      nl.mutate_cell(id, to);
      return true;
    }
  }
  return false;
}

/// Reference netlist vs a single-gate mutant of the same design.  Walks
/// the eligible gates until the scoreboard catches one (a mutation can hit
/// logic that is don't-care under the reachable state space).
struct MutantHunt {
  CoSim cs;
  std::uint64_t seed = 0;
  bool caught = false;
  RunResult first_failure;

  MutantHunt(const hls::Behavior& beh, const char* tag, unsigned cycles) {
    const rtl::Module m = hls::synthesize(beh);
    seed = StimGen::derive(env_seed(2026), tag);
    for (unsigned idx = 0; idx < 64 && !caught; ++idx) {
      gate::Netlist mutant = gate::lower_to_gates(m);
      if (!inject_fault(mutant, idx)) break;
      CoSim trial;
      trial.add(std::make_unique<GateModel>(gate::lower_to_gates(m),
                                            gate::SimMode::kLevelized,
                                            "ref"));
      trial.add(std::make_unique<GateModel>(std::move(mutant),
                                            gate::SimMode::kLevelized,
                                            "mutant"));
      trial.declare_io(beh);
      StimGen gen(StimGen::derive(seed, std::to_string(idx)));
      StimConstraint c;
      c.kind = StimKind::kSticky;
      trial.declare_stimulus(gen, c);
      RunResult r = trial.run(gen, cycles, 2);
      if (!r.ok) {
        caught = true;
        first_failure = std::move(r);
        cs = std::move(trial);
      }
    }
  }
};

// The subsystem's headline acceptance test: inject a single-gate fault
// into an ExpoCU component, catch it, and shrink the counterexample to a
// replay record of at most 10 cycles.
TEST(Shrink, SingleGateMutationInExpoCuMinimizedToTenCycles) {
  MutantHunt hunt(expocu::build_camera_sync_osss(), "shrink/camera_sync",
                  256);
  ASSERT_TRUE(hunt.caught)
      << "no mutation detected by random run (seed " << hunt.seed << ")";
  ASSERT_FALSE(hunt.first_failure.failing_trace.cycles.empty());

  const ShrinkResult s = shrink(hunt.cs, hunt.first_failure.failing_trace);
  ASSERT_FALSE(s.final_run.ok)
      << "shrinker lost the failure (seed " << hunt.seed << ")";
  EXPECT_LE(s.trace.length(), 10u)
      << "minimized trace too long (seed " << hunt.seed << ", from "
      << s.original_cycles << " cycles)";
  EXPECT_LE(s.trace.length(), s.original_cycles);
  EXPECT_GT(s.predicate_runs, 0u);

  // Package as a replay record; the record alone must reproduce.
  ReplayRecord rec;
  rec.design = "camera_sync_mutant";
  rec.seed = hunt.seed;
  rec.note = s.final_run.mismatch.describe(hunt.cs.inputs(), false);
  rec.trace = s.trace;
  const RunResult replayed = replay(hunt.cs, rec);
  EXPECT_FALSE(replayed.ok);
  EXPECT_EQ(replayed.mismatch.output, s.final_run.mismatch.output);
}

TEST(Shrink, ReducesLongRandomPrefixToEssentialCycles) {
  // xor pipe with one xor flipped: any vector with a^b != a~^b fails one
  // cycle later — a minimal counterexample needs at most 2 cycles.
  rtl::Builder b("pipe");
  rtl::Wire a = b.input("a", 8);
  rtl::Wire x = b.input("b", 8);
  rtl::Wire q = b.reg("q", 8);
  b.connect(q, b.xor_(a, x));
  b.output("o", q);
  const rtl::Module m = b.take();

  gate::Netlist bad = gate::lower_to_gates(m);
  ASSERT_TRUE(inject_fault(bad, 0));

  CoSim cs;
  cs.add(std::make_unique<GateModel>(gate::lower_to_gates(m),
                                     gate::SimMode::kEvent, "good"));
  cs.add(std::make_unique<GateModel>(std::move(bad), gate::SimMode::kEvent,
                                     "bad"));
  cs.declare_io(m);
  StimGen gen(StimGen::derive(31, "shrink/pipe"));
  cs.declare_stimulus(gen);
  const RunResult r = cs.run(gen, 300);
  ASSERT_FALSE(r.ok);

  const ShrinkResult s = shrink(cs, r.failing_trace);
  ASSERT_FALSE(s.final_run.ok);
  EXPECT_LE(s.trace.length(), 2u);
  // Bit phase: the surviving vectors should be sparse, not random noise.
  std::uint64_t set_bits = 0;
  for (const auto& cyc : s.trace.cycles)
    for (const Bits& v : cyc) set_bits += v.popcount();
  EXPECT_LE(set_bits, 4u);
}

TEST(Shrink, ReplayRecordRoundTripsThroughText) {
  ReplayRecord rec;
  rec.design = "pipe design #1";
  rec.seed = 0xdeadbeefcafeULL;
  rec.note = "output o = 0x12 (good) vs 0x13 (bad)";
  rec.trace.inputs = {{"a", 8}, {"b", 12}};
  rec.trace.cycles = {{Bits(8, 0xab), Bits(12, 0x5ff)},
                      {Bits(8, 0), Bits(12, 1)}};

  const std::string text = rec.to_text();
  const ReplayRecord back = ReplayRecord::from_text(text);
  EXPECT_EQ(back.design, rec.design);
  EXPECT_EQ(back.seed, rec.seed);
  EXPECT_EQ(back.note, rec.note);
  ASSERT_EQ(back.trace.inputs.size(), 2u);
  EXPECT_EQ(back.trace.inputs[1].name, "b");
  EXPECT_EQ(back.trace.inputs[1].width, 12u);
  ASSERT_EQ(back.trace.cycles.size(), 2u);
  EXPECT_TRUE(back.trace.cycles[0][1] == rec.trace.cycles[0][1]);
  EXPECT_TRUE(back.trace.cycles[1][0] == rec.trace.cycles[1][0]);
}

TEST(Shrink, FromTextRejectsGarbage) {
  EXPECT_THROW(ReplayRecord::from_text("not a replay"),
               std::invalid_argument);
  EXPECT_THROW(ReplayRecord::from_text(""), std::invalid_argument);
}

}  // namespace
}  // namespace osss::verify
