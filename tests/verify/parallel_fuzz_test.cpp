// Determinism under parallelism: the same sharded fuzz campaign run on 1,
// 2 and 8 pool contexts must produce identical mismatch sets, identical
// merged coverage reports and an identical shrunk replay record — the
// thread count may only change wall-clock time.

#include "verify/parallel.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gate/equiv.hpp"
#include "gate/lower.hpp"
#include "rtl/builder.hpp"
#include "verify/shrink.hpp"

namespace osss::verify {
namespace {

rtl::Module xor_pipe() {
  rtl::Builder b("pipe");
  rtl::Wire a = b.input("a", 8);
  rtl::Wire x = b.input("b", 8);
  rtl::Wire q = b.reg("q", 8);
  b.connect(q, b.xor_(a, x));
  b.output("o", q);
  return b.take();
}

gate::Netlist faulty_netlist() {
  gate::Netlist bad = gate::lower_to_gates(xor_pipe());
  for (gate::NetId id = 0; id < bad.cells().size(); ++id)
    if (bad.cells()[id].kind == gate::CellKind::kXor2) {
      bad.mutate_cell(id, gate::CellKind::kXnor2);
      return bad;
    }
  ADD_FAILURE() << "no xor cell to mutate";
  return bad;
}

/// Factory for a good-vs-faulty gate co-sim with toggle coverage on the
/// reference side.  Pure netlist construction — no synthesis involved.
CoSimFactory faulty_factory() {
  return [] {
    const rtl::Module m = xor_pipe();
    auto cs = std::make_unique<CoSim>();
    auto& good = cs->add(std::make_unique<GateModel>(
        gate::lower_to_gates(m), gate::SimMode::kEvent, "good"));
    good.enable_toggle_coverage();
    cs->add(std::make_unique<GateModel>(faulty_netlist(),
                                        gate::SimMode::kEvent, "bad"));
    cs->declare_io(m);
    cs->enable_coverage();
    return cs;
  };
}

CoSimFactory clean_factory() {
  return [] {
    const rtl::Module m = xor_pipe();
    auto cs = std::make_unique<CoSim>();
    auto& ref = cs->add(std::make_unique<GateModel>(
        gate::lower_to_gates(m), gate::SimMode::kEvent, "a"));
    ref.enable_toggle_coverage();
    cs->add(std::make_unique<GateModel>(gate::lower_to_gates(m),
                                        gate::SimMode::kEvent, "b"));
    cs->declare_io(m);
    cs->enable_coverage();
    return cs;
  };
}

ShardedRunResult run_campaign(unsigned threads, const CoSimFactory& make) {
  par::Pool pool(threads);
  ShardOptions opt;
  opt.seed = 42;
  opt.shards = 8;
  opt.cycles = 64;
  opt.pool = &pool;
  return parallel_fuzz(make, opt);
}

TEST(ParallelFuzz, CleanCampaignPassesWithFullAccounting) {
  const ShardedRunResult r = run_campaign(4, clean_factory());
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.shards, 8u);
  EXPECT_EQ(r.vectors, 8u * 64u);
  EXPECT_EQ(r.cycles, 8u * 64u);
  EXPECT_GT(r.checks, 0u);
  EXPECT_GT(r.recorder_bytes, 0u);
  EXPECT_TRUE(r.failures.empty());
  EXPECT_EQ(r.first_failure(), nullptr);
}

TEST(ParallelFuzz, ShardSeedsAreDerivedNotSequential) {
  EXPECT_NE(shard_seed(42, 0), shard_seed(42, 1));
  EXPECT_NE(shard_seed(42, 0), 42u);
  EXPECT_EQ(shard_seed(42, 3), shard_seed(42, 3));
}

TEST(ParallelFuzz, MismatchSetIdenticalAcrossThreadCounts) {
  const CoSimFactory make = faulty_factory();
  const ShardedRunResult base = run_campaign(1, make);
  ASSERT_FALSE(base.ok);
  // An inverted gate diverges almost immediately in every shard.
  ASSERT_EQ(base.failures.size(), 8u);
  for (unsigned i = 0; i < base.failures.size(); ++i) {
    EXPECT_EQ(base.failures[i].shard, i);
    EXPECT_EQ(base.failures[i].seed, shard_seed(42, i));
  }

  for (const unsigned threads : {2u, 8u}) {
    const ShardedRunResult r = run_campaign(threads, make);
    EXPECT_EQ(r.ok, base.ok);
    EXPECT_EQ(r.vectors, base.vectors);
    EXPECT_EQ(r.cycles, base.cycles);
    EXPECT_EQ(r.checks, base.checks);
    ASSERT_EQ(r.failures.size(), base.failures.size()) << threads;
    for (std::size_t i = 0; i < r.failures.size(); ++i) {
      const ShardFailure& got = r.failures[i];
      const ShardFailure& want = base.failures[i];
      EXPECT_EQ(got.shard, want.shard);
      EXPECT_EQ(got.seed, want.seed);
      EXPECT_EQ(got.mismatch.cycle, want.mismatch.cycle);
      EXPECT_EQ(got.mismatch.output, want.mismatch.output);
      EXPECT_EQ(got.mismatch.describe(got.trace.inputs, false),
                want.mismatch.describe(want.trace.inputs, false));
      EXPECT_EQ(got.trace.cycles.size(), want.trace.cycles.size());
    }
  }
}

TEST(ParallelFuzz, CoverageReportIdenticalAcrossThreadCounts) {
  // Clean campaign: full-length shards accumulate real toggle coverage.
  const CoSimFactory clean = clean_factory();
  const ShardedRunResult base = run_campaign(1, clean);
  const CoverageItem* toggles = base.coverage.find("a", "net-toggle");
  ASSERT_NE(toggles, nullptr);
  EXPECT_GT(toggles->covered, 0u);
  for (const unsigned threads : {2u, 8u})
    EXPECT_EQ(run_campaign(threads, clean).coverage, base.coverage)
        << threads << " threads";

  // Faulty campaign: shards abort at the first mismatch, but whatever
  // coverage was gathered up to that point must still merge identically.
  const CoSimFactory faulty = faulty_factory();
  const ShardedRunResult fbase = run_campaign(1, faulty);
  for (const unsigned threads : {2u, 8u})
    EXPECT_EQ(run_campaign(threads, faulty).coverage, fbase.coverage)
        << threads << " threads";
}

TEST(ParallelFuzz, ShrunkReplayIdenticalAcrossThreadCounts) {
  const CoSimFactory make = faulty_factory();
  const ShardedRunResult base = run_campaign(1, make);
  ASSERT_FALSE(base.ok);
  const std::string text =
      shrink_first_failure(make, base, "pipe").to_text();

  for (const unsigned threads : {2u, 8u}) {
    const ShardedRunResult r = run_campaign(threads, make);
    EXPECT_EQ(shrink_first_failure(make, r, "pipe").to_text(), text)
        << threads << " threads";
  }

  // The record round-trips and replays to the same mismatch.
  const ReplayRecord rec = ReplayRecord::from_text(text);
  EXPECT_EQ(rec.design, "pipe");
  EXPECT_EQ(rec.seed, shard_seed(42, base.failures.front().shard));
  const std::unique_ptr<CoSim> cs = make();
  const RunResult rr = replay(*cs, rec);
  ASSERT_FALSE(rr.ok);
  EXPECT_EQ(rr.mismatch.output, base.failures.front().mismatch.output);
}

TEST(ParallelFuzz, ShrinkWithoutFailureThrows) {
  const ShardedRunResult r = run_campaign(2, clean_factory());
  EXPECT_THROW(shrink_first_failure(clean_factory(), r, "pipe"),
               std::logic_error);
}

TEST(ParallelFuzz, RunShardedConvenienceMatchesParallelFuzz) {
  const CoSimFactory make = clean_factory();
  ShardOptions opt;
  opt.seed = 7;
  opt.shards = 4;
  opt.cycles = 32;
  const ShardedRunResult a = CoSim::run_sharded(make, opt);
  const ShardedRunResult b = parallel_fuzz(make, opt);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.vectors, b.vectors);
  EXPECT_EQ(a.checks, b.checks);
}

TEST(ParallelEquiv, VerdictIdenticalAcrossThreadCounts) {
  const gate::Netlist good = gate::lower_to_gates(xor_pipe());
  const gate::Netlist bad = faulty_netlist();

  gate::EquivOptions opt;
  opt.sequences = 6;
  opt.cycles = 40;
  opt.seed = 9;

  opt.threads = 1;
  const gate::EquivResult serial_ok = check_equivalence(good, good, opt);
  const gate::EquivResult serial_bad = check_equivalence(good, bad, opt);
  EXPECT_TRUE(serial_ok.equivalent);
  EXPECT_EQ(serial_ok.cycles_checked, 6u * 40u);
  ASSERT_FALSE(serial_bad.equivalent);

  for (const unsigned threads : {0u, 8u}) {
    gate::EquivOptions o = opt;
    o.threads = threads;
    const gate::EquivResult ok = check_equivalence(good, good, o);
    EXPECT_EQ(ok.equivalent, serial_ok.equivalent);
    EXPECT_EQ(ok.cycles_checked, serial_ok.cycles_checked);
    EXPECT_EQ(ok.seed, serial_ok.seed);
    const gate::EquivResult ne = check_equivalence(good, bad, o);
    EXPECT_EQ(ne.equivalent, serial_bad.equivalent);
    EXPECT_EQ(ne.cycles_checked, serial_bad.cycles_checked);
    EXPECT_EQ(ne.counterexample, serial_bad.counterexample);
  }
}

}  // namespace
}  // namespace osss::verify
