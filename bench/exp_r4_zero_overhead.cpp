// R4 — "The resolution of object-oriented design features like classes and
// templates do not create an additional overhead ... no additional logic
// has been added when using classes and templates." (§8)
//
// Synthesizes the paper's SyncRegister-based sync module (Figs. 4/5/8)
// once through class resolution and once hand-written with explicit
// slices, over a sweep of template parameters, and compares the mapped
// netlists gate for gate.

#include <cstdio>

#include "expocu/sync_register.hpp"
#include "gate/equiv.hpp"
#include "gate/lower.hpp"
#include "gate/timing.hpp"
#include "synth/method_synth.hpp"

using namespace osss;

namespace {

rtl::Module from_class(const meta::ClassDesc& cls) {
  rtl::Builder b("sync");
  meta::RtlEmitter em(b);
  const rtl::Wire data = b.input("data", 1);
  const rtl::Wire obj =
      b.reg("data_sync_reg", cls.data_width(), cls.initial_value());
  const auto wr = synth::synthesize_method(em, cls, "Write", obj, {data});
  b.connect(obj, wr.this_out);
  const auto edge =
      synth::synthesize_method(em, cls, "RisingEdge", wr.this_out, {});
  b.output("edge", edge.ret);
  b.output("reg", obj);
  return b.take();
}

rtl::Module by_hand(unsigned regsize, std::uint64_t resetvalue) {
  rtl::Builder b("sync");
  const rtl::Wire data = b.input("data", 1);
  const rtl::Wire reg =
      b.reg("data_sync_reg", regsize, rtl::Bits(regsize, resetvalue));
  const rtl::Wire shifted = b.concat({b.slice(reg, regsize - 2, 0), data});
  b.connect(reg, shifted);
  b.output("edge", b.and_(b.slice(shifted, 0, 0),
                          b.not_(b.slice(shifted, 1, 1))));
  b.output("reg", reg);
  return b.take();
}

}  // namespace

int main() {
  const auto lib = gate::Library::generic();
  std::printf(
      "R4: class/template resolution overhead (SyncRegister<W,RST>)\n");
  std::printf("%-22s %10s %10s %8s %8s %10s %8s\n", "instantiation",
              "class[GE]", "hand[GE]", "gates=", "dffs=", "timing=", "equiv=");
  bool all_equal = true;
  for (const auto& [w, rst] : {std::pair<unsigned, std::uint64_t>{2, 0},
                               {4, 0},
                               {4, 0x5},
                               {8, 0},
                               {16, 0xabcd},
                               {32, 0}}) {
    const auto cls = expocu::sync_register_template().instantiate({w, rst});
    const gate::Netlist a = gate::lower_to_gates(from_class(*cls));
    const gate::Netlist b = gate::lower_to_gates(by_hand(w, rst));
    const auto ta = gate::analyze_timing(a, lib);
    const auto tb = gate::analyze_timing(b, lib);
    const bool gates_eq = a.gate_count() == b.gate_count();
    const bool dffs_eq = a.dff_count() == b.dff_count();
    const bool time_eq = ta.critical_path_ps == tb.critical_path_ps;
    const bool func_eq = static_cast<bool>(gate::check_equivalence(a, b, 4, 128));
    all_equal = all_equal && gates_eq && dffs_eq && time_eq && func_eq;
    std::printf("SyncRegister<%2u,%#6llx> %9.1f %10.1f %8s %8s %10s %8s\n", w,
                static_cast<unsigned long long>(rst), ta.area_ge, tb.area_ge,
                gates_eq ? "yes" : "NO", dffs_eq ? "yes" : "NO",
                time_eq ? "yes" : "NO", func_eq ? "yes" : "NO");
  }
  std::printf("\npaper: zero overhead -> reproduced: %s\n",
              all_equal ? "netlists identical in gates, DFFs and timing"
                        : "MISMATCH");
  return all_equal ? 0 : 1;
}
