// R7 — "Much higher simulation speed than conventional RTL simulators."
// (§10)
//
// The same workload — camera frames streaming through histogram
// acquisition and threshold calculation — is simulated at three levels:
//
//   * OO model:   the compiled C++ ExpoCU on the simulation kernel
//                 (the paper's "binary executable for simulation");
//   * RTL level:  the synthesized modules on the cycle-level RTL simulator;
//   * gate level: the mapped netlists on the gate simulator, once per
//                 engine — event-driven (the "conventional RTL/netlist
//                 simulator" stand-in), levelized two-pass, and 64-lane
//                 bit-parallel (64 frames advance per netlist sweep).
//
// Reported as items_per_second = simulated clock cycles per wall second
// (stimulus-vector cycles: the bit-parallel engine counts all 64 lanes).
// Engine internals (gate evaluations, event-queue high water, levels
// skipped) are exported as counters.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "expocu/expocu_sim.hpp"
#include "expocu/flows.hpp"
#include "gate/lower.hpp"
#include "gate/sim.hpp"
#include "hls/synth.hpp"
#include "rtl/sim.hpp"

using namespace osss;
using namespace osss::expocu;

namespace {

constexpr unsigned kCyclesPerFrame = kPixelsPerFrame + 8;

void BM_OoKernelSim(benchmark::State& state) {
  sysc::Context ctx;
  ExpoCuSystem sys(ctx);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    ctx.run_for(static_cast<sysc::Time>(kCyclesPerFrame) * kClockPeriodPs);
    cycles += kCyclesPerFrame;
    benchmark::DoNotOptimize(sys.expocu.exposure());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  state.counters["level"] = 0;  // OO
}

template <class Sim>
void drive_frame(Sim& hist, Sim& thresh, std::uint64_t frame) {
  // Deterministic pixel pattern (no camera model cost in the loop).
  for (unsigned i = 0; i < kCyclesPerFrame; ++i) {
    const bool valid = i < kPixelsPerFrame;
    hist.set_input("pixel", (i * 7 + frame * 13) & 0xff);
    hist.set_input("pixel_valid", valid ? 1 : 0);
    hist.set_input("vsync", (valid && i == 0) ? 1 : 0);
    hist.step();
    thresh.set_input("bin_valid", hist.output("bin_valid"));
    thresh.set_input("bin_index", hist.output("bin_index"));
    thresh.set_input("bin_count", hist.output("bin_count"));
    thresh.set_input("frame_done", hist.output("frame_done"));
    thresh.step();
  }
}

void BM_RtlCycleSim(benchmark::State& state) {
  rtl::Simulator hist(build_histogram_rtl());
  rtl::Simulator thresh(hls::synthesize(build_threshold_osss()));
  std::uint64_t frame = 0;
  for (auto _ : state) {
    drive_frame(hist, thresh, frame++);
    benchmark::DoNotOptimize(thresh.output("mean"));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(frame) * kCyclesPerFrame);
  state.counters["level"] = 1;  // RTL
}

void report_engine_stats(benchmark::State& state,
                         const gate::Simulator::Stats& hist,
                         const gate::Simulator::Stats& thresh) {
  state.counters["gate_evals"] = static_cast<double>(hist.events +
                                                     thresh.events);
  state.counters["queue_high_water"] = static_cast<double>(
      std::max(hist.queue_high_water, thresh.queue_high_water));
  state.counters["levels_evaluated"] =
      static_cast<double>(hist.levels_evaluated + thresh.levels_evaluated);
  state.counters["levels_skipped"] =
      static_cast<double>(hist.levels_skipped + thresh.levels_skipped);
}

void gate_scalar_bench(benchmark::State& state, gate::SimMode mode) {
  gate::Simulator hist(gate::lower_to_gates(build_histogram_rtl()), mode);
  gate::Simulator thresh(
      gate::lower_to_gates(hls::synthesize(build_threshold_osss())), mode);
  std::uint64_t frame = 0;
  for (auto _ : state) {
    drive_frame(hist, thresh, frame++);
    benchmark::DoNotOptimize(thresh.output("mean"));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(frame) * kCyclesPerFrame);
  state.counters["level"] = 2;  // gate
  report_engine_stats(state, hist.stats(), thresh.stats());
}

void BM_GateEventSim(benchmark::State& state) {
  gate_scalar_bench(state, gate::SimMode::kEvent);
}

void BM_GateLevelizedSim(benchmark::State& state) {
  gate_scalar_bench(state, gate::SimMode::kLevelized);
}

void BM_GateBitParallelSim(benchmark::State& state) {
  // One simulated cycle advances kLanes independent frames: lane l runs
  // the pixel stream of frame `frame + l`.
  constexpr unsigned kLanes = gate::Simulator::kLanes;
  gate::Simulator hist(gate::lower_to_gates(build_histogram_rtl()),
                       gate::SimMode::kBitParallel);
  gate::Simulator thresh(
      gate::lower_to_gates(hls::synthesize(build_threshold_osss())),
      gate::SimMode::kBitParallel);
  std::vector<std::uint64_t> pixel(8);
  std::uint64_t frame = 0;
  for (auto _ : state) {
    for (unsigned i = 0; i < kCyclesPerFrame; ++i) {
      const bool valid = i < kPixelsPerFrame;
      std::fill(pixel.begin(), pixel.end(), 0);
      for (unsigned lane = 0; lane < kLanes; ++lane) {
        const std::uint64_t pix = (i * 7 + (frame + lane) * 13) & 0xff;
        for (unsigned b = 0; b < 8; ++b)
          pixel[b] |= ((pix >> b) & 1u) << lane;
      }
      hist.set_input_lanes("pixel", pixel);
      hist.set_input("pixel_valid", valid ? 1 : 0);
      hist.set_input("vsync", (valid && i == 0) ? 1 : 0);
      hist.step();
      thresh.set_input_lanes("bin_valid", hist.output_words("bin_valid"));
      thresh.set_input_lanes("bin_index", hist.output_words("bin_index"));
      thresh.set_input_lanes("bin_count", hist.output_words("bin_count"));
      thresh.set_input_lanes("frame_done", hist.output_words("frame_done"));
      thresh.step();
    }
    frame += kLanes;
    benchmark::DoNotOptimize(thresh.output("mean"));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(frame) * kCyclesPerFrame);
  state.counters["level"] = 2;  // gate
  report_engine_stats(state, hist.stats(), thresh.stats());
}

}  // namespace

BENCHMARK(BM_OoKernelSim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RtlCycleSim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GateEventSim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GateLevelizedSim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GateBitParallelSim)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
