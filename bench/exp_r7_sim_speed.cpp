// R7 — "Much higher simulation speed than conventional RTL simulators."
// (§10)
//
// The same workload — camera frames streaming through histogram
// acquisition and threshold calculation — is simulated at three levels:
//
//   * OO model:   the compiled C++ ExpoCU on the simulation kernel
//                 (the paper's "binary executable for simulation");
//   * RTL level:  the synthesized modules on the cycle-level RTL simulator;
//   * gate level: the mapped netlists on the event-driven gate simulator
//                 (the "conventional RTL/netlist simulator" stand-in).
//
// Reported as items_per_second = simulated clock cycles per wall second.

#include <benchmark/benchmark.h>

#include "expocu/expocu_sim.hpp"
#include "expocu/flows.hpp"
#include "gate/lower.hpp"
#include "gate/sim.hpp"
#include "hls/synth.hpp"
#include "rtl/sim.hpp"

using namespace osss;
using namespace osss::expocu;

namespace {

constexpr unsigned kCyclesPerFrame = kPixelsPerFrame + 8;

void BM_OoKernelSim(benchmark::State& state) {
  sysc::Context ctx;
  ExpoCuSystem sys(ctx);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    ctx.run_for(static_cast<sysc::Time>(kCyclesPerFrame) * kClockPeriodPs);
    cycles += kCyclesPerFrame;
    benchmark::DoNotOptimize(sys.expocu.exposure());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  state.counters["level"] = 0;  // OO
}

template <class Sim>
void drive_frame(Sim& hist, Sim& thresh, std::uint64_t frame) {
  // Deterministic pixel pattern (no camera model cost in the loop).
  for (unsigned i = 0; i < kCyclesPerFrame; ++i) {
    const bool valid = i < kPixelsPerFrame;
    hist.set_input("pixel", (i * 7 + frame * 13) & 0xff);
    hist.set_input("pixel_valid", valid ? 1 : 0);
    hist.set_input("vsync", (valid && i == 0) ? 1 : 0);
    hist.step();
    thresh.set_input("bin_valid", hist.output("bin_valid"));
    thresh.set_input("bin_index", hist.output("bin_index"));
    thresh.set_input("bin_count", hist.output("bin_count"));
    thresh.set_input("frame_done", hist.output("frame_done"));
    thresh.step();
  }
}

void BM_RtlCycleSim(benchmark::State& state) {
  rtl::Simulator hist(build_histogram_rtl());
  rtl::Simulator thresh(hls::synthesize(build_threshold_osss()));
  std::uint64_t frame = 0;
  for (auto _ : state) {
    drive_frame(hist, thresh, frame++);
    benchmark::DoNotOptimize(thresh.output("mean"));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(frame) * kCyclesPerFrame);
  state.counters["level"] = 1;  // RTL
}

void BM_GateEventSim(benchmark::State& state) {
  gate::Simulator hist(gate::lower_to_gates(build_histogram_rtl()));
  gate::Simulator thresh(
      gate::lower_to_gates(hls::synthesize(build_threshold_osss())));
  std::uint64_t frame = 0;
  for (auto _ : state) {
    drive_frame(hist, thresh, frame++);
    benchmark::DoNotOptimize(thresh.output("mean"));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(frame) * kCyclesPerFrame);
  state.counters["level"] = 2;  // gate
}

}  // namespace

BENCHMARK(BM_OoKernelSim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RtlCycleSim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GateEventSim)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
