// R7 — "Much higher simulation speed than conventional RTL simulators."
// (§10)
//
// The same workload — camera frames streaming through histogram
// acquisition and threshold calculation — is simulated at three levels:
//
//   * OO model:   the compiled C++ ExpoCU on the simulation kernel
//                 (the paper's "binary executable for simulation");
//   * RTL level:  the synthesized modules on the RTL simulator, once per
//                 engine — the Bits interpreter (the oracle), the
//                 compiled word-level tape (scalar and 64-lane), and the
//                 native-code backend (scalar and 256-lane SIMD);
//   * gate level: the mapped netlists on the gate simulator, once per
//                 engine — event-driven (the "conventional RTL/netlist
//                 simulator" stand-in), levelized two-pass, and 64-lane
//                 bit-parallel (64 frames advance per netlist sweep).
//
// Reported as items_per_second = simulated clock cycles per wall second
// (stimulus-vector cycles: the bit-parallel engine counts all 64 lanes).
// Engine internals (gate evaluations, event-queue high water, levels
// skipped) are exported as counters.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "expocu/expocu_sim.hpp"
#include "expocu/flows.hpp"
#include "gate/lower.hpp"
#include "gate/sim.hpp"
#include "hls/synth.hpp"
#include "jit/jit.hpp"
#include "par/batch.hpp"
#include "par/pool.hpp"
#include "rtl/sim.hpp"

using namespace osss;
using namespace osss::expocu;

namespace {

constexpr unsigned kCyclesPerFrame = kPixelsPerFrame + 8;

void BM_OoKernelSim(benchmark::State& state) {
  sysc::Context ctx;
  ExpoCuSystem sys(ctx);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    ctx.run_for(static_cast<sysc::Time>(kCyclesPerFrame) * kClockPeriodPs);
    cycles += kCyclesPerFrame;
    benchmark::DoNotOptimize(sys.expocu.exposure());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  state.counters["level"] = 0;  // OO
}

template <class Sim>
void drive_frame(Sim& hist, Sim& thresh, std::uint64_t frame) {
  // Deterministic pixel pattern (no camera model cost in the loop).
  for (unsigned i = 0; i < kCyclesPerFrame; ++i) {
    const bool valid = i < kPixelsPerFrame;
    hist.set_input("pixel", (i * 7 + frame * 13) & 0xff);
    hist.set_input("pixel_valid", valid ? 1 : 0);
    hist.set_input("vsync", (valid && i == 0) ? 1 : 0);
    hist.step();
    thresh.set_input("bin_valid", hist.output("bin_valid"));
    thresh.set_input("bin_index", hist.output("bin_index"));
    thresh.set_input("bin_count", hist.output("bin_count"));
    thresh.set_input("frame_done", hist.output("frame_done"));
    thresh.step();
  }
}

void report_rtl_stats(benchmark::State& state,
                      const rtl::Simulator::Stats& hist,
                      const rtl::Simulator::Stats& thresh) {
  state.counters["nodes_evaluated"] =
      static_cast<double>(hist.nodes_evaluated + thresh.nodes_evaluated);
  state.counters["levels_evaluated"] =
      static_cast<double>(hist.levels_evaluated + thresh.levels_evaluated);
  state.counters["levels_skipped"] =
      static_cast<double>(hist.levels_skipped + thresh.levels_skipped);
  state.counters["tape_len"] =
      static_cast<double>(hist.tape_len + thresh.tape_len);
  state.counters["arena_words"] =
      static_cast<double>(hist.arena_words + thresh.arena_words);
  state.counters["const_folded"] =
      static_cast<double>(hist.const_folded + thresh.const_folded);
  state.counters["pruned"] = static_cast<double>(hist.pruned + thresh.pruned);
  state.counters["fused"] = static_cast<double>(hist.fused + thresh.fused);
}

// JIT cost attribution for the native rows: `before`→`setup` spans engine
// construction (2 compiles cold, disk hits under a warm $OSSS_JIT_CACHE_DIR,
// in-memory hits when an earlier bench in this process compiled the same
// design), and `setup`→now spans the timed loop itself.  A healthy run has
// jit_compiles_steady == 0 — the engines never rebuild while being measured;
// tools/check_bench_r7.py gates on it.
void report_jit_stats(benchmark::State& state, const jit::CacheStats& before,
                      const jit::CacheStats& setup) {
  const jit::CacheStats now = jit::cache_stats();
  state.counters["jit_compiles"] =
      static_cast<double>(setup.compiles - before.compiles);
  state.counters["jit_cache_hits"] =
      static_cast<double>(setup.hits - before.hits);
  state.counters["jit_disk_hits"] =
      static_cast<double>(setup.disk_hits - before.disk_hits);
  state.counters["jit_compiles_steady"] =
      static_cast<double>(now.compiles - setup.compiles);
}

void rtl_scalar_bench(benchmark::State& state, rtl::SimMode mode,
                      unsigned lanes = 1) {
  const jit::CacheStats jit_before = jit::cache_stats();
  rtl::Simulator hist(build_histogram_rtl(), mode, lanes);
  rtl::Simulator thresh(hls::synthesize(build_threshold_osss()), mode, lanes);
  const jit::CacheStats jit_setup = jit::cache_stats();
  // Resolve every port once; the frame loop drives cached handles.
  const rtl::InputHandle pixel = hist.input_handle("pixel");
  const rtl::InputHandle pixel_valid = hist.input_handle("pixel_valid");
  const rtl::InputHandle vsync = hist.input_handle("vsync");
  const rtl::OutputHandle bin_valid = hist.output_handle("bin_valid");
  const rtl::OutputHandle bin_index = hist.output_handle("bin_index");
  const rtl::OutputHandle bin_count = hist.output_handle("bin_count");
  const rtl::OutputHandle frame_done = hist.output_handle("frame_done");
  const rtl::InputHandle t_bin_valid = thresh.input_handle("bin_valid");
  const rtl::InputHandle t_bin_index = thresh.input_handle("bin_index");
  const rtl::InputHandle t_bin_count = thresh.input_handle("bin_count");
  const rtl::InputHandle t_frame_done = thresh.input_handle("frame_done");
  const rtl::OutputHandle mean = thresh.output_handle("mean");
  std::uint64_t frame = 0;
  for (auto _ : state) {
    for (unsigned i = 0; i < kCyclesPerFrame; ++i) {
      const bool valid = i < kPixelsPerFrame;
      hist.set_input(pixel, (i * 7 + frame * 13) & 0xff);
      hist.set_input(pixel_valid, std::uint64_t{valid ? 1u : 0u});
      hist.set_input(vsync, std::uint64_t{(valid && i == 0) ? 1u : 0u});
      hist.step();
      thresh.set_input(t_bin_valid, hist.output_u64(bin_valid));
      thresh.set_input(t_bin_index, hist.output_u64(bin_index));
      thresh.set_input(t_bin_count, hist.output_u64(bin_count));
      thresh.set_input(t_frame_done, hist.output_u64(frame_done));
      thresh.step();
    }
    ++frame;
    benchmark::DoNotOptimize(thresh.output(mean));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(frame) * kCyclesPerFrame);
  state.counters["level"] = 1;  // RTL
  if (mode != rtl::SimMode::kInterp)
    report_rtl_stats(state, hist.stats(), thresh.stats());
  if (mode == rtl::SimMode::kNative) {
    // 1 = the dlopen'd specialized code ran; 0 = threaded-code fallback
    // (compiler missing, OSSS_NO_JIT, ...).  Lets a reader of the JSON
    // tell which engine the native rows actually measured.
    state.counters["native_code"] =
        (hist.native().native() && thresh.native().native()) ? 1 : 0;
    report_jit_stats(state, jit_before, jit_setup);
  }
}

void BM_RtlCycleSim(benchmark::State& state) {
  rtl_scalar_bench(state, rtl::SimMode::kInterp);
}

void BM_RtlTapeSim(benchmark::State& state) {
  rtl_scalar_bench(state, rtl::SimMode::kTape);
}

void BM_RtlNativeSim(benchmark::State& state) {
  rtl_scalar_bench(state, rtl::SimMode::kNative);
}

void rtl_lanes_bench(benchmark::State& state, rtl::SimMode mode,
                     const unsigned kLanes) {
  // One simulated cycle advances kLanes independent frames through the
  // engine: lane l runs the pixel stream of frame `frame + l` (the RTL
  // analogue of the gate bit-parallel row).  Lane counts above 64 need
  // the native backend, which packs bit b of a port into lanes/64
  // consecutive words and evaluates them with SIMD vectors.
  const jit::CacheStats jit_before = jit::cache_stats();
  rtl::Simulator hist(build_histogram_rtl(), mode, kLanes);
  rtl::Simulator thresh(hls::synthesize(build_threshold_osss()), mode,
                        kLanes);
  const jit::CacheStats jit_setup = jit::cache_stats();
  const rtl::InputHandle pixel = hist.input_handle("pixel");
  const rtl::InputHandle pixel_valid = hist.input_handle("pixel_valid");
  const rtl::InputHandle vsync = hist.input_handle("vsync");
  const rtl::OutputHandle bin_valid = hist.output_handle("bin_valid");
  const rtl::OutputHandle bin_index = hist.output_handle("bin_index");
  const rtl::OutputHandle bin_count = hist.output_handle("bin_count");
  const rtl::OutputHandle frame_done = hist.output_handle("frame_done");
  const rtl::InputHandle t_bin_valid = thresh.input_handle("bin_valid");
  const rtl::InputHandle t_bin_index = thresh.input_handle("bin_index");
  const rtl::InputHandle t_bin_count = thresh.input_handle("bin_count");
  const rtl::InputHandle t_frame_done = thresh.input_handle("frame_done");
  const rtl::OutputHandle mean = thresh.output_handle("mean");
  // One value per lane — the engines are lane-major, so this drives the
  // stimulus without the bit transposes of the set_input_lanes layout.
  std::vector<std::uint64_t> pixel_lanes(kLanes);
  std::uint64_t frame = 0;
  for (auto _ : state) {
    for (unsigned i = 0; i < kCyclesPerFrame; ++i) {
      const bool valid = i < kPixelsPerFrame;
      for (unsigned lane = 0; lane < kLanes; ++lane)
        pixel_lanes[lane] = (i * 7 + (frame + lane) * 13) & 0xff;
      hist.set_input_values(pixel, pixel_lanes);
      hist.set_input(pixel_valid, std::uint64_t{valid ? 1u : 0u});
      hist.set_input(vsync, std::uint64_t{(valid && i == 0) ? 1u : 0u});
      hist.step();
      thresh.set_input_values(t_bin_valid, hist.output_values(bin_valid));
      thresh.set_input_values(t_bin_index, hist.output_values(bin_index));
      thresh.set_input_values(t_bin_count, hist.output_values(bin_count));
      thresh.set_input_values(t_frame_done, hist.output_values(frame_done));
      thresh.step();
    }
    frame += kLanes;
    benchmark::DoNotOptimize(thresh.output(mean));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(frame) * kCyclesPerFrame);
  state.counters["level"] = 1;  // RTL
  state.counters["lanes"] = static_cast<double>(kLanes);
  report_rtl_stats(state, hist.stats(), thresh.stats());
  if (mode == rtl::SimMode::kNative) {
    state.counters["native_code"] =
        (hist.native().native() && thresh.native().native()) ? 1 : 0;
    report_jit_stats(state, jit_before, jit_setup);
  }
}

void BM_RtlTapeLanesSim(benchmark::State& state) {
  rtl_lanes_bench(state, rtl::SimMode::kTape, 64);
}

void BM_RtlNativeLanesSim(benchmark::State& state) {
  rtl_lanes_bench(state, rtl::SimMode::kNative, 256);
}

void report_engine_stats(benchmark::State& state,
                         const gate::Simulator::Stats& hist,
                         const gate::Simulator::Stats& thresh) {
  state.counters["gate_evals"] = static_cast<double>(hist.events +
                                                     thresh.events);
  state.counters["queue_high_water"] = static_cast<double>(
      std::max(hist.queue_high_water, thresh.queue_high_water));
  state.counters["levels_evaluated"] =
      static_cast<double>(hist.levels_evaluated + thresh.levels_evaluated);
  state.counters["levels_skipped"] =
      static_cast<double>(hist.levels_skipped + thresh.levels_skipped);
}

void gate_scalar_bench(benchmark::State& state, gate::SimMode mode) {
  gate::Simulator hist(gate::lower_to_gates(build_histogram_rtl()), mode);
  gate::Simulator thresh(
      gate::lower_to_gates(hls::synthesize(build_threshold_osss())), mode);
  std::uint64_t frame = 0;
  for (auto _ : state) {
    drive_frame(hist, thresh, frame++);
    benchmark::DoNotOptimize(thresh.output("mean"));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(frame) * kCyclesPerFrame);
  state.counters["level"] = 2;  // gate
  report_engine_stats(state, hist.stats(), thresh.stats());
}

void BM_GateEventSim(benchmark::State& state) {
  gate_scalar_bench(state, gate::SimMode::kEvent);
}

void BM_GateLevelizedSim(benchmark::State& state) {
  gate_scalar_bench(state, gate::SimMode::kLevelized);
}

void BM_GateBitParallelSim(benchmark::State& state) {
  // One simulated cycle advances kLanes independent frames: lane l runs
  // the pixel stream of frame `frame + l`.
  constexpr unsigned kLanes = gate::Simulator::kLanes;
  gate::Simulator hist(gate::lower_to_gates(build_histogram_rtl()),
                       gate::SimMode::kBitParallel);
  gate::Simulator thresh(
      gate::lower_to_gates(hls::synthesize(build_threshold_osss())),
      gate::SimMode::kBitParallel);
  std::vector<std::uint64_t> pixel(8);
  std::uint64_t frame = 0;
  for (auto _ : state) {
    for (unsigned i = 0; i < kCyclesPerFrame; ++i) {
      const bool valid = i < kPixelsPerFrame;
      std::fill(pixel.begin(), pixel.end(), 0);
      for (unsigned lane = 0; lane < kLanes; ++lane) {
        const std::uint64_t pix = (i * 7 + (frame + lane) * 13) & 0xff;
        for (unsigned b = 0; b < 8; ++b)
          pixel[b] |= ((pix >> b) & 1u) << lane;
      }
      hist.set_input_lanes("pixel", pixel);
      hist.set_input("pixel_valid", valid ? 1 : 0);
      hist.set_input("vsync", (valid && i == 0) ? 1 : 0);
      hist.step();
      thresh.set_input_lanes("bin_valid", hist.output_words("bin_valid"));
      thresh.set_input_lanes("bin_index", hist.output_words("bin_index"));
      thresh.set_input_lanes("bin_count", hist.output_words("bin_count"));
      thresh.set_input_lanes("frame_done", hist.output_words("frame_done"));
      thresh.step();
    }
    frame += kLanes;
    benchmark::DoNotOptimize(thresh.output("mean"));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(frame) * kCyclesPerFrame);
  state.counters["level"] = 2;  // gate
  report_engine_stats(state, hist.stats(), thresh.stats());
}

void gate_native_bench(benchmark::State& state, const unsigned kLanes) {
  // One simulated cycle advances kLanes independent frames through the
  // generated-code engine (lane l = frame `frame + l`); the DFF and memory
  // commits run inside the generated step().  The jit counters record what
  // the setup cost was: 2 compiles on a cold cache, cache hits when an
  // identical netlist was compiled earlier in the process.
  const jit::CacheStats jit_before = jit::cache_stats();
  gate::Simulator hist(gate::lower_to_gates(build_histogram_rtl()),
                       gate::SimMode::kNative, kLanes);
  gate::Simulator thresh(
      gate::lower_to_gates(hls::synthesize(build_threshold_osss())),
      gate::SimMode::kNative, kLanes);
  const jit::CacheStats jit_setup = jit::cache_stats();
  // One value per lane for the 8-bit pixel port (no bit transpose); the
  // hist->thresh chain hands the lane words across unmodified.
  std::vector<std::uint64_t> pixel_lanes(kLanes);
  std::uint64_t frame = 0;
  for (auto _ : state) {
    for (unsigned i = 0; i < kCyclesPerFrame; ++i) {
      const bool valid = i < kPixelsPerFrame;
      for (unsigned lane = 0; lane < kLanes; ++lane)
        pixel_lanes[lane] = (i * 7 + (frame + lane) * 13) & 0xff;
      hist.set_input_values("pixel", pixel_lanes);
      hist.set_input("pixel_valid", valid ? 1 : 0);
      hist.set_input("vsync", (valid && i == 0) ? 1 : 0);
      hist.step();
      thresh.set_input_lanes("bin_valid", hist.output_words("bin_valid"));
      thresh.set_input_lanes("bin_index", hist.output_words("bin_index"));
      thresh.set_input_lanes("bin_count", hist.output_words("bin_count"));
      thresh.set_input_lanes("frame_done", hist.output_words("frame_done"));
      thresh.step();
    }
    frame += kLanes;
    benchmark::DoNotOptimize(thresh.output("mean"));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(frame) * kCyclesPerFrame);
  state.counters["level"] = 2;  // gate
  state.counters["lanes"] = static_cast<double>(kLanes);
  report_engine_stats(state, hist.stats(), thresh.stats());
  // 1 = the dlopen'd specialized code ran; 0 = interpreted fallback.
  state.counters["native_code"] =
      (hist.native().native() && thresh.native().native()) ? 1 : 0;
  report_jit_stats(state, jit_before, jit_setup);
}

void BM_GateNativeSim(benchmark::State& state) {
  gate_native_bench(state, gate::Simulator::kLanes);
}

void BM_GateNativeLanesSim(benchmark::State& state) {
  gate_native_bench(state, 256);
}

// --- Thread scaling (src/par batch API) ------------------------------------
//
// The same histogram netlist / module, but the stimulus is pre-generated
// into independent StimulusBlocks and fanned across a work-stealing pool
// (run_batch).  Arg = pool contexts; items_per_second stays
// vector-cycles/s, so the 1→8 thread curve is the R7 scaling result.

constexpr unsigned kBatchBlocks = 16;
constexpr unsigned kFramesPerBlock = 2;
constexpr unsigned kBatchCycles = kFramesPerBlock * kCyclesPerFrame;

std::vector<par::StimulusBlock> make_gate_lane_blocks() {
  // Gate hist inputs in declaration order: pixel[8], pixel_valid, vsync —
  // 10 bit slots, each element a 64-lane word; block b lane l carries the
  // pixel stream of frame (b * 64 + l) per in-block frame.
  std::vector<par::StimulusBlock> blocks;
  for (unsigned b = 0; b < kBatchBlocks; ++b) {
    par::StimulusBlock blk = par::StimulusBlock::make(kBatchCycles, 10, 64);
    for (unsigned f = 0; f < kFramesPerBlock; ++f) {
      for (unsigned i = 0; i < kCyclesPerFrame; ++i) {
        const unsigned c = f * kCyclesPerFrame + i;
        const bool valid = i < kPixelsPerFrame;
        for (unsigned lane = 0; lane < 64; ++lane) {
          const std::uint64_t frame =
              (static_cast<std::uint64_t>(b) * 64 + lane) * kFramesPerBlock +
              f;
          const std::uint64_t pix = (i * 7 + frame * 13) & 0xff;
          for (unsigned bit = 0; bit < 8; ++bit)
            blk.in_at(c, bit) |= ((pix >> bit) & 1u) << lane;
        }
        blk.in_at(c, 8) = valid ? ~0ull : 0;
        blk.in_at(c, 9) = (valid && i == 0) ? ~0ull : 0;
      }
    }
    blocks.push_back(std::move(blk));
  }
  return blocks;
}

void BM_GateBitParallelShards(benchmark::State& state) {
  const gate::Netlist nl = gate::lower_to_gates(build_histogram_rtl());
  std::vector<par::StimulusBlock> blocks = make_gate_lane_blocks();
  par::Pool pool(static_cast<unsigned>(state.range(0)));
  std::uint64_t vectors = 0;
  for (auto _ : state) {
    gate::run_batch(nl, gate::SimMode::kBitParallel, blocks, &pool);
    vectors += static_cast<std::uint64_t>(kBatchBlocks) * kBatchCycles * 64;
    benchmark::DoNotOptimize(blocks.front().out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(vectors));
  state.counters["level"] = 2;  // gate
  state.counters["threads"] = static_cast<double>(pool.size());
}

void BM_RtlTapeBatch(benchmark::State& state) {
  const rtl::Module m = build_histogram_rtl();
  // Scalar blocks: slots follow the module ports (pixel, pixel_valid,
  // vsync); block b runs the pixel streams of frames b*2 and b*2+1.
  std::vector<par::StimulusBlock> blocks;
  for (unsigned b = 0; b < kBatchBlocks; ++b) {
    par::StimulusBlock blk = par::StimulusBlock::make(kBatchCycles, 3, 1);
    for (unsigned f = 0; f < kFramesPerBlock; ++f) {
      const std::uint64_t frame =
          static_cast<std::uint64_t>(b) * kFramesPerBlock + f;
      for (unsigned i = 0; i < kCyclesPerFrame; ++i) {
        const unsigned c = f * kCyclesPerFrame + i;
        const bool valid = i < kPixelsPerFrame;
        blk.in_at(c, 0) = (i * 7 + frame * 13) & 0xff;
        blk.in_at(c, 1) = valid ? 1 : 0;
        blk.in_at(c, 2) = (valid && i == 0) ? 1 : 0;
      }
    }
    blocks.push_back(std::move(blk));
  }
  par::Pool pool(static_cast<unsigned>(state.range(0)));
  std::uint64_t vectors = 0;
  for (auto _ : state) {
    rtl::run_batch(m, rtl::SimMode::kTape, blocks, &pool);
    vectors += static_cast<std::uint64_t>(kBatchBlocks) * kBatchCycles;
    benchmark::DoNotOptimize(blocks.front().out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(vectors));
  state.counters["level"] = 1;  // RTL
  state.counters["threads"] = static_cast<double>(pool.size());
}

}  // namespace

BENCHMARK(BM_OoKernelSim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RtlCycleSim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RtlTapeSim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RtlNativeSim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RtlTapeLanesSim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RtlNativeLanesSim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GateEventSim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GateLevelizedSim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GateBitParallelSim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GateNativeSim)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GateNativeLanesSim)->Unit(benchmark::kMillisecond);
// UseRealTime: vector-cycles per WALL second — the honest scaling metric
// (the default CPU-time rate only counts the calling thread).
BENCHMARK(BM_GateBitParallelShards)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);
BENCHMARK(BM_RtlTapeBatch)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

// Custom main instead of BENCHMARK_MAIN: google benchmark's built-in
// "library_build_type" context key records how *libbenchmark* was built,
// not this translation unit — a Debug bench linked against a Release
// libbenchmark (or vice versa) reports the wrong thing and once let a
// debug-build baseline land in BENCH_r7.json.  Record the honest build
// type of the benchmark code itself, keyed on the optimizer being on;
// tools/check_bench_r7.py refuses runs and baselines that don't say
// "release" here.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("osss_build_type",
#ifdef __OPTIMIZE__
                              "release"
#else
                              "debug"
#endif
  );
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
