// R3 — development effort: "The implementation of a complete I2C master
// module e.g. took a single day.  We assume an implementation effort of two
// days in case of pure SystemC implementation ... The VHDL implementation
// took slightly longer using the RTL coding style." (§12)
//
// We cannot re-run 2003 engineers; the measurable proxy is description
// size and the number of explicitly-managed constructs in the three real
// I2C master sources shipped in this repository (OSSS with classes,
// manually resolved SystemC style, hand-RTL FSM).  Relative description
// effort is reported normalized to the OSSS version = 1.0 "day".

#include <cstdio>
#include <fstream>
#include <string>

namespace {

struct SourceMetrics {
  unsigned loc = 0;         // non-blank, non-comment lines
  unsigned statements = 0;  // ';' occurrences
  unsigned states = 0;      // explicit state/phase bookkeeping mentions
  unsigned muxes = 0;       // hand-written selection logic (mux/if chains)
};

SourceMetrics measure(const std::string& path) {
  SourceMetrics m;
  std::ifstream in(path);
  std::string line;
  bool in_reusable = false;
  while (std::getline(in, line)) {
    if (line.find("[reusable-class begin]") != std::string::npos)
      in_reusable = true;
    if (line.find("[reusable-class end]") != std::string::npos)
      in_reusable = false;
    if (in_reusable) continue;  // library IP, not module description
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line.compare(first, 2, "//") == 0) continue;
    ++m.loc;
    for (const char c : line)
      if (c == ';') ++m.statements;
    if (line.find("state") != std::string::npos ||
        line.find("phase") != std::string::npos)
      ++m.states;
    if (line.find("mux") != std::string::npos ||
        line.find("if_") != std::string::npos ||
        line.find("if (") != std::string::npos ||
        line.find("cond(") != std::string::npos)
      ++m.muxes;
  }
  return m;
}

}  // namespace

int main() {
  const std::string base = std::string(OSSS_SOURCE_DIR) + "/src/expocu/";
  struct Row {
    const char* style;
    const char* file;
    double paper_days;
  };
  const Row rows[] = {
      {"OSSS (classes)", "i2c_master_osss.cpp", 1.0},
      {"pure SystemC", "i2c_master_systemc.cpp", 2.0},
      {"VHDL RTL", "i2c_master_vhdl.cpp", 2.5},
  };
  std::printf("R3: I2C master description effort, three styles\n");
  std::printf("%-18s %6s %6s %7s %6s %12s %12s\n", "style", "LoC", "stmts",
              "state*", "sel*", "effort(est)", "paper(days)");
  double osss_loc = 0;
  for (const Row& r : rows) {
    const SourceMetrics m = measure(base + r.file);
    if (osss_loc == 0) osss_loc = m.loc;
    std::printf("%-18s %6u %6u %7u %6u %11.2fx %12.1f\n", r.style, m.loc,
                m.statements, m.states, m.muxes, m.loc / osss_loc,
                r.paper_days);
  }
  std::printf(
      "\n(state*: explicit state/phase bookkeeping lines; sel*: hand-written "
      "selection logic.\n effort(est) = LoC relative to the OSSS version; "
      "paper(days) = the engineer-day figures of §12.)\n");
  return 0;
}
