// R6 — "When global objects are being instantiated and accessed, some
// scheduling logic of course has to be added." (§8)
//
// Generates shared-object modules over a sweep of client counts and
// scheduler policies and reports the scheduler logic cost: the difference
// between the full shared module and the bare (1-client, no arbitration
// contention) object datapath.

#include <cstdio>

#include "gate/lower.hpp"
#include "gate/timing.hpp"
#include "synth/shared_synth.hpp"

using namespace osss;

namespace {

meta::ClassPtr counter_class() {
  using namespace meta;
  auto c = std::make_shared<ClassDesc>("Counter");
  c->add_member("value", 16);
  MethodDesc add;
  add.name = "Add";
  add.params = {{"d", 16}};
  add.body = {assign_member("value",
                            meta::add(member("value", 16), param("d", 16)))};
  c->add_method(std::move(add));
  MethodDesc get;
  get.name = "Get";
  get.return_width = 16;
  get.is_const = true;
  get.body = {return_stmt(member("value", 16))};
  c->add_method(std::move(get));
  return c;
}

double shared_area(unsigned clients, synth::SharedSpec::Policy policy,
                   const gate::Library& lib, double* fmax) {
  synth::SharedSpec spec;
  spec.name = "shared_counter";
  spec.cls = counter_class();
  spec.methods = {"Add", "Get"};
  spec.clients = clients;
  spec.policy = policy;
  const auto report =
      gate::analyze_timing(gate::lower_to_gates(synth::synthesize_shared(spec)),
                           lib);
  if (fmax != nullptr) *fmax = report.fmax_mhz;
  return report.area_ge;
}

}  // namespace

int main() {
  const auto lib = gate::Library::generic();
  std::printf("R6: generated scheduling logic for shared (global) objects\n");
  double base_fmax = 0.0;
  const double base = shared_area(1, synth::SharedSpec::Policy::kStaticPriority,
                                  lib, &base_fmax);
  std::printf("bare object datapath (1 client): %.1f GE, %.1f MHz\n\n", base,
              base_fmax);
  std::printf("%8s | %14s %10s | %14s %10s\n", "clients", "roundrobin[GE]",
              "sched[GE]", "priority[GE]", "sched[GE]");
  for (const unsigned n : {2u, 4u, 8u}) {
    double f1 = 0.0;
    double f2 = 0.0;
    const double rr =
        shared_area(n, synth::SharedSpec::Policy::kRoundRobin, lib, &f1);
    const double pr =
        shared_area(n, synth::SharedSpec::Policy::kStaticPriority, lib, &f2);
    std::printf("%8u | %14.1f %10.1f | %14.1f %10.1f\n", n, rr, rr - base, pr,
                pr - base);
  }
  std::printf(
      "\npaper: scheduler logic is added and grows with contention — as a "
      "manual arbiter would;\nround-robin (rotation register) costs more "
      "than static priority, as expected.\n");
  return 0;
}
