// R2 — "The frequency of the achieved in OSSS design is below the
// frequency in the VHDL flow." (§12) with the 66 MHz system target (§2).
//
// Static timing analysis on both flows' netlists, before and after the
// optimization pipeline (opt::optimize): critical path, logic depth and
// fmax per component; the flow fmax is the worst component.  The pipeline
// may never lengthen a critical path (techmap is depth-bounded by the
// input netlist), so the post columns dominate the pre columns.

#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "expocu/flows.hpp"
#include "gate/lower.hpp"
#include "gate/timing.hpp"
#include "lint/dataflow.hpp"
#include "opt/opt.hpp"

namespace {

struct Row {
  std::string name;
  osss::gate::TimingReport pre;
  osss::gate::TimingReport post;
};

std::vector<Row> analyze(const std::vector<osss::expocu::FlowComponent>& flow,
                         const osss::gate::Library& lib) {
  osss::opt::PipelineOptions po;
  po.lib = &lib;
  std::vector<Row> rows;
  for (const auto& c : flow) {
    const osss::gate::Netlist pre = osss::gate::lower_to_gates(c.module);
    // Same fact conduit as R1: RTL-proven register-bit constants seed the
    // satsweep pass, which re-proves them by netlist induction.
    po.facts = std::make_shared<const std::unordered_map<std::string, bool>>(
        osss::lint::analyze_dataflow(c.module).const_reg_bits());
    const osss::gate::Netlist post = osss::opt::optimize(pre, po);
    rows.push_back({c.name, osss::gate::analyze_timing(pre, lib),
                    osss::gate::analyze_timing(post, lib)});
  }
  return rows;
}

double flow_fmax(const std::vector<Row>& rows, bool post) {
  double fmax = 1e30;
  for (const Row& r : rows)
    fmax = std::min(fmax, post ? r.post.fmax_mhz : r.pre.fmax_mhz);
  return fmax;
}

void print_flow(const char* tag, const std::vector<Row>& rows) {
  std::printf("%s flow:\n", tag);
  std::printf("%-16s | %9s %7s %6s | %9s %7s %6s\n", "component", "pre[ps]",
              "fmax", "levels", "post[ps]", "fmax", "levels");
  for (const Row& r : rows)
    std::printf("%-16s | %9.0f %7.1f %6zu | %9.0f %7.1f %6zu\n",
                r.name.c_str(), r.pre.critical_path_ps, r.pre.fmax_mhz,
                r.pre.levels, r.post.critical_path_ps, r.post.fmax_mhz,
                r.post.levels);
}

}  // namespace

int main() {
  using namespace osss::expocu;
  const auto lib = osss::gate::Library::generic();
  const std::vector<Row> osss_rows = analyze(build_osss_flow(), lib);
  const std::vector<Row> vhdl_rows = analyze(build_vhdl_flow(), lib);

  std::printf("R2: achievable clock frequency (target %.0f MHz), pre/post "
              "optimization\n", kClockMhz);
  print_flow("OSSS", osss_rows);
  print_flow("VHDL", vhdl_rows);

  const double osss_pre = flow_fmax(osss_rows, false);
  const double osss_post = flow_fmax(osss_rows, true);
  const double vhdl_pre = flow_fmax(vhdl_rows, false);
  const double vhdl_post = flow_fmax(vhdl_rows, true);
  bool no_regression = true;
  for (const auto* rows : {&osss_rows, &vhdl_rows})
    for (const Row& r : *rows)
      no_regression =
          no_regression &&
          r.post.critical_path_ps <= r.pre.critical_path_ps + 1e-6;

  std::printf("\nflow fmax: OSSS %.1f -> %.1f MHz, VHDL %.1f -> %.1f MHz\n",
              osss_pre, osss_post, vhdl_pre, vhdl_post);
  std::printf("(OSSS below VHDL: %s; both meet 66 MHz: %s; no critical-path "
              "regression from optimization: %s)\n",
              osss_post < vhdl_post ? "yes" : "NO",
              (osss_post >= kClockMhz && vhdl_post >= kClockMhz) ? "yes"
                                                                 : "NO",
              no_regression ? "yes" : "NO");
  return no_regression ? 0 : 1;
}
