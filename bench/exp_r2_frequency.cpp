// R2 — "The frequency of the achieved in OSSS design is below the
// frequency in the VHDL flow." (§12) with the 66 MHz system target (§2).
//
// Static timing analysis on both flows' netlists: critical path, logic
// depth and fmax per component; the flow fmax is the worst component.

#include <cstdio>

#include "expocu/flows.hpp"

int main() {
  using namespace osss::expocu;
  const auto lib = osss::gate::Library::generic();
  const FlowReport osss = synthesize_flow(build_osss_flow(), lib);
  const FlowReport vhdl = synthesize_flow(build_vhdl_flow(), lib);

  std::printf("R2: achievable clock frequency (target %.0f MHz)\n", kClockMhz);
  std::printf("%-16s | %9s %7s %6s | %9s %7s %6s\n", "component",
              "OSSS[ps]", "fmax", "levels", "VHDL[ps]", "fmax", "levels");
  for (const auto& o : osss.components) {
    const auto* v = vhdl.find(o.name);
    std::printf("%-16s | %9.0f %7.1f %6zu | %9.0f %7.1f %6zu\n",
                o.name.c_str(), o.timing.critical_path_ps, o.timing.fmax_mhz,
                o.timing.levels, v->timing.critical_path_ps,
                v->timing.fmax_mhz, v->timing.levels);
  }
  std::printf("\nflow fmax: OSSS %.1f MHz, VHDL %.1f MHz", osss.min_fmax_mhz,
              vhdl.min_fmax_mhz);
  std::printf("  (OSSS below VHDL: %s; both meet 66 MHz: %s)\n",
              osss.min_fmax_mhz < vhdl.min_fmax_mhz ? "yes" : "NO",
              (osss.min_fmax_mhz >= kClockMhz && vhdl.min_fmax_mhz >= kClockMhz)
                  ? "yes"
                  : "NO");
  return 0;
}
