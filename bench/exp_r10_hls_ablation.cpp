// R10 — ablation of the behavioral-synthesis overhead the paper flags:
// "in synthesis steps during behavioral synthesis of SystemC code, the
// tools have some restrictions and produce some unnecessary overhead.
// Thus ... the influence on area and speed are partly tool specific
// issues." (§12) and the future-work promise to investigate it (§14).
//
// Sweeps the behavioral components through the synthesizer with and
// without multiplier sharing, against the hand-RTL baselines, isolating
// where the "unnecessary overhead" lives (FSM + datapath selection) and
// what resource binding buys.

#include <cstdio>

#include "expocu/flows.hpp"
#include "gate/lower.hpp"

using namespace osss;
using namespace osss::expocu;

namespace {

void row(const char* name, const hls::Behavior& beh,
         const rtl::Module* baseline, const gate::Library& lib) {
  for (const bool share : {false, true}) {
    hls::Report rep;
    const rtl::Module m =
        hls::synthesize(beh, {.share_multipliers = share}, &rep);
    const auto t = gate::analyze_timing(gate::lower_to_gates(m), lib);
    std::printf("%-16s %-9s %6u %6u %5u/%-5u %9.0f %7.1f\n", name,
                share ? "shared" : "flat", rep.states, rep.transitions,
                rep.mul_units, rep.mul_ops, t.area_ge, t.fmax_mhz);
  }
  if (baseline != nullptr) {
    const auto t = gate::analyze_timing(gate::lower_to_gates(*baseline), lib);
    std::printf("%-16s %-9s %6s %6s %11s %9.0f %7.1f\n", name, "handRTL", "-",
                "-", "-", t.area_ge, t.fmax_mhz);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const auto lib = gate::Library::generic();
  std::printf("R10: behavioral synthesis ablation (binding / overhead)\n");
  std::printf("%-16s %-9s %6s %6s %11s %9s %7s\n", "component", "binding",
              "states", "trans", "units/ops", "area[GE]", "fmax");
  const rtl::Module thr_base = build_threshold_vhdl();
  const rtl::Module par_base = build_param_calc_vhdl();
  const rtl::Module i2c_base = build_i2c_master_vhdl();
  row("threshold_calc", build_threshold_osss(), &thr_base, lib);
  row("param_calc", build_param_calc_osss(), &par_base, lib);
  row("i2c_master", build_i2c_master_osss(), &i2c_base, lib);
  std::printf(
      "shape: behavioral versions carry FSM/selection overhead vs handRTL; "
      "multiplier sharing\ntrades multiplier area for operand muxes — "
      "valuable once several multiplications are\nmutually exclusive.\n");
  return 0;
}
