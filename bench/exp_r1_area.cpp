// R1 — "If we compare the required area of a synthesized ExpoCU netlist in
// a conventional and an OSSS approach, they are almost equivalent." (§12)
//
// Synthesizes every ExpoCU component through both flows and prints the
// per-component and total mapped area.  The area numbers are then backed
// functionally: every mapped netlist is re-simulated under random vectors
// with the event-driven engine on one side and the 64-lane bit-parallel
// engine on the other (gate::check_equivalence with mixed modes) — the
// engines must agree on every output of every cycle, so the netlists the
// table measures are known-good under two independent evaluators.

#include <cstdio>
#include <string>
#include <vector>

#include "expocu/flows.hpp"
#include "gate/equiv.hpp"
#include "gate/lower.hpp"
#include "par/pool.hpp"

int main() {
  using namespace osss::expocu;
  const auto lib = osss::gate::Library::generic();
  const FlowReport osss = synthesize_flow(build_osss_flow(), lib);
  const FlowReport vhdl = synthesize_flow(build_vhdl_flow(), lib);

  std::printf("R1: ExpoCU netlist area, OSSS flow vs conventional (VHDL) flow\n");
  std::printf("%-16s %12s %12s %8s\n", "component", "OSSS [GE]", "VHDL [GE]",
              "ratio");
  for (const auto& o : osss.components) {
    const auto* v = vhdl.find(o.name);
    std::printf("%-16s %12.0f %12.0f %8.2f\n", o.name.c_str(),
                o.timing.area_ge, v->timing.area_ge,
                o.timing.area_ge / v->timing.area_ge);
  }
  std::printf("%-16s %12.0f %12.0f %8.2f\n", "TOTAL", osss.total_area_ge,
              vhdl.total_area_ge, osss.total_area_ge / vhdl.total_area_ge);

  // Netlist-equivalence backing: event-driven vs bit-parallel engine on
  // the same netlist, per flow component.  Lowering runs serially (synthesis
  // naming is call-order dependent); the checks fan out across the pool,
  // each with an explicit per-component seed so the sweep is reproducible
  // regardless of thread count or completion order.
  std::printf("\ncross-engine netlist verification (event vs 64-lane "
              "bit-parallel):\n");
  struct Item {
    const char* flow;
    std::string name;
    osss::gate::Netlist nl;
    std::uint64_t seed;
  };
  std::vector<Item> items;
  std::uint64_t seed = 1;
  for (const auto& c : build_osss_flow())
    items.push_back({"OSSS", c.name, osss::gate::lower_to_gates(c.module),
                     seed++});
  for (const auto& c : build_vhdl_flow())
    items.push_back({"VHDL", c.name, osss::gate::lower_to_gates(c.module),
                     seed++});

  osss::gate::EquivOptions opt;
  opt.sequences = 2;
  opt.cycles = 128;
  opt.mode_a = osss::gate::SimMode::kEvent;
  opt.mode_b = osss::gate::SimMode::kBitParallel;
  const std::vector<osss::gate::EquivResult> results =
      osss::par::Pool::global().parallel_map<osss::gate::EquivResult>(
          items.size(), [&](std::size_t i) {
            osss::gate::EquivOptions o = opt;
            o.seed = items[i].seed;
            o.threads = 1;  // the component sweep is the parallel axis
            return osss::gate::check_equivalence(items[i].nl, items[i].nl, o);
          });

  bool all_ok = true;
  std::uint64_t total_vectors = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& r = results[i];
    total_vectors += r.cycles_checked;
    all_ok = all_ok && static_cast<bool>(r);
    std::printf("  %-6s %-16s %s (%llu vectors)\n", items[i].flow,
                items[i].name.c_str(),
                r ? "agree" : r.counterexample.c_str(),
                static_cast<unsigned long long>(r.cycles_checked));
  }
  std::printf("engines %s over %llu random vectors (%u pool contexts)\n",
              all_ok ? "agree" : "DISAGREE",
              static_cast<unsigned long long>(total_vectors),
              osss::par::Pool::global().size());

  std::printf(
      "\npaper: \"almost equivalent\" -> reproduced ratio %.2f "
      "(overhead concentrated in behavioral control logic)\n",
      osss.total_area_ge / vhdl.total_area_ge);
  return all_ok ? 0 : 1;
}
