// R1 — "If we compare the required area of a synthesized ExpoCU netlist in
// a conventional and an OSSS approach, they are almost equivalent." (§12)
//
// Synthesizes every ExpoCU component through both flows and prints the
// per-component and total mapped area.  The area numbers are then backed
// functionally: every mapped netlist is re-simulated under random vectors
// with the event-driven engine on one side and the 64-lane bit-parallel
// engine on the other (gate::check_equivalence with mixed modes) — the
// engines must agree on every output of every cycle, so the netlists the
// table measures are known-good under two independent evaluators.

#include <cstdio>

#include "expocu/flows.hpp"
#include "gate/equiv.hpp"
#include "gate/lower.hpp"

int main() {
  using namespace osss::expocu;
  const auto lib = osss::gate::Library::generic();
  const FlowReport osss = synthesize_flow(build_osss_flow(), lib);
  const FlowReport vhdl = synthesize_flow(build_vhdl_flow(), lib);

  std::printf("R1: ExpoCU netlist area, OSSS flow vs conventional (VHDL) flow\n");
  std::printf("%-16s %12s %12s %8s\n", "component", "OSSS [GE]", "VHDL [GE]",
              "ratio");
  for (const auto& o : osss.components) {
    const auto* v = vhdl.find(o.name);
    std::printf("%-16s %12.0f %12.0f %8.2f\n", o.name.c_str(),
                o.timing.area_ge, v->timing.area_ge,
                o.timing.area_ge / v->timing.area_ge);
  }
  std::printf("%-16s %12.0f %12.0f %8.2f\n", "TOTAL", osss.total_area_ge,
              vhdl.total_area_ge, osss.total_area_ge / vhdl.total_area_ge);

  // Netlist-equivalence backing: event-driven vs bit-parallel engine on
  // the same netlist, per flow component.
  std::printf("\ncross-engine netlist verification (event vs 64-lane "
              "bit-parallel):\n");
  bool all_ok = true;
  std::uint64_t total_vectors = 0;
  osss::gate::EquivOptions opt;
  opt.sequences = 2;
  opt.cycles = 128;
  opt.mode_a = osss::gate::SimMode::kEvent;
  opt.mode_b = osss::gate::SimMode::kBitParallel;
  auto verify = [&](const char* flow, const FlowComponent& c,
                    std::uint64_t seed) {
    opt.seed = seed;
    const osss::gate::Netlist nl = osss::gate::lower_to_gates(c.module);
    const auto r = osss::gate::check_equivalence(nl, nl, opt);
    total_vectors += r.cycles_checked;
    all_ok = all_ok && static_cast<bool>(r);
    std::printf("  %-6s %-16s %s (%llu vectors)\n", flow, c.name.c_str(),
                r ? "agree" : r.counterexample.c_str(),
                static_cast<unsigned long long>(r.cycles_checked));
  };
  std::uint64_t seed = 1;
  for (const auto& c : build_osss_flow()) verify("OSSS", c, seed++);
  for (const auto& c : build_vhdl_flow()) verify("VHDL", c, seed++);
  std::printf("engines %s over %llu random vectors\n",
              all_ok ? "agree" : "DISAGREE",
              static_cast<unsigned long long>(total_vectors));

  std::printf(
      "\npaper: \"almost equivalent\" -> reproduced ratio %.2f "
      "(overhead concentrated in behavioral control logic)\n",
      osss.total_area_ge / vhdl.total_area_ge);
  return all_ok ? 0 : 1;
}
