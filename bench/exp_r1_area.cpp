// R1 — "If we compare the required area of a synthesized ExpoCU netlist in
// a conventional and an OSSS approach, they are almost equivalent." (§12)
//
// Synthesizes every ExpoCU component through both flows and prints the
// per-component and total mapped area.

#include <cstdio>

#include "expocu/flows.hpp"

int main() {
  using namespace osss::expocu;
  const auto lib = osss::gate::Library::generic();
  const FlowReport osss = synthesize_flow(build_osss_flow(), lib);
  const FlowReport vhdl = synthesize_flow(build_vhdl_flow(), lib);

  std::printf("R1: ExpoCU netlist area, OSSS flow vs conventional (VHDL) flow\n");
  std::printf("%-16s %12s %12s %8s\n", "component", "OSSS [GE]", "VHDL [GE]",
              "ratio");
  for (const auto& o : osss.components) {
    const auto* v = vhdl.find(o.name);
    std::printf("%-16s %12.0f %12.0f %8.2f\n", o.name.c_str(),
                o.timing.area_ge, v->timing.area_ge,
                o.timing.area_ge / v->timing.area_ge);
  }
  std::printf("%-16s %12.0f %12.0f %8.2f\n", "TOTAL", osss.total_area_ge,
              vhdl.total_area_ge, osss.total_area_ge / vhdl.total_area_ge);
  std::printf(
      "\npaper: \"almost equivalent\" -> reproduced ratio %.2f "
      "(overhead concentrated in behavioral control logic)\n",
      osss.total_area_ge / vhdl.total_area_ge);
  return 0;
}
