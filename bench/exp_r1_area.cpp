// R1 — "If we compare the required area of a synthesized ExpoCU netlist in
// a conventional and an OSSS approach, they are almost equivalent." (§12)
//
// Synthesizes every ExpoCU component through both flows and prints the
// per-component mapped area BEFORE and AFTER the optimization pipeline
// (opt::optimize: rewrite -> satsweep -> retime -> techmap to a fixpoint) —
// the paper's claim is about relative area, and it must survive real logic
// optimization, not just naive lowering.  The area numbers are backed
// functionally: every optimized netlist is checked against its unoptimized
// source with gate::check_equivalence, the event-driven engine simulating
// one side and the 64-lane bit-parallel engine the other — so the table
// measures netlists that two independent evaluators agree are the same
// machine.

#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "expocu/flows.hpp"
#include "gate/equiv.hpp"
#include "gate/lower.hpp"
#include "gate/timing.hpp"
#include "lint/dataflow.hpp"
#include "opt/opt.hpp"
#include "par/pool.hpp"

namespace {

struct Item {
  const char* flow;
  std::string name;
  osss::gate::Netlist pre;
  osss::gate::Netlist post;
  std::uint64_t seed = 0;
};

double reduction_pct(double before, double after) {
  return before > 0 ? 100.0 * (before - after) / before : 0.0;
}

}  // namespace

int main() {
  using namespace osss::expocu;
  const auto lib = osss::gate::Library::generic();

  // Lowering and optimization run serially (synthesis naming is call-order
  // dependent); the equivalence checks fan out across the pool below.
  osss::opt::PipelineOptions po;
  po.lib = &lib;
  // Per-component SDC facts from the RTL-level abstract interpreter: the
  // satsweep pass re-proves each register-bit constant by netlist induction
  // before seeding its merge classes with it.
  const auto facts_of = [](const osss::rtl::Module& m) {
    return std::make_shared<const std::unordered_map<std::string, bool>>(
        osss::lint::analyze_dataflow(m).const_reg_bits());
  };
  std::vector<Item> items;
  std::uint64_t seed = 1;
  for (const auto& c : build_osss_flow()) {
    osss::gate::Netlist pre = osss::gate::lower_to_gates(c.module);
    po.facts = facts_of(c.module);
    osss::gate::Netlist post = osss::opt::optimize(pre, po);
    items.push_back({"OSSS", c.name, std::move(pre), std::move(post), seed++});
  }
  for (const auto& c : build_vhdl_flow()) {
    osss::gate::Netlist pre = osss::gate::lower_to_gates(c.module);
    po.facts = facts_of(c.module);
    osss::gate::Netlist post = osss::opt::optimize(pre, po);
    items.push_back({"VHDL", c.name, std::move(pre), std::move(post), seed++});
  }

  std::printf("R1: ExpoCU netlist area, OSSS flow vs conventional (VHDL) "
              "flow, pre/post optimization\n");
  std::printf("%-6s %-16s %10s %10s %7s\n", "flow", "component", "pre [GE]",
              "post [GE]", "red%");
  double pre_total[2] = {0, 0}, post_total[2] = {0, 0};
  for (const auto& it : items) {
    const double pre = lib.area_of(it.pre);
    const double post = lib.area_of(it.post);
    const int f = it.flow[0] == 'O' ? 0 : 1;
    pre_total[f] += pre;
    post_total[f] += post;
    std::printf("%-6s %-16s %10.1f %10.1f %6.1f%%\n", it.flow,
                it.name.c_str(), pre, post, reduction_pct(pre, post));
  }
  std::printf("%-6s %-16s %10.1f %10.1f %6.1f%%\n", "OSSS", "TOTAL",
              pre_total[0], post_total[0],
              reduction_pct(pre_total[0], post_total[0]));
  std::printf("%-6s %-16s %10.1f %10.1f %6.1f%%\n", "VHDL", "TOTAL",
              pre_total[1], post_total[1],
              reduction_pct(pre_total[1], post_total[1]));
  std::printf("\narea ratio OSSS/VHDL: pre %.2f, post %.2f\n",
              pre_total[0] / pre_total[1], post_total[0] / post_total[1]);

  // Equivalence backing: pre-opt vs post-opt netlist per component, the
  // event-driven engine on one side and the bit-parallel engine on the
  // other.  Each check carries an explicit per-component seed so the sweep
  // is reproducible regardless of thread count or completion order.
  std::printf("\npre/post-optimization equivalence (event vs 64-lane "
              "bit-parallel):\n");
  osss::gate::EquivOptions opt;
  opt.sequences = 2;
  opt.cycles = 128;
  opt.mode_a = osss::gate::SimMode::kEvent;
  opt.mode_b = osss::gate::SimMode::kBitParallel;
  const std::vector<osss::gate::EquivResult> results =
      osss::par::Pool::global().parallel_map<osss::gate::EquivResult>(
          items.size(), [&](std::size_t i) {
            osss::gate::EquivOptions o = opt;
            o.seed = items[i].seed;
            o.threads = 1;  // the component sweep is the parallel axis
            return osss::gate::check_equivalence(items[i].pre, items[i].post,
                                                 o);
          });

  bool all_ok = true;
  std::uint64_t total_vectors = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& r = results[i];
    total_vectors += r.cycles_checked;
    all_ok = all_ok && static_cast<bool>(r);
    std::printf("  %-6s %-16s %s (%llu vectors)\n", items[i].flow,
                items[i].name.c_str(),
                r ? "agree" : r.counterexample.c_str(),
                static_cast<unsigned long long>(r.cycles_checked));
  }
  std::printf("engines %s over %llu random vectors (%u pool contexts)\n",
              all_ok ? "agree" : "DISAGREE",
              static_cast<unsigned long long>(total_vectors),
              osss::par::Pool::global().size());

  std::printf(
      "\npaper: \"almost equivalent\" -> reproduced ratio %.2f pre-opt, "
      "%.2f post-opt (overhead concentrated in behavioral control logic, "
      "and optimization narrows it)\n",
      pre_total[0] / pre_total[1], post_total[0] / post_total[1]);
  return all_ok ? 0 : 1;
}
