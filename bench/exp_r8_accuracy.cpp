// R8 — "What we found out is that the behavior on every stage is bit and
// cycle accurate and fully complies with its original description." (§12)
//
// Randomized lockstep co-simulation of every behavioural ExpoCU component
// across all three representations (behavioural interpreter, synthesized
// RTL, mapped gate netlist), counting output mismatches per cycle.  The
// paper's claim reproduces as zero mismatches everywhere.

#include <cstdio>
#include <random>

#include "expocu/hw.hpp"
#include "gate/lower.hpp"
#include "gate/sim.hpp"
#include "hls/interp.hpp"
#include "hls/synth.hpp"
#include "rtl/sim.hpp"

using namespace osss;
using namespace osss::expocu;

namespace {

struct Result {
  std::uint64_t cycles = 0;
  std::uint64_t checks = 0;
  std::uint64_t rtl_mismatches = 0;
  std::uint64_t gate_mismatches = 0;
};

Result cosimulate(const hls::Behavior& beh, unsigned cycles, unsigned seed) {
  hls::Interpreter interp(beh);
  const rtl::Module m = hls::synthesize(beh);
  rtl::Simulator rsim(m);
  gate::Simulator gsim(gate::lower_to_gates(m));
  std::vector<std::string> outputs;
  for (const hls::VarDecl& v : beh.vars)
    if (v.is_output) outputs.push_back(v.name);

  Result r;
  std::mt19937_64 rng(seed);
  for (unsigned c = 0; c < cycles; ++c) {
    for (const hls::InputDecl& in : beh.inputs) {
      meta::Bits v(in.width);
      for (unsigned i = 0; i < in.width; ++i)
        v.set_bit(i, (rng() & 1) != 0);
      interp.set_input(in.name, v);
      rsim.set_input(in.name, v);
      gsim.set_input(in.name, v);
    }
    for (const std::string& out : outputs) {
      ++r.checks;
      if (!(interp.var(out) == rsim.output(out))) ++r.rtl_mismatches;
      if (!(interp.var(out) == gsim.output(out))) ++r.gate_mismatches;
    }
    interp.step();
    rsim.step();
    gsim.step();
    ++r.cycles;
  }
  return r;
}

}  // namespace

int main() {
  std::printf("R8: bit/cycle accuracy across representation levels\n");
  std::printf("%-16s %8s %8s %14s %14s\n", "component", "cycles", "checks",
              "rtl mismatch", "gate mismatch");
  std::uint64_t total_bad = 0;
  const std::pair<const char*, hls::Behavior> designs[] = {
      {"camera_sync", build_camera_sync_osss()},
      {"threshold_calc", build_threshold_osss()},
      {"param_calc", build_param_calc_osss()},
      {"i2c_master", build_i2c_master_osss()},
      {"i2c_master_sc", build_i2c_master_systemc()},
      {"reset_ctrl", build_reset_ctrl_osss()},
  };
  unsigned seed = 1000;
  for (const auto& [name, beh] : designs) {
    const Result r = cosimulate(beh, 2000, seed++);
    std::printf("%-16s %8llu %8llu %14llu %14llu\n", name,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.checks),
                static_cast<unsigned long long>(r.rtl_mismatches),
                static_cast<unsigned long long>(r.gate_mismatches));
    total_bad += r.rtl_mismatches + r.gate_mismatches;
  }
  std::printf("\npaper: bit- and cycle-accurate at every stage -> %s\n",
              total_bad == 0 ? "reproduced (0 mismatches)"
                             : "VIOLATED");
  return total_bad == 0 ? 0 : 1;
}
