// R8 — "What we found out is that the behavior on every stage is bit and
// cycle accurate and fully complies with its original description." (§12)
//
// Randomized lockstep co-simulation of every behavioural ExpoCU component
// across all three representations (behavioural interpreter, synthesized
// RTL, mapped gate netlist) using the unified verify::CoSim scoreboard.
// Beyond the paper's mismatch count (which must be zero), the run now
// reports what the random stimulus actually exercised: FSM state and
// transition coverage on the behavioural controller and net toggle
// coverage on the gate netlist.  The run fails if any component scores
// below 90% FSM-state coverage or shows zero net toggles — a silent
// stimulus would make the zero-mismatch claim vacuous.

#include <cstdio>
#include <memory>

#include "expocu/hw.hpp"
#include "gate/lower.hpp"
#include "hls/synth.hpp"
#include "verify/cosim.hpp"
#include "verify/stimgen.hpp"

using namespace osss;
using namespace osss::expocu;

namespace {

struct Row {
  verify::RunResult run;
  double fsm_state_pct = 0;
  std::uint64_t transitions = 0;
  unsigned transition_total = 0;
  double toggle_pct = 0;
  std::uint64_t toggled = 0;
};

Row cosimulate(const char* name, const hls::Behavior& beh, unsigned cycles,
               std::uint64_t seed) {
  hls::Report report;
  rtl::Module m = hls::synthesize(beh, {}, &report);

  verify::CoSim cs;
  auto& interp =
      cs.add(std::make_unique<verify::InterpModel>(beh));
  interp.enable_fsm_coverage(report.transitions);
  cs.add(std::make_unique<verify::RtlModel>(std::move(m)));
  auto& gate_model = cs.add(std::make_unique<verify::GateModel>(
      gate::lower_to_gates(hls::synthesize(beh)), gate::SimMode::kLevelized,
      "gate"));
  gate_model.enable_toggle_coverage();
  cs.declare_io(beh);
  cs.enable_coverage();

  // Mix of stimulus shapes: control inputs benefit from sticky bursts and
  // corner values, not just white noise — that is what drives the FSMs
  // through their multi-cycle sequences.
  verify::StimGen gen(verify::StimGen::derive(seed, name));
  for (const verify::IoDecl& in : cs.inputs()) {
    verify::StimConstraint c;
    c.kind = in.width == 1 ? verify::StimKind::kSticky
                           : verify::StimKind::kCorner;
    gen.declare(in.name, in.width, c);
  }

  Row row;
  row.run = cs.run(gen, cycles);
  if (const verify::CoverageItem* it =
          row.run.coverage.find("interp", "fsm-state"))
    row.fsm_state_pct = it->percent();
  if (const verify::CoverageItem* it =
          row.run.coverage.find("interp", "fsm-transition")) {
    row.transitions = it->covered;
    row.transition_total = static_cast<unsigned>(it->total);
  }
  if (const verify::CoverageItem* it =
          row.run.coverage.find("gate", "net-toggle")) {
    row.toggle_pct = it->percent();
    row.toggled = it->covered;
  }
  return row;
}

}  // namespace

int main() {
  std::printf("R8: bit/cycle accuracy across representation levels\n");
  std::printf("    (verify::CoSim scoreboard: interp vs RTL vs gate)\n");
  std::printf("%-16s %7s %8s %9s %9s %11s %9s\n", "component", "cycles",
              "checks", "mismatch", "fsm-state", "transitions", "toggle");
  std::uint64_t total_bad = 0;
  bool coverage_ok = true;
  const std::pair<const char*, hls::Behavior> designs[] = {
      {"camera_sync", build_camera_sync_osss()},
      {"threshold_calc", build_threshold_osss()},
      {"param_calc", build_param_calc_osss()},
      {"i2c_master", build_i2c_master_osss()},
      {"i2c_master_sc", build_i2c_master_systemc()},
      {"reset_ctrl", build_reset_ctrl_osss()},
  };
  const std::uint64_t seed = verify::env_seed(1000);
  for (const auto& [name, beh] : designs) {
    const Row row = cosimulate(name, beh, 2000, seed);
    const std::uint64_t bad = row.run.ok ? 0 : 1;
    std::printf("%-16s %7llu %8llu %9llu %8.1f%% %6llu/%-4u %8.1f%%\n", name,
                static_cast<unsigned long long>(row.run.cycles),
                static_cast<unsigned long long>(row.run.checks),
                static_cast<unsigned long long>(bad), row.fsm_state_pct,
                static_cast<unsigned long long>(row.transitions),
                row.transition_total, row.toggle_pct);
    if (!row.run.ok) {
      std::printf("  MISMATCH: %s (seed %llu)\n",
                  row.run.mismatch.describe({}, false).c_str(),
                  static_cast<unsigned long long>(seed));
      ++total_bad;
    }
    if (row.fsm_state_pct < 90.0 || row.toggled == 0) {
      std::printf("  COVERAGE FLOOR VIOLATED (need >=90%% fsm-state, >0 "
                  "toggled nets; seed %llu)\n",
                  static_cast<unsigned long long>(seed));
      coverage_ok = false;
    }
  }
  std::printf("\npaper: bit- and cycle-accurate at every stage -> %s\n",
              total_bad == 0 ? "reproduced (0 mismatches)" : "VIOLATED");
  std::printf("stimulus quality: %s\n",
              coverage_ok ? "coverage floors met (>=90% fsm-state, "
                            "nonzero toggle on every component)"
                          : "COVERAGE FLOOR VIOLATED");
  return total_bad == 0 && coverage_ok ? 0 : 1;
}
