// R8 — "What we found out is that the behavior on every stage is bit and
// cycle accurate and fully complies with its original description." (§12)
//
// Randomized lockstep co-simulation of every behavioural ExpoCU component
// across all three representations (behavioural interpreter, synthesized
// RTL, mapped gate netlist) using the unified verify::CoSim scoreboard.
// Beyond the paper's mismatch count (which must be zero), the run now
// reports what the random stimulus actually exercised: FSM state and
// transition coverage on the behavioural controller and net toggle
// coverage on the gate netlist.  The run fails if any component scores
// below 90% FSM-state coverage or shows zero net toggles — a silent
// stimulus would make the zero-mismatch claim vacuous.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "expocu/hw.hpp"
#include "gate/lower.hpp"
#include "hls/synth.hpp"
#include "par/pool.hpp"
#include "verify/cosim.hpp"
#include "verify/parallel.hpp"
#include "verify/stimgen.hpp"

using namespace osss;
using namespace osss::expocu;

namespace {

struct Row {
  verify::RunResult run;
  double fsm_state_pct = 0;
  std::uint64_t transitions = 0;
  unsigned transition_total = 0;
  double toggle_pct = 0;
  std::uint64_t toggled = 0;
};

// The R8 stimulus mix: sticky bursts on control bits, corner-biased values
// on wider buses (shared by the serial table and the sharded campaigns).
void declare_r8_stimulus(verify::CoSim& cs, verify::StimGen& gen) {
  for (const verify::IoDecl& in : cs.inputs()) {
    verify::StimConstraint c;
    c.kind = in.width == 1 ? verify::StimKind::kSticky
                           : verify::StimKind::kCorner;
    gen.declare(in.name, in.width, c);
  }
}

/// Fresh three-model co-sim of `beh` (interp reference + RTL + gate) with
/// coverage enabled — the factory handed to parallel_fuzz.
std::unique_ptr<verify::CoSim> make_cosim(const hls::Behavior& beh) {
  auto cs = std::make_unique<verify::CoSim>();
  hls::Report report;
  rtl::Module m = hls::synthesize(beh, {}, &report);
  auto& interp = cs->add(std::make_unique<verify::InterpModel>(beh));
  interp.enable_fsm_coverage(report.transitions);
  cs->add(std::make_unique<verify::RtlModel>(std::move(m)));
  auto& gate_model = cs->add(std::make_unique<verify::GateModel>(
      gate::lower_to_gates(hls::synthesize(beh)), gate::SimMode::kLevelized,
      "gate"));
  gate_model.enable_toggle_coverage();
  cs->declare_io(beh);
  cs->enable_coverage();
  return cs;
}

Row cosimulate(const char* name, const hls::Behavior& beh, unsigned cycles,
               std::uint64_t seed) {
  const std::unique_ptr<verify::CoSim> cs = make_cosim(beh);

  // Mix of stimulus shapes: control inputs benefit from sticky bursts and
  // corner values, not just white noise — that is what drives the FSMs
  // through their multi-cycle sequences.
  verify::StimGen gen(verify::StimGen::derive(seed, name));
  declare_r8_stimulus(*cs, gen);

  Row row;
  row.run = cs->run(gen, cycles);
  if (const verify::CoverageItem* it =
          row.run.coverage.find("interp", "fsm-state"))
    row.fsm_state_pct = it->percent();
  if (const verify::CoverageItem* it =
          row.run.coverage.find("interp", "fsm-transition")) {
    row.transitions = it->covered;
    row.transition_total = static_cast<unsigned>(it->total);
  }
  if (const verify::CoverageItem* it =
          row.run.coverage.find("gate", "net-toggle")) {
    row.toggle_pct = it->percent();
    row.toggled = it->covered;
  }
  return row;
}

}  // namespace

int main() {
  std::printf("R8: bit/cycle accuracy across representation levels\n");
  std::printf("    (verify::CoSim scoreboard: interp vs RTL vs gate)\n");
  std::printf("%-16s %7s %8s %9s %9s %11s %9s\n", "component", "cycles",
              "checks", "mismatch", "fsm-state", "transitions", "toggle");
  std::uint64_t total_bad = 0;
  bool coverage_ok = true;
  const std::pair<const char*, hls::Behavior> designs[] = {
      {"camera_sync", build_camera_sync_osss()},
      {"threshold_calc", build_threshold_osss()},
      {"param_calc", build_param_calc_osss()},
      {"i2c_master", build_i2c_master_osss()},
      {"i2c_master_sc", build_i2c_master_systemc()},
      {"reset_ctrl", build_reset_ctrl_osss()},
  };
  const std::uint64_t seed = verify::env_seed(1000);
  for (const auto& [name, beh] : designs) {
    const Row row = cosimulate(name, beh, 2000, seed);
    const std::uint64_t bad = row.run.ok ? 0 : 1;
    std::printf("%-16s %7llu %8llu %9llu %8.1f%% %6llu/%-4u %8.1f%%\n", name,
                static_cast<unsigned long long>(row.run.cycles),
                static_cast<unsigned long long>(row.run.checks),
                static_cast<unsigned long long>(bad), row.fsm_state_pct,
                static_cast<unsigned long long>(row.transitions),
                row.transition_total, row.toggle_pct);
    if (!row.run.ok) {
      std::printf("  MISMATCH: %s (seed %llu)\n",
                  row.run.mismatch.describe({}, false).c_str(),
                  static_cast<unsigned long long>(seed));
      ++total_bad;
    }
    if (row.fsm_state_pct < 90.0 || row.toggled == 0) {
      std::printf("  COVERAGE FLOOR VIOLATED (need >=90%% fsm-state, >0 "
                  "toggled nets; seed %llu)\n",
                  static_cast<unsigned long long>(seed));
      coverage_ok = false;
    }
  }
  std::printf("\npaper: bit- and cycle-accurate at every stage -> %s\n",
              total_bad == 0 ? "reproduced (0 mismatches)" : "VIOLATED");
  std::printf("stimulus quality: %s\n",
              coverage_ok ? "coverage floors met (>=90% fsm-state, "
                            "nonzero toggle on every component)"
                          : "COVERAGE FLOOR VIOLATED");

  // Sharded fuzz throughput: the same components as an 8-shard campaign on
  // the work-stealing pool.  Results (mismatches, coverage) are
  // bit-identical for any OSSS_THREADS; only kvec/s moves.
  osss::par::Pool& pool = osss::par::Pool::global();
  std::printf("\nsharded fuzz campaigns (8 shards x 250 cycles, %u pool "
              "contexts):\n",
              pool.size());
  std::printf("%-16s %8s %9s %9s %9s %8s %9s\n", "component", "vectors",
              "checks", "kvec/s", "fsm-state", "failures", "rec-bytes");
  std::uint64_t fuzz_bad = 0;
  for (const auto& [name, beh] : designs) {
    const hls::Behavior* bp = &beh;
    verify::ShardOptions sopt;
    sopt.seed = verify::StimGen::derive(seed, std::string(name) + "/sharded");
    sopt.shards = 8;
    sopt.cycles = 250;
    sopt.pool = &pool;
    sopt.declare = declare_r8_stimulus;
    const auto t0 = std::chrono::steady_clock::now();
    const verify::ShardedRunResult r =
        verify::parallel_fuzz([bp] { return make_cosim(*bp); }, sopt);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    double fsm_pct = 0;
    if (const verify::CoverageItem* it = r.coverage.find("interp", "fsm-state"))
      fsm_pct = it->percent();
    std::printf("%-16s %8llu %9llu %9.0f %8.1f%% %8zu %9llu\n", name,
                static_cast<unsigned long long>(r.vectors),
                static_cast<unsigned long long>(r.checks),
                secs > 0 ? static_cast<double>(r.vectors) / secs / 1000.0 : 0,
                fsm_pct, r.failures.size(),
                static_cast<unsigned long long>(r.recorder_bytes));
    if (const verify::ShardFailure* f = r.first_failure()) {
      std::printf("  SHARD MISMATCH: %s (campaign seed %llu, shard seed "
                  "%llu)\n",
                  f->mismatch.describe(f->trace.inputs, true).c_str(),
                  static_cast<unsigned long long>(sopt.seed),
                  static_cast<unsigned long long>(f->seed));
      fuzz_bad += r.failures.size();
    }
  }
  std::printf("sharded campaigns: %s\n",
              fuzz_bad == 0 ? "0 mismatches (deterministic across "
                              "OSSS_THREADS)"
                            : "MISMATCHES FOUND");
  return total_bad == 0 && coverage_ok && fuzz_bad == 0 ? 0 : 1;
}
