// R5 — "In case of polymorphism, multiplexers are being inserted to select
// the function and object ... if described in conventional approach, logic
// would have to be added anyway." (§8)
//
// Synthesizes the §6 polymorphic ALU for a growing number of variants and
// compares against a manually multiplexed implementation of the same
// functionality.  The polymorphism cost must track the manual mux cost.

#include <cstdio>
#include <memory>

#include "gate/lower.hpp"
#include "gate/timing.hpp"
#include "synth/polymorphic_synth.hpp"

using namespace osss;

namespace {

constexpr unsigned W = 8;

meta::ClassPtr alu_base() {
  auto base = std::make_shared<meta::ClassDesc>("AluOp");
  base->add_member("result", W);
  meta::MethodDesc exec;
  exec.name = "Execute";
  exec.params = {{"a", W}, {"b", W}};
  exec.return_width = W;
  exec.is_virtual = true;
  exec.body = {meta::return_stmt(meta::constant(W, 0))};
  base->add_method(std::move(exec));
  return base;
}

meta::ClassPtr alu_variant(const meta::ClassPtr& base, const char* name,
                           meta::BinOp op) {
  auto cls = std::make_shared<meta::ClassDesc>(name, base);
  meta::MethodDesc exec;
  exec.name = "Execute";
  exec.params = {{"a", W}, {"b", W}};
  exec.return_width = W;
  exec.is_virtual = true;
  exec.body = {meta::assign_member(
                   "result", meta::binary(op, meta::param("a", W),
                                          meta::param("b", W))),
               meta::return_stmt(meta::member("result", W))};
  cls->add_method(std::move(exec));
  return cls;
}

double poly_area(const synth::Hierarchy& h, const gate::Library& lib) {
  rtl::Builder b("poly");
  meta::RtlEmitter em(b);
  const rtl::Wire obj = b.input("obj", h.total_width());
  const rtl::Wire a = b.input("a", W);
  const rtl::Wire x = b.input("b", W);
  const auto call = synth::synthesize_virtual_call(em, h, "Execute", obj,
                                                   {a, x});
  b.output("obj_out", call.obj_out);
  b.output("r", call.ret);
  return lib.area_of(gate::lower_to_gates(b.take()));
}

double manual_area(unsigned n, const std::vector<meta::BinOp>& ops,
                   const gate::Library& lib) {
  rtl::Builder b("manual");
  const unsigned tw = n <= 2 ? 1 : (n <= 4 ? 2 : 3);
  const rtl::Wire obj = b.input("obj", tw + W);
  const rtl::Wire a = b.input("a", W);
  const rtl::Wire x = b.input("b", W);
  const rtl::Wire tag = b.slice(obj, tw + W - 1, W);
  rtl::Wire result = b.slice(obj, W - 1, 0);
  meta::RtlEmitter em(b);
  for (unsigned k = 0; k < n; ++k) {
    em.bind_param("a", a);
    em.bind_param("b", x);
    const rtl::Wire r = em.emit(
        meta::binary(ops[k], meta::param("a", W), meta::param("b", W)));
    result = b.mux(b.eq(tag, b.constant(tw, k)), r, result);
  }
  b.output("obj_out", b.concat({tag, result}));
  b.output("r", result);
  return lib.area_of(gate::lower_to_gates(b.take()));
}

}  // namespace

int main() {
  const auto lib = gate::Library::generic();
  const auto base = alu_base();
  const std::vector<std::pair<const char*, meta::BinOp>> all = {
      {"AluAdd", meta::BinOp::kAdd}, {"AluSub", meta::BinOp::kSub},
      {"AluAnd", meta::BinOp::kAnd}, {"AluXor", meta::BinOp::kXor},
      {"AluMul", meta::BinOp::kMul}};
  std::printf("R5: polymorphic dispatch cost vs manual multiplexing\n");
  std::printf("%8s %12s %12s %8s\n", "variants", "poly [GE]", "manual [GE]",
              "ratio");
  for (unsigned n = 1; n <= all.size(); ++n) {
    synth::Hierarchy h;
    h.base = base;
    std::vector<meta::BinOp> ops;
    for (unsigned k = 0; k < n; ++k) {
      h.variants.push_back(alu_variant(base, all[k].first, all[k].second));
      ops.push_back(all[k].second);
    }
    const double p = poly_area(h, lib);
    const double m = manual_area(n, ops, lib);
    std::printf("%8u %12.1f %12.1f %8.2f\n", n, p, m, p / m);
  }
  std::printf(
      "\npaper: overhead is the dispatch muxes, same as a manual design "
      "-> ratios near 1.0\n");
  return 0;
}
