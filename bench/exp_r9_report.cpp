// R9 — the Fig. 12 analogue: "screenshot of the synthesized main
// components that are connected on the top level of the ExpoCU".
//
// Prints the complete per-module synthesis inventory of the OSSS flow
// (FSM statistics from behavioral synthesis, gate counts, area, timing)
// plus the IP-integration variant of param_calc (Fig. 6's netlist-level
// VHDL IP path).

#include <cstdio>

#include "expocu/flows.hpp"
#include "gate/lower.hpp"

int main() {
  using namespace osss::expocu;
  const auto lib = osss::gate::Library::generic();
  const FlowReport flow = synthesize_flow(build_osss_flow(), lib);

  std::printf("R9: ExpoCU top level after OSSS synthesis (cf. paper Fig. 12)\n");
  std::printf("%-16s %6s %6s %6s %7s %8s %9s %8s\n", "module", "entry",
              "states", "regs", "gates", "dffs", "area[GE]", "fmax");
  for (const auto& c : flow.components) {
    std::printf("%-16s %6s %6u %6u %7zu %8zu %9.0f %7.1f\n", c.name.c_str(),
                c.behavioral ? "OSSS" : "RTL", c.hls_report.states,
                c.hls_report.register_bits, c.timing.gates, c.timing.dffs,
                c.timing.area_ge, c.timing.fmax_mhz);
  }
  std::printf("%-16s %6s %6s %6s %7s %8s %9.0f %7.1f\n", "TOTAL", "", "", "",
              "", "", flow.total_area_ge, flow.min_fmax_mhz);

  const osss::gate::Netlist with_ip = param_calc_vhdl_with_ip();
  const auto ip_timing = osss::gate::analyze_timing(with_ip, lib);
  std::printf(
      "\nVHDL-IP integration (Fig. 6): param_calc with the multiplier "
      "instantiated as a\npre-synthesized netlist macro: %zu gates, %.0f GE, "
      "fmax %.1f MHz\n",
      with_ip.gate_count(), ip_timing.area_ge, ip_timing.fmax_mhz);
  return 0;
}
