# Empty dependencies file for osss_tests.
# This may be replaced when dependencies are built.
