
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/expocu/camera_i2c_test.cpp" "tests/CMakeFiles/osss_tests.dir/expocu/camera_i2c_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/expocu/camera_i2c_test.cpp.o.d"
  "/root/repo/tests/expocu/flows_test.cpp" "tests/CMakeFiles/osss_tests.dir/expocu/flows_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/expocu/flows_test.cpp.o.d"
  "/root/repo/tests/expocu/hw_components_test.cpp" "tests/CMakeFiles/osss_tests.dir/expocu/hw_components_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/expocu/hw_components_test.cpp.o.d"
  "/root/repo/tests/expocu/i2c_masters_test.cpp" "tests/CMakeFiles/osss_tests.dir/expocu/i2c_masters_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/expocu/i2c_masters_test.cpp.o.d"
  "/root/repo/tests/expocu/sync_register_test.cpp" "tests/CMakeFiles/osss_tests.dir/expocu/sync_register_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/expocu/sync_register_test.cpp.o.d"
  "/root/repo/tests/gate/gatesim_test.cpp" "tests/CMakeFiles/osss_tests.dir/gate/gatesim_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/gate/gatesim_test.cpp.o.d"
  "/root/repo/tests/gate/lower_test.cpp" "tests/CMakeFiles/osss_tests.dir/gate/lower_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/gate/lower_test.cpp.o.d"
  "/root/repo/tests/gate/netlist_test.cpp" "tests/CMakeFiles/osss_tests.dir/gate/netlist_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/gate/netlist_test.cpp.o.d"
  "/root/repo/tests/gate/timing_test.cpp" "tests/CMakeFiles/osss_tests.dir/gate/timing_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/gate/timing_test.cpp.o.d"
  "/root/repo/tests/gate/verilog_equiv_test.cpp" "tests/CMakeFiles/osss_tests.dir/gate/verilog_equiv_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/gate/verilog_equiv_test.cpp.o.d"
  "/root/repo/tests/gate/vhdl_test.cpp" "tests/CMakeFiles/osss_tests.dir/gate/vhdl_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/gate/vhdl_test.cpp.o.d"
  "/root/repo/tests/hls/behavior_test.cpp" "tests/CMakeFiles/osss_tests.dir/hls/behavior_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/hls/behavior_test.cpp.o.d"
  "/root/repo/tests/hls/synth_test.cpp" "tests/CMakeFiles/osss_tests.dir/hls/synth_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/hls/synth_test.cpp.o.d"
  "/root/repo/tests/integration/closed_loop_test.cpp" "tests/CMakeFiles/osss_tests.dir/integration/closed_loop_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/integration/closed_loop_test.cpp.o.d"
  "/root/repo/tests/integration/fuzz_lowering_test.cpp" "tests/CMakeFiles/osss_tests.dir/integration/fuzz_lowering_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/integration/fuzz_lowering_test.cpp.o.d"
  "/root/repo/tests/integration/rtl_pipeline_test.cpp" "tests/CMakeFiles/osss_tests.dir/integration/rtl_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/integration/rtl_pipeline_test.cpp.o.d"
  "/root/repo/tests/meta/class_desc_test.cpp" "tests/CMakeFiles/osss_tests.dir/meta/class_desc_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/meta/class_desc_test.cpp.o.d"
  "/root/repo/tests/meta/emit_test.cpp" "tests/CMakeFiles/osss_tests.dir/meta/emit_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/meta/emit_test.cpp.o.d"
  "/root/repo/tests/meta/expr_test.cpp" "tests/CMakeFiles/osss_tests.dir/meta/expr_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/meta/expr_test.cpp.o.d"
  "/root/repo/tests/osss/fixed_test.cpp" "tests/CMakeFiles/osss_tests.dir/osss/fixed_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/osss/fixed_test.cpp.o.d"
  "/root/repo/tests/osss/polymorphic_test.cpp" "tests/CMakeFiles/osss_tests.dir/osss/polymorphic_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/osss/polymorphic_test.cpp.o.d"
  "/root/repo/tests/osss/shared_test.cpp" "tests/CMakeFiles/osss_tests.dir/osss/shared_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/osss/shared_test.cpp.o.d"
  "/root/repo/tests/rtl/builder_test.cpp" "tests/CMakeFiles/osss_tests.dir/rtl/builder_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/rtl/builder_test.cpp.o.d"
  "/root/repo/tests/rtl/sim_test.cpp" "tests/CMakeFiles/osss_tests.dir/rtl/sim_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/rtl/sim_test.cpp.o.d"
  "/root/repo/tests/synth/method_synth_test.cpp" "tests/CMakeFiles/osss_tests.dir/synth/method_synth_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/synth/method_synth_test.cpp.o.d"
  "/root/repo/tests/synth/module_emit_test.cpp" "tests/CMakeFiles/osss_tests.dir/synth/module_emit_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/synth/module_emit_test.cpp.o.d"
  "/root/repo/tests/synth/polymorphic_synth_test.cpp" "tests/CMakeFiles/osss_tests.dir/synth/polymorphic_synth_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/synth/polymorphic_synth_test.cpp.o.d"
  "/root/repo/tests/synth/shared_synth_test.cpp" "tests/CMakeFiles/osss_tests.dir/synth/shared_synth_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/synth/shared_synth_test.cpp.o.d"
  "/root/repo/tests/synth/systemc_emit_test.cpp" "tests/CMakeFiles/osss_tests.dir/synth/systemc_emit_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/synth/systemc_emit_test.cpp.o.d"
  "/root/repo/tests/sysc/bits_test.cpp" "tests/CMakeFiles/osss_tests.dir/sysc/bits_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/sysc/bits_test.cpp.o.d"
  "/root/repo/tests/sysc/bitvector_test.cpp" "tests/CMakeFiles/osss_tests.dir/sysc/bitvector_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/sysc/bitvector_test.cpp.o.d"
  "/root/repo/tests/sysc/kernel_test.cpp" "tests/CMakeFiles/osss_tests.dir/sysc/kernel_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/sysc/kernel_test.cpp.o.d"
  "/root/repo/tests/sysc/trace_test.cpp" "tests/CMakeFiles/osss_tests.dir/sysc/trace_test.cpp.o" "gcc" "tests/CMakeFiles/osss_tests.dir/sysc/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sysc/CMakeFiles/osss_sysc.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/osss_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/gate/CMakeFiles/osss_gate.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/osss_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/osss_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/osss_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/expocu/CMakeFiles/osss_expocu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
