file(REMOVE_RECURSE
  "CMakeFiles/exp_r8_accuracy.dir/exp_r8_accuracy.cpp.o"
  "CMakeFiles/exp_r8_accuracy.dir/exp_r8_accuracy.cpp.o.d"
  "exp_r8_accuracy"
  "exp_r8_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_r8_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
