# Empty dependencies file for exp_r8_accuracy.
# This may be replaced when dependencies are built.
