# Empty compiler generated dependencies file for exp_r6_shared_objects.
# This may be replaced when dependencies are built.
