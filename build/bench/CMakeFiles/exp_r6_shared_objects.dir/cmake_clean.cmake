file(REMOVE_RECURSE
  "CMakeFiles/exp_r6_shared_objects.dir/exp_r6_shared_objects.cpp.o"
  "CMakeFiles/exp_r6_shared_objects.dir/exp_r6_shared_objects.cpp.o.d"
  "exp_r6_shared_objects"
  "exp_r6_shared_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_r6_shared_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
