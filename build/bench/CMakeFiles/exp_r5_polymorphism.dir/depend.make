# Empty dependencies file for exp_r5_polymorphism.
# This may be replaced when dependencies are built.
