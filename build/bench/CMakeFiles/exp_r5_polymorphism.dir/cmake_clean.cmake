file(REMOVE_RECURSE
  "CMakeFiles/exp_r5_polymorphism.dir/exp_r5_polymorphism.cpp.o"
  "CMakeFiles/exp_r5_polymorphism.dir/exp_r5_polymorphism.cpp.o.d"
  "exp_r5_polymorphism"
  "exp_r5_polymorphism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_r5_polymorphism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
