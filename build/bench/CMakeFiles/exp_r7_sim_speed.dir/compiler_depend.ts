# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_r7_sim_speed.
