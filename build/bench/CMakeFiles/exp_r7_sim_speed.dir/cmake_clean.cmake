file(REMOVE_RECURSE
  "CMakeFiles/exp_r7_sim_speed.dir/exp_r7_sim_speed.cpp.o"
  "CMakeFiles/exp_r7_sim_speed.dir/exp_r7_sim_speed.cpp.o.d"
  "exp_r7_sim_speed"
  "exp_r7_sim_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_r7_sim_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
