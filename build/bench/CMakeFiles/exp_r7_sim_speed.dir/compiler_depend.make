# Empty compiler generated dependencies file for exp_r7_sim_speed.
# This may be replaced when dependencies are built.
