file(REMOVE_RECURSE
  "CMakeFiles/exp_r2_frequency.dir/exp_r2_frequency.cpp.o"
  "CMakeFiles/exp_r2_frequency.dir/exp_r2_frequency.cpp.o.d"
  "exp_r2_frequency"
  "exp_r2_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_r2_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
