
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp_r2_frequency.cpp" "bench/CMakeFiles/exp_r2_frequency.dir/exp_r2_frequency.cpp.o" "gcc" "bench/CMakeFiles/exp_r2_frequency.dir/exp_r2_frequency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expocu/CMakeFiles/osss_expocu.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/osss_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/osss_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/osss_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/gate/CMakeFiles/osss_gate.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/osss_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/sysc/CMakeFiles/osss_sysc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
