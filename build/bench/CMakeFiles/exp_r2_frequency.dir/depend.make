# Empty dependencies file for exp_r2_frequency.
# This may be replaced when dependencies are built.
