# Empty compiler generated dependencies file for exp_r4_zero_overhead.
# This may be replaced when dependencies are built.
