file(REMOVE_RECURSE
  "CMakeFiles/exp_r4_zero_overhead.dir/exp_r4_zero_overhead.cpp.o"
  "CMakeFiles/exp_r4_zero_overhead.dir/exp_r4_zero_overhead.cpp.o.d"
  "exp_r4_zero_overhead"
  "exp_r4_zero_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_r4_zero_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
