file(REMOVE_RECURSE
  "CMakeFiles/exp_r10_hls_ablation.dir/exp_r10_hls_ablation.cpp.o"
  "CMakeFiles/exp_r10_hls_ablation.dir/exp_r10_hls_ablation.cpp.o.d"
  "exp_r10_hls_ablation"
  "exp_r10_hls_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_r10_hls_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
