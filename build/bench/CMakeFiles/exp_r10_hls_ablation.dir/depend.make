# Empty dependencies file for exp_r10_hls_ablation.
# This may be replaced when dependencies are built.
