# Empty compiler generated dependencies file for exp_r1_area.
# This may be replaced when dependencies are built.
