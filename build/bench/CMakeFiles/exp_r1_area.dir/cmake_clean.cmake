file(REMOVE_RECURSE
  "CMakeFiles/exp_r1_area.dir/exp_r1_area.cpp.o"
  "CMakeFiles/exp_r1_area.dir/exp_r1_area.cpp.o.d"
  "exp_r1_area"
  "exp_r1_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_r1_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
