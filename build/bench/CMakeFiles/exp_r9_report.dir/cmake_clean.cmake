file(REMOVE_RECURSE
  "CMakeFiles/exp_r9_report.dir/exp_r9_report.cpp.o"
  "CMakeFiles/exp_r9_report.dir/exp_r9_report.cpp.o.d"
  "exp_r9_report"
  "exp_r9_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_r9_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
