# Empty dependencies file for exp_r9_report.
# This may be replaced when dependencies are built.
