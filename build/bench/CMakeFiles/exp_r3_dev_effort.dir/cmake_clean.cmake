file(REMOVE_RECURSE
  "CMakeFiles/exp_r3_dev_effort.dir/exp_r3_dev_effort.cpp.o"
  "CMakeFiles/exp_r3_dev_effort.dir/exp_r3_dev_effort.cpp.o.d"
  "exp_r3_dev_effort"
  "exp_r3_dev_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_r3_dev_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
