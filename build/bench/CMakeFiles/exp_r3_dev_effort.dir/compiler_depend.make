# Empty compiler generated dependencies file for exp_r3_dev_effort.
# This may be replaced when dependencies are built.
