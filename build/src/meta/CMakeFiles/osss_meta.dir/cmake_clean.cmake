file(REMOVE_RECURSE
  "CMakeFiles/osss_meta.dir/class_desc.cpp.o"
  "CMakeFiles/osss_meta.dir/class_desc.cpp.o.d"
  "CMakeFiles/osss_meta.dir/emit.cpp.o"
  "CMakeFiles/osss_meta.dir/emit.cpp.o.d"
  "CMakeFiles/osss_meta.dir/expr.cpp.o"
  "CMakeFiles/osss_meta.dir/expr.cpp.o.d"
  "libosss_meta.a"
  "libosss_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osss_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
