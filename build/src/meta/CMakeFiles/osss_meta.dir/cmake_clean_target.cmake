file(REMOVE_RECURSE
  "libosss_meta.a"
)
