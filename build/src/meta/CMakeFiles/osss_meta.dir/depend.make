# Empty dependencies file for osss_meta.
# This may be replaced when dependencies are built.
