
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meta/class_desc.cpp" "src/meta/CMakeFiles/osss_meta.dir/class_desc.cpp.o" "gcc" "src/meta/CMakeFiles/osss_meta.dir/class_desc.cpp.o.d"
  "/root/repo/src/meta/emit.cpp" "src/meta/CMakeFiles/osss_meta.dir/emit.cpp.o" "gcc" "src/meta/CMakeFiles/osss_meta.dir/emit.cpp.o.d"
  "/root/repo/src/meta/expr.cpp" "src/meta/CMakeFiles/osss_meta.dir/expr.cpp.o" "gcc" "src/meta/CMakeFiles/osss_meta.dir/expr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/osss_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/sysc/CMakeFiles/osss_sysc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
