file(REMOVE_RECURSE
  "libosss_rtl.a"
)
