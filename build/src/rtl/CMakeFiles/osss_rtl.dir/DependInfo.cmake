
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/builder.cpp" "src/rtl/CMakeFiles/osss_rtl.dir/builder.cpp.o" "gcc" "src/rtl/CMakeFiles/osss_rtl.dir/builder.cpp.o.d"
  "/root/repo/src/rtl/ir.cpp" "src/rtl/CMakeFiles/osss_rtl.dir/ir.cpp.o" "gcc" "src/rtl/CMakeFiles/osss_rtl.dir/ir.cpp.o.d"
  "/root/repo/src/rtl/sim.cpp" "src/rtl/CMakeFiles/osss_rtl.dir/sim.cpp.o" "gcc" "src/rtl/CMakeFiles/osss_rtl.dir/sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sysc/CMakeFiles/osss_sysc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
