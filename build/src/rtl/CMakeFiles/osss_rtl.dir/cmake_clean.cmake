file(REMOVE_RECURSE
  "CMakeFiles/osss_rtl.dir/builder.cpp.o"
  "CMakeFiles/osss_rtl.dir/builder.cpp.o.d"
  "CMakeFiles/osss_rtl.dir/ir.cpp.o"
  "CMakeFiles/osss_rtl.dir/ir.cpp.o.d"
  "CMakeFiles/osss_rtl.dir/sim.cpp.o"
  "CMakeFiles/osss_rtl.dir/sim.cpp.o.d"
  "libosss_rtl.a"
  "libosss_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osss_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
