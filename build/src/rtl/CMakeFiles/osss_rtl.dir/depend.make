# Empty dependencies file for osss_rtl.
# This may be replaced when dependencies are built.
