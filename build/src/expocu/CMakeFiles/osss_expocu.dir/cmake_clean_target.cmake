file(REMOVE_RECURSE
  "libosss_expocu.a"
)
