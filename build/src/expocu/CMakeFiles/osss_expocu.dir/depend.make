# Empty dependencies file for osss_expocu.
# This may be replaced when dependencies are built.
