file(REMOVE_RECURSE
  "CMakeFiles/osss_expocu.dir/camera_model.cpp.o"
  "CMakeFiles/osss_expocu.dir/camera_model.cpp.o.d"
  "CMakeFiles/osss_expocu.dir/camera_sync_hw.cpp.o"
  "CMakeFiles/osss_expocu.dir/camera_sync_hw.cpp.o.d"
  "CMakeFiles/osss_expocu.dir/expocu_sim.cpp.o"
  "CMakeFiles/osss_expocu.dir/expocu_sim.cpp.o.d"
  "CMakeFiles/osss_expocu.dir/flows.cpp.o"
  "CMakeFiles/osss_expocu.dir/flows.cpp.o.d"
  "CMakeFiles/osss_expocu.dir/histogram_hw.cpp.o"
  "CMakeFiles/osss_expocu.dir/histogram_hw.cpp.o.d"
  "CMakeFiles/osss_expocu.dir/i2c_bus.cpp.o"
  "CMakeFiles/osss_expocu.dir/i2c_bus.cpp.o.d"
  "CMakeFiles/osss_expocu.dir/i2c_master_osss.cpp.o"
  "CMakeFiles/osss_expocu.dir/i2c_master_osss.cpp.o.d"
  "CMakeFiles/osss_expocu.dir/i2c_master_systemc.cpp.o"
  "CMakeFiles/osss_expocu.dir/i2c_master_systemc.cpp.o.d"
  "CMakeFiles/osss_expocu.dir/i2c_master_vhdl.cpp.o"
  "CMakeFiles/osss_expocu.dir/i2c_master_vhdl.cpp.o.d"
  "CMakeFiles/osss_expocu.dir/param_calc_hw.cpp.o"
  "CMakeFiles/osss_expocu.dir/param_calc_hw.cpp.o.d"
  "CMakeFiles/osss_expocu.dir/reset_ctrl_hw.cpp.o"
  "CMakeFiles/osss_expocu.dir/reset_ctrl_hw.cpp.o.d"
  "CMakeFiles/osss_expocu.dir/threshold_hw.cpp.o"
  "CMakeFiles/osss_expocu.dir/threshold_hw.cpp.o.d"
  "libosss_expocu.a"
  "libosss_expocu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osss_expocu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
