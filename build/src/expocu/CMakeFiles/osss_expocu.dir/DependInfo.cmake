
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expocu/camera_model.cpp" "src/expocu/CMakeFiles/osss_expocu.dir/camera_model.cpp.o" "gcc" "src/expocu/CMakeFiles/osss_expocu.dir/camera_model.cpp.o.d"
  "/root/repo/src/expocu/camera_sync_hw.cpp" "src/expocu/CMakeFiles/osss_expocu.dir/camera_sync_hw.cpp.o" "gcc" "src/expocu/CMakeFiles/osss_expocu.dir/camera_sync_hw.cpp.o.d"
  "/root/repo/src/expocu/expocu_sim.cpp" "src/expocu/CMakeFiles/osss_expocu.dir/expocu_sim.cpp.o" "gcc" "src/expocu/CMakeFiles/osss_expocu.dir/expocu_sim.cpp.o.d"
  "/root/repo/src/expocu/flows.cpp" "src/expocu/CMakeFiles/osss_expocu.dir/flows.cpp.o" "gcc" "src/expocu/CMakeFiles/osss_expocu.dir/flows.cpp.o.d"
  "/root/repo/src/expocu/histogram_hw.cpp" "src/expocu/CMakeFiles/osss_expocu.dir/histogram_hw.cpp.o" "gcc" "src/expocu/CMakeFiles/osss_expocu.dir/histogram_hw.cpp.o.d"
  "/root/repo/src/expocu/i2c_bus.cpp" "src/expocu/CMakeFiles/osss_expocu.dir/i2c_bus.cpp.o" "gcc" "src/expocu/CMakeFiles/osss_expocu.dir/i2c_bus.cpp.o.d"
  "/root/repo/src/expocu/i2c_master_osss.cpp" "src/expocu/CMakeFiles/osss_expocu.dir/i2c_master_osss.cpp.o" "gcc" "src/expocu/CMakeFiles/osss_expocu.dir/i2c_master_osss.cpp.o.d"
  "/root/repo/src/expocu/i2c_master_systemc.cpp" "src/expocu/CMakeFiles/osss_expocu.dir/i2c_master_systemc.cpp.o" "gcc" "src/expocu/CMakeFiles/osss_expocu.dir/i2c_master_systemc.cpp.o.d"
  "/root/repo/src/expocu/i2c_master_vhdl.cpp" "src/expocu/CMakeFiles/osss_expocu.dir/i2c_master_vhdl.cpp.o" "gcc" "src/expocu/CMakeFiles/osss_expocu.dir/i2c_master_vhdl.cpp.o.d"
  "/root/repo/src/expocu/param_calc_hw.cpp" "src/expocu/CMakeFiles/osss_expocu.dir/param_calc_hw.cpp.o" "gcc" "src/expocu/CMakeFiles/osss_expocu.dir/param_calc_hw.cpp.o.d"
  "/root/repo/src/expocu/reset_ctrl_hw.cpp" "src/expocu/CMakeFiles/osss_expocu.dir/reset_ctrl_hw.cpp.o" "gcc" "src/expocu/CMakeFiles/osss_expocu.dir/reset_ctrl_hw.cpp.o.d"
  "/root/repo/src/expocu/threshold_hw.cpp" "src/expocu/CMakeFiles/osss_expocu.dir/threshold_hw.cpp.o" "gcc" "src/expocu/CMakeFiles/osss_expocu.dir/threshold_hw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sysc/CMakeFiles/osss_sysc.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/osss_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/osss_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/osss_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/gate/CMakeFiles/osss_gate.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/osss_rtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
