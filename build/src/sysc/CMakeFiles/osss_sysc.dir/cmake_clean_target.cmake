file(REMOVE_RECURSE
  "libosss_sysc.a"
)
