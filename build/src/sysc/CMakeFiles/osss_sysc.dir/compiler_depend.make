# Empty compiler generated dependencies file for osss_sysc.
# This may be replaced when dependencies are built.
