file(REMOVE_RECURSE
  "CMakeFiles/osss_sysc.dir/bits.cpp.o"
  "CMakeFiles/osss_sysc.dir/bits.cpp.o.d"
  "CMakeFiles/osss_sysc.dir/kernel.cpp.o"
  "CMakeFiles/osss_sysc.dir/kernel.cpp.o.d"
  "CMakeFiles/osss_sysc.dir/trace.cpp.o"
  "CMakeFiles/osss_sysc.dir/trace.cpp.o.d"
  "libosss_sysc.a"
  "libosss_sysc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osss_sysc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
