
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sysc/bits.cpp" "src/sysc/CMakeFiles/osss_sysc.dir/bits.cpp.o" "gcc" "src/sysc/CMakeFiles/osss_sysc.dir/bits.cpp.o.d"
  "/root/repo/src/sysc/kernel.cpp" "src/sysc/CMakeFiles/osss_sysc.dir/kernel.cpp.o" "gcc" "src/sysc/CMakeFiles/osss_sysc.dir/kernel.cpp.o.d"
  "/root/repo/src/sysc/trace.cpp" "src/sysc/CMakeFiles/osss_sysc.dir/trace.cpp.o" "gcc" "src/sysc/CMakeFiles/osss_sysc.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
