
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/method_synth.cpp" "src/synth/CMakeFiles/osss_synth.dir/method_synth.cpp.o" "gcc" "src/synth/CMakeFiles/osss_synth.dir/method_synth.cpp.o.d"
  "/root/repo/src/synth/polymorphic_synth.cpp" "src/synth/CMakeFiles/osss_synth.dir/polymorphic_synth.cpp.o" "gcc" "src/synth/CMakeFiles/osss_synth.dir/polymorphic_synth.cpp.o.d"
  "/root/repo/src/synth/shared_synth.cpp" "src/synth/CMakeFiles/osss_synth.dir/shared_synth.cpp.o" "gcc" "src/synth/CMakeFiles/osss_synth.dir/shared_synth.cpp.o.d"
  "/root/repo/src/synth/systemc_emit.cpp" "src/synth/CMakeFiles/osss_synth.dir/systemc_emit.cpp.o" "gcc" "src/synth/CMakeFiles/osss_synth.dir/systemc_emit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/meta/CMakeFiles/osss_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/osss_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/osss_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/sysc/CMakeFiles/osss_sysc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
