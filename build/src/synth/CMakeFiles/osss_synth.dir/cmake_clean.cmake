file(REMOVE_RECURSE
  "CMakeFiles/osss_synth.dir/method_synth.cpp.o"
  "CMakeFiles/osss_synth.dir/method_synth.cpp.o.d"
  "CMakeFiles/osss_synth.dir/polymorphic_synth.cpp.o"
  "CMakeFiles/osss_synth.dir/polymorphic_synth.cpp.o.d"
  "CMakeFiles/osss_synth.dir/shared_synth.cpp.o"
  "CMakeFiles/osss_synth.dir/shared_synth.cpp.o.d"
  "CMakeFiles/osss_synth.dir/systemc_emit.cpp.o"
  "CMakeFiles/osss_synth.dir/systemc_emit.cpp.o.d"
  "libosss_synth.a"
  "libosss_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osss_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
