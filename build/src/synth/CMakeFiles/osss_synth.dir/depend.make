# Empty dependencies file for osss_synth.
# This may be replaced when dependencies are built.
