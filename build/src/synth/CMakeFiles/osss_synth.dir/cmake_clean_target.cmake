file(REMOVE_RECURSE
  "libosss_synth.a"
)
