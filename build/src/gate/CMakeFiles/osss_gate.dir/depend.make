# Empty dependencies file for osss_gate.
# This may be replaced when dependencies are built.
