
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gate/equiv.cpp" "src/gate/CMakeFiles/osss_gate.dir/equiv.cpp.o" "gcc" "src/gate/CMakeFiles/osss_gate.dir/equiv.cpp.o.d"
  "/root/repo/src/gate/library.cpp" "src/gate/CMakeFiles/osss_gate.dir/library.cpp.o" "gcc" "src/gate/CMakeFiles/osss_gate.dir/library.cpp.o.d"
  "/root/repo/src/gate/lower.cpp" "src/gate/CMakeFiles/osss_gate.dir/lower.cpp.o" "gcc" "src/gate/CMakeFiles/osss_gate.dir/lower.cpp.o.d"
  "/root/repo/src/gate/netlist.cpp" "src/gate/CMakeFiles/osss_gate.dir/netlist.cpp.o" "gcc" "src/gate/CMakeFiles/osss_gate.dir/netlist.cpp.o.d"
  "/root/repo/src/gate/sim.cpp" "src/gate/CMakeFiles/osss_gate.dir/sim.cpp.o" "gcc" "src/gate/CMakeFiles/osss_gate.dir/sim.cpp.o.d"
  "/root/repo/src/gate/timing.cpp" "src/gate/CMakeFiles/osss_gate.dir/timing.cpp.o" "gcc" "src/gate/CMakeFiles/osss_gate.dir/timing.cpp.o.d"
  "/root/repo/src/gate/verilog.cpp" "src/gate/CMakeFiles/osss_gate.dir/verilog.cpp.o" "gcc" "src/gate/CMakeFiles/osss_gate.dir/verilog.cpp.o.d"
  "/root/repo/src/gate/vhdl.cpp" "src/gate/CMakeFiles/osss_gate.dir/vhdl.cpp.o" "gcc" "src/gate/CMakeFiles/osss_gate.dir/vhdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/osss_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/sysc/CMakeFiles/osss_sysc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
