file(REMOVE_RECURSE
  "CMakeFiles/osss_gate.dir/equiv.cpp.o"
  "CMakeFiles/osss_gate.dir/equiv.cpp.o.d"
  "CMakeFiles/osss_gate.dir/library.cpp.o"
  "CMakeFiles/osss_gate.dir/library.cpp.o.d"
  "CMakeFiles/osss_gate.dir/lower.cpp.o"
  "CMakeFiles/osss_gate.dir/lower.cpp.o.d"
  "CMakeFiles/osss_gate.dir/netlist.cpp.o"
  "CMakeFiles/osss_gate.dir/netlist.cpp.o.d"
  "CMakeFiles/osss_gate.dir/sim.cpp.o"
  "CMakeFiles/osss_gate.dir/sim.cpp.o.d"
  "CMakeFiles/osss_gate.dir/timing.cpp.o"
  "CMakeFiles/osss_gate.dir/timing.cpp.o.d"
  "CMakeFiles/osss_gate.dir/verilog.cpp.o"
  "CMakeFiles/osss_gate.dir/verilog.cpp.o.d"
  "CMakeFiles/osss_gate.dir/vhdl.cpp.o"
  "CMakeFiles/osss_gate.dir/vhdl.cpp.o.d"
  "libosss_gate.a"
  "libosss_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osss_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
