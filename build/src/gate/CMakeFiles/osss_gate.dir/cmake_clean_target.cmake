file(REMOVE_RECURSE
  "libosss_gate.a"
)
