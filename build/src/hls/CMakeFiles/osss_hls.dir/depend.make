# Empty dependencies file for osss_hls.
# This may be replaced when dependencies are built.
