file(REMOVE_RECURSE
  "libosss_hls.a"
)
