
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/behavior.cpp" "src/hls/CMakeFiles/osss_hls.dir/behavior.cpp.o" "gcc" "src/hls/CMakeFiles/osss_hls.dir/behavior.cpp.o.d"
  "/root/repo/src/hls/interp.cpp" "src/hls/CMakeFiles/osss_hls.dir/interp.cpp.o" "gcc" "src/hls/CMakeFiles/osss_hls.dir/interp.cpp.o.d"
  "/root/repo/src/hls/synth.cpp" "src/hls/CMakeFiles/osss_hls.dir/synth.cpp.o" "gcc" "src/hls/CMakeFiles/osss_hls.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/meta/CMakeFiles/osss_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/osss_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/sysc/CMakeFiles/osss_sysc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
