file(REMOVE_RECURSE
  "CMakeFiles/osss_hls.dir/behavior.cpp.o"
  "CMakeFiles/osss_hls.dir/behavior.cpp.o.d"
  "CMakeFiles/osss_hls.dir/interp.cpp.o"
  "CMakeFiles/osss_hls.dir/interp.cpp.o.d"
  "CMakeFiles/osss_hls.dir/synth.cpp.o"
  "CMakeFiles/osss_hls.dir/synth.cpp.o.d"
  "libosss_hls.a"
  "libosss_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osss_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
