# Empty compiler generated dependencies file for netlist_export.
# This may be replaced when dependencies are built.
