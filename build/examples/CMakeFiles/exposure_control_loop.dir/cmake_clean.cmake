file(REMOVE_RECURSE
  "CMakeFiles/exposure_control_loop.dir/exposure_control_loop.cpp.o"
  "CMakeFiles/exposure_control_loop.dir/exposure_control_loop.cpp.o.d"
  "exposure_control_loop"
  "exposure_control_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exposure_control_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
