# Empty compiler generated dependencies file for exposure_control_loop.
# This may be replaced when dependencies are built.
