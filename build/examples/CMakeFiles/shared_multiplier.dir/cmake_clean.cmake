file(REMOVE_RECURSE
  "CMakeFiles/shared_multiplier.dir/shared_multiplier.cpp.o"
  "CMakeFiles/shared_multiplier.dir/shared_multiplier.cpp.o.d"
  "shared_multiplier"
  "shared_multiplier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_multiplier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
