# Empty compiler generated dependencies file for shared_multiplier.
# This may be replaced when dependencies are built.
