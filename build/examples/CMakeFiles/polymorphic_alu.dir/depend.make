# Empty dependencies file for polymorphic_alu.
# This may be replaced when dependencies are built.
