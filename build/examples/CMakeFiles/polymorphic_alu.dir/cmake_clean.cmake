file(REMOVE_RECURSE
  "CMakeFiles/polymorphic_alu.dir/polymorphic_alu.cpp.o"
  "CMakeFiles/polymorphic_alu.dir/polymorphic_alu.cpp.o.d"
  "polymorphic_alu"
  "polymorphic_alu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymorphic_alu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
